#!/usr/bin/env python3
"""Scenario: writing your own provisioning policy.

The decoupling the paper advertises — "the controller makes the policy
and the actuator enforces it" — means a new chip-wide strategy is one
small class: anything with a ``name`` and a ``provision(context)`` can
drive the GPM tier while the per-island PID controllers keep doing the
capping.

This example implements a *QoS-priority* policy: island 1 hosts a
latency-critical service and is guaranteed a fixed share of the budget;
the remaining islands share whatever is left through the standard
performance-aware heuristic.  The script verifies the guarantee holds
while the chip as a whole stays at its budget.

Run:  python examples/custom_policy.py
"""

import numpy as np

from repro import DEFAULT_CONFIG, CPMScheme, PerformanceAwarePolicy, Simulation
from repro.gpm.policy import GPMContext
from repro.reporting import as_percent, format_table

__all__ = [
    "BUDGET",
    "GUARANTEED_ISLAND",
    "GUARANTEED_SHARE",
    "QoSPriorityPolicy",
    "main",
]

BUDGET = 0.78
GUARANTEED_ISLAND = 0
GUARANTEED_SHARE = 0.26  # of the distributable budget


class QoSPriorityPolicy:
    """Fixed guarantee for one island; performance-aware for the rest.

    Demonstrates policy *composition*: the inner policy reasons about the
    non-guaranteed islands only, by rescaling its output into the budget
    that remains after the guarantee is carved out.
    """

    name = "qos-priority"

    def __init__(self, island: int, share: float):
        self.island = island
        self.share = share
        self.inner = PerformanceAwarePolicy()

    def reset(self) -> None:
        self.inner.reset()

    def provision(self, context: GPMContext) -> np.ndarray:
        guaranteed = self.share * context.budget
        out = np.asarray(self.inner.provision(context), dtype=float).copy()
        # Rescale the others into the leftover budget.
        others = np.arange(context.n_islands) != self.island
        leftover = context.budget - guaranteed
        out[others] *= leftover / max(out[others].sum(), 1e-12)
        out[self.island] = guaranteed
        return out


def main() -> None:
    policy = QoSPriorityPolicy(GUARANTEED_ISLAND, GUARANTEED_SHARE)
    sim = Simulation(
        DEFAULT_CONFIG, CPMScheme(policy=policy), budget_fraction=BUDGET
    )
    result = sim.run(25)

    ticks = result.telemetry.gpm_tick_indices()[3:]
    setpoints = result.telemetry["island_setpoint_frac"][ticks]
    power = result.telemetry["island_power_frac"][30:]
    distributable = BUDGET - DEFAULT_CONFIG.uncore_fraction

    rows = []
    for i in range(DEFAULT_CONFIG.n_islands):
        rows.append(
            [
                f"island {i + 1}" + (" (QoS)" if i == GUARANTEED_ISLAND else ""),
                float(setpoints[:, i].mean() / distributable),
                float(setpoints[:, i].std()),
                float(power[:, i].mean()),
            ]
        )
    print(
        format_table(
            ["island", "mean share of budget", "share stddev", "mean power"],
            rows,
            title=f"QoS guarantee: island 1 pinned at "
            f"{as_percent(GUARANTEED_SHARE, 0)} of the distributable budget",
        )
    )

    # A guarantee only holds for power the island can physically consume:
    # ask for more than its demand and the manager's reclaim hands the
    # surplus back (the paper's "GPM would realize this" behaviour).
    qos_share = setpoints[:, GUARANTEED_ISLAND] / distributable
    assert np.allclose(qos_share, GUARANTEED_SHARE, atol=0.02), (
        "guarantee violated"
    )
    chip = result.telemetry["chip_power_frac"][30:]
    print(f"\nChip power: {as_percent(float(chip.mean()))} "
          f"(budget {as_percent(BUDGET, 0)}) — the PIC tier is oblivious "
          "to which policy produced its set-points.")


if __name__ == "__main__":
    main()
