#!/usr/bin/env python3
"""Scenario: rack-level power capping during a brownout.

A datacenter operator gets a 15-minute demand-response event: every
socket must shed power NOW, then progressively recover.  This script
drives one 32-core CMP through a budget staircase —
100% → 85% → 72% → 90% — while the chip keeps running its mixed
analytics workload, and reports per-stage tracking and throughput.

It demonstrates the part of the architecture the paper emphasizes: the
*same* per-island controllers serve any budget the operator dials in;
only the chip-wide set-point changes.

Run:  python examples/datacenter_power_capping.py
"""

import numpy as np

from repro import DEFAULT_CONFIG, CPMScheme, Simulation
from repro.reporting import as_percent, format_series, format_table

__all__ = ["STAIRCASE", "main"]

#: (budget fraction of max chip power, GPM intervals to hold it).
STAIRCASE = [(1.00, 10), (0.85, 15), (0.72, 15), (0.90, 15)]


def main() -> None:
    config = DEFAULT_CONFIG.with_islands(32, 8)
    print(f"Platform: {config.n_cores} cores / {config.n_islands} islands\n")

    # One simulation per stage, carrying the budget change; the scheme
    # (and its calibration) is rebuilt per stage exactly as a power
    # governor would re-arm with a new chip-wide set-point.
    rows = []
    all_power: list[np.ndarray] = []
    all_budget: list[np.ndarray] = []
    for budget, n_gpm in STAIRCASE:
        sim = Simulation(
            config, CPMScheme(), budget_fraction=budget, seed=4242
        )
        result = sim.run(n_gpm)
        chip = result.telemetry["chip_power_frac"]
        steady = chip[chip.size // 3 :]
        rows.append(
            [
                as_percent(budget, 0),
                float(steady.mean()),
                float(max(steady.max() - budget, 0.0)),
                result.mean_chip_bips,
            ]
        )
        all_power.append(chip)
        all_budget.append(np.full_like(chip, budget))

    print(
        format_table(
            ["budget", "mean chip power", "worst overshoot", "throughput (BIPS)"],
            rows,
            title="Brownout staircase, per stage",
        )
    )
    print()
    print(
        format_series(
            {
                "chip power": np.concatenate(all_power),
                "budget": np.concatenate(all_budget),
            },
            width=72,
            title="Budget staircase (fraction of max chip power)",
        )
    )
    print(
        "\nNote: at the 100% stage the budget does not bind — the chip "
        "runs at its natural draw; every capped stage tracks its budget "
        "from above within a few controller invocations."
    )


if __name__ == "__main__":
    main()
