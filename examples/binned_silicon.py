#!/usr/bin/env python3
"""Scenario: squeezing efficiency out of leaky (low-bin) silicon.

Process variation means two "identical" chips leak very differently —
and even islands within one die can.  This script samples a spatially
correlated variation map for a 16-core die, compares the
performance-aware and variation-aware policies on it, and shows the
variation-aware greedy parking the leaky islands at lower V/F for a
better chip-wide power/throughput ratio.

Run:  python examples/binned_silicon.py
"""

import dataclasses

import numpy as np

from repro import (
    CPMScheme,
    DEFAULT_CONFIG,
    PerformanceAwarePolicy,
    Simulation,
    VariationAwarePolicy,
)
from repro.reporting import as_percent, format_table
from repro.rng import SeedSequenceFactory
from repro.thermal.floorplan import grid_floorplan
from repro.variation.process import sample_variation_map

__all__ = ["BUDGET", "HORIZON", "island_stats", "main"]

BUDGET = 0.78
HORIZON = 40


def island_stats(result):
    windows = result.telemetry.windows[5:]
    bips = np.mean([w.island_bips for w in windows], axis=0)
    energy = np.sum([w.island_energy_j for w in windows], axis=0)
    seconds = sum(w.duration_s for w in windows)
    return bips, (energy / seconds) / np.maximum(bips, 1e-9)  # lint: ignore[UNIT001] numeric guard against zero BIPS, not a unit conversion


def main() -> None:
    base = DEFAULT_CONFIG.with_islands(16, 4)

    # Sample this die's leakage field and average it per island (the
    # granularity the power manager can act on).
    rng = SeedSequenceFactory(777).generator("die-lottery")
    vmap = sample_variation_map(grid_floorplan(16), rng, sigma=0.35)
    island_of_core = np.repeat(np.arange(4), 4)
    island_mult = vmap.island_means(island_of_core)
    config = dataclasses.replace(
        base, island_leakage_multipliers=tuple(float(m) for m in island_mult)
    )
    print("This die's island leakage multipliers:",
          np.round(island_mult, 3), "\n")

    runs = {}
    for name, policy in (
        ("performance-aware", PerformanceAwarePolicy()),
        ("variation-aware", VariationAwarePolicy()),
    ):
        sim = Simulation(
            config, CPMScheme(policy=policy), budget_fraction=BUDGET, seed=777
        )
        runs[name] = sim.run(HORIZON)

    perf_bips, perf_ppt = island_stats(runs["performance-aware"])
    var_bips, var_ppt = island_stats(runs["variation-aware"])

    rows = []
    for i in range(4):
        rows.append(
            [
                f"island {i + 1}",
                float(island_mult[i]),
                as_percent(float(1 - var_bips[i] / perf_bips[i])),
                as_percent(float(1 - var_ppt[i] / perf_ppt[i])),
            ]
        )
    chip_bips_cost = 1 - var_bips.sum() / perf_bips.sum()
    chip_ppt_perf = (perf_ppt * perf_bips).sum() / perf_bips.sum()
    chip_ppt_var = (var_ppt * var_bips).sum() / var_bips.sum()
    rows.append(
        [
            "chip",
            float("nan"),
            as_percent(float(chip_bips_cost)),
            as_percent(float(1 - chip_ppt_var / chip_ppt_perf)),
        ]
    )
    print(
        format_table(
            [
                "island",
                "leakage x",
                "throughput cost",
                "power/throughput gain",
            ],
            rows,
            title="variation-aware vs performance-aware on this die",
        )
    )
    print(
        "\nThe greedy EPI search finds each island's efficient operating "
        "level; leakier islands end lower on the V/F ladder.  Note the "
        "trade is deliberate and unbounded: the policy optimizes "
        "power/throughput with no performance floor, so pair it with a "
        "guarantee (see custom_policy.py) for latency-critical tenants."
    )


if __name__ == "__main__":
    main()
