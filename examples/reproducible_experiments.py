#!/usr/bin/env python3
"""Scenario: a fully reproducible experiment bundle.

Research workflow: capture the exact workload an interesting run saw,
archive it with the run's telemetry, and replay it later — on the same
platform to verify bit-identical results, and on a *variant* platform
(quantized DVFS knobs) to answer "would this anomaly still happen with
discrete actuation?" without workload noise confounding the comparison.

Run:  python examples/reproducible_experiments.py
"""

import dataclasses
import json
import tempfile
from pathlib import Path

import numpy as np

from repro import CPMScheme, DEFAULT_CONFIG, Simulation
from repro.config import DVFSConfig
from repro.io import save_run
from repro.reporting import as_percent, format_table
from repro.workloads import RecordedWorkload, record

__all__ = ["BUDGET", "N_GPM", "SEED", "main"]

BUDGET = 0.80
N_GPM = 15
SEED = 31337


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_bundle_"))
    ticks = N_GPM * DEFAULT_CONFIG.control.pics_per_gpm

    # 1. Capture the workload and run the original experiment.
    capture = record(DEFAULT_CONFIG, n_ticks=ticks, seed=SEED)
    capture_path = capture.save(workdir / "workload.npz")
    original = Simulation(
        DEFAULT_CONFIG, CPMScheme(), budget_fraction=BUDGET,
        instances=capture.instances(),
    ).run(N_GPM)
    paths = save_run(original, workdir, stem="original")
    print(f"Archived bundle in {workdir}:")
    for kind, path in {**paths, "workload": capture_path}.items():
        print(f"  {kind:9s} {path.name}")

    # 2. Reload everything from disk and verify the replay is bit-exact.
    reloaded = RecordedWorkload.load(capture_path)
    replay = Simulation(
        DEFAULT_CONFIG, CPMScheme(), budget_fraction=BUDGET,
        instances=reloaded.instances(),
    ).run(N_GPM)
    drift = np.abs(
        replay.telemetry["chip_power_frac"]
        - original.telemetry["chip_power_frac"]
    ).max()
    print(f"\nReplay max drift vs original: {drift:.2e} (bit-exact)")
    assert drift == 0.0

    # 3. Counterfactual: same workload, quantized DVFS knobs.
    quantized_cfg = dataclasses.replace(
        DEFAULT_CONFIG, dvfs=DVFSConfig(mode="quantized")
    )
    quantized = Simulation(
        quantized_cfg, CPMScheme(), budget_fraction=BUDGET,
        instances=reloaded.instances(),
    ).run(N_GPM)

    def stats(result):
        chip = result.telemetry["chip_power_frac"][30:]
        return [
            as_percent(float(chip.mean())),
            as_percent(float(np.abs(chip - BUDGET).mean() / BUDGET)),
            f"{result.total_instructions:.4e}",
        ]

    print()
    print(
        format_table(
            ["variant", "mean power", "tracking error", "instructions"],
            [
                ["continuous DVFS"] + stats(original),
                ["quantized DVFS"] + stats(quantized),
            ],
            title="Same captured workload, two actuation models",
        )
    )
    summary = json.loads(paths["summary"].read_text())
    print(f"\nBundle metadata: scheme={summary['scheme']}, "
          f"{summary['n_intervals']} intervals, "
          f"budget {as_percent(summary['budget_fraction'], 0)}")


if __name__ == "__main__":
    main()
