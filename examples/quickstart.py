#!/usr/bin/env python3
"""Quickstart: cap an 8-core CMP at 80% of its maximum power.

Builds the paper's default platform (8 out-of-order cores in 4
voltage/frequency islands, Mix-1 PARSEC workloads), runs the coordinated
power manager for 25 GPM intervals (125 ms of simulated time), and
reports how tightly the chip tracked the budget and what it cost in
throughput.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DEFAULT_CONFIG,
    NoManagementScheme,
    Simulation,
    performance_degradation,
    run_cpm,
)
from repro.reporting import as_percent, format_series

__all__ = ["BUDGET", "HORIZON", "main"]

BUDGET = 0.80
HORIZON = 25  # GPM intervals of 5 ms each


def main() -> None:
    print(f"Platform: {DEFAULT_CONFIG.n_cores} cores, "
          f"{DEFAULT_CONFIG.n_islands} islands, budget {as_percent(BUDGET, 0)} "
          "of max chip power\n")

    # The reference: every core pinned at 2 GHz, no management.
    reference = Simulation(
        DEFAULT_CONFIG, NoManagementScheme(), budget_fraction=1.0
    ).run(HORIZON)
    print(f"Unmanaged chip draw: "
          f"{as_percent(reference.mean_chip_power_frac)} of max power")

    # The paper's scheme: GPM provisioning + per-island PID capping.
    # (The first call calibrates the platform — system identification,
    # transducer fits, pole-placement PID design — and memoizes it.)
    managed = run_cpm(
        DEFAULT_CONFIG, budget_fraction=BUDGET, n_gpm_intervals=HORIZON
    )

    chip_power = managed.telemetry["chip_power_frac"]
    steady = chip_power[20:]
    print(f"Managed chip power:  {as_percent(float(steady.mean()))} "
          f"(budget {as_percent(BUDGET, 0)})")
    print(f"Worst overshoot:     "
          f"{as_percent(float(max(steady.max() / BUDGET - 1, 0)))} above budget")
    degradation = performance_degradation(managed, reference)
    print(f"Performance cost:    {as_percent(degradation)} vs unmanaged\n")

    print(format_series(
        {
            "chip power": chip_power,
            "budget": np.full_like(chip_power, BUDGET),
        },
        width=64,
        title="Chip power over time (fraction of max chip power)",
    ))


if __name__ == "__main__":
    main()
