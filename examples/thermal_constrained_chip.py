#!/usr/bin/env python3
"""Scenario: keeping neighbouring cores from co-heating.

A chip with a weak spot in its heat-sink mounting cannot let adjacent
islands run hot together.  This script runs the paper's Figure 18 setup —
eight single-core islands running CPU-hungry SPEC codes — under the
plain performance-aware policy and under the thermal-aware policy, and
shows what each does to provisioning streaks, temperatures, and
throughput.

Run:  python examples/thermal_constrained_chip.py
"""

import numpy as np

from repro import DEFAULT_CONFIG, CPMScheme, NoManagementScheme, Simulation
from repro import PerformanceAwarePolicy, ThermalAwarePolicy
from repro.core.metrics import performance_degradation
from repro.experiments.fig18_thermal import (
    CONSTRAINED_PAIRS,
    PAIR_SHARE_CAP,
    SINGLE_SHARE_CAP,
    _violation_fractions,
)
from repro.reporting import as_percent, format_table
from repro.thermal.hotspot import ThermalConstraints
from repro.workloads.mixes import thermal_mix

__all__ = ["BUDGET", "HORIZON", "main", "run_policy"]

BUDGET = 0.80
HORIZON = 25


def run_policy(config, mix, policy):
    sim = Simulation(
        config, CPMScheme(policy=policy), mix=mix, budget_fraction=BUDGET
    )
    return sim.run(HORIZON)


def main() -> None:
    mix = thermal_mix()
    config = DEFAULT_CONFIG.with_islands(8, 8)
    apps = [names[0] for names in mix.islands]
    print("Layout: 8 single-core islands; constrained side-by-side pairs:",
          sorted((a + 1, b + 1) for a, b in CONSTRAINED_PAIRS))
    print(f"Caps: pair ≤ {as_percent(PAIR_SHARE_CAP, 0)} of budget for ≤2 "
          f"intervals, island ≤ {as_percent(SINGLE_SHARE_CAP, 1)} for ≤4\n")

    reference = Simulation(
        config, NoManagementScheme(), mix=mix, budget_fraction=1.0
    ).run(HORIZON)

    perf = run_policy(config, mix, PerformanceAwarePolicy())
    thermal = run_policy(
        config,
        mix,
        ThermalAwarePolicy(
            pair_share_cap=PAIR_SHARE_CAP,
            single_share_cap=SINGLE_SHARE_CAP,
            adjacent_pairs=CONSTRAINED_PAIRS,
        ),
    )

    constraints = ThermalConstraints(
        adjacent_pairs=CONSTRAINED_PAIRS,
        pair_share_cap=PAIR_SHARE_CAP,
        single_share_cap=SINGLE_SHARE_CAP,
    )
    rows = []
    for name, run in (("performance-aware", perf), ("thermal-aware", thermal)):
        violations = _violation_fractions(run, constraints)
        temps = run.telemetry["core_temperature_c"]
        rows.append(
            [
                name,
                performance_degradation(run, reference),
                float(violations.max()),
                float(temps.max()),
                float(np.mean(run.telemetry["chip_power_frac"])),
            ]
        )
    print(
        format_table(
            [
                "policy",
                "perf degradation",
                "worst violation fraction",
                "max core temp (C)",
                "mean chip power",
            ],
            rows,
        )
    )

    print("\nPer-core violation fractions under the performance-aware policy:")
    violations = _violation_fractions(perf, constraints)
    for i, app in enumerate(apps):
        bar = "#" * int(round(40 * violations[i]))
        print(f"  core {i + 1} ({app:8s}) {violations[i]:6.2%} {bar}")
    print(
        "\nThe thermal-aware policy trades a little throughput for a hard "
        "guarantee: no constraint streak ever exceeds its limit."
    )


if __name__ == "__main__":
    main()
