#!/usr/bin/env python3
"""Scenario: designing a power controller from first principles.

Walks through the paper's Section II pipeline step by step, printing the
intermediate artifacts — the identified plant, the pole-placement
design, the closed-loop transfer function (Equation 12), the stability
range of the gain multiplier (Equation 13), and the analytic step
response — so the control-theoretic spine of the system can be inspected
without running a full simulation.

Run:  python examples/controller_design_tour.py
"""

import numpy as np

from repro import DEFAULT_CONFIG
from repro.control.analysis import response_metrics, step_response
from repro.control.pole_placement import (
    closed_loop,
    design_pid,
    integrator_plant,
    pid_transfer_function,
    stability_gain_limit,
)
from repro.core.calibration import default_calibration
from repro.reporting import format_series

__all__ = ["main", "poly_str"]


def poly_str(coeffs) -> str:
    terms = []
    order = len(coeffs) - 1
    for i, c in enumerate(coeffs):
        power = order - i
        if abs(c) < 1e-12:
            continue
        term = f"{c:+.4f}"
        if power == 1:
            term += " z"
        elif power > 1:
            term += f" z^{power}"
        terms.append(term)
    return " ".join(terms)


def main() -> None:
    print("Step 1 — system identification (Eq. 8)")
    cal = default_calibration(DEFAULT_CONFIG)
    a = cal.system_gain
    print(f"  white-noise DVFS runs over PARSEC (holdout: {cal.holdout})")
    for name, fit in sorted(cal.per_benchmark_gains.items()):
        marker = " <- held out" if name == cal.holdout else ""
        print(f"    {name:15s} a = {fit.gain:.4f}  (R^2 {fit.r_squared:.3f}){marker}")
    print(f"  averaged design gain a = {a:.4f} (fraction of max power per GHz)")
    print(f"  one-step validation error on {cal.holdout}: "
          f"{cal.validation_error:.2%}\n")

    print("Step 2 — the open-loop plant (Eq. 9)")
    plant = integrator_plant(a)
    print(f"  P(z) = {a:.4f} / (z - 1)   poles: {plant.poles()}\n")

    print("Step 3 — pole placement (the paper's Matlab step)")
    poles = DEFAULT_CONFIG.control.desired_poles
    gains = design_pid(a, poles)
    print(f"  desired closed-loop poles: {poles}")
    print(f"  K_P = {gains.kp:.4f}, K_I = {gains.ki:.4f}, K_D = {gains.kd:.4f}")
    controller = pid_transfer_function(gains)
    print(f"  C(z) numerator:   {poly_str(controller.num)}")
    print(f"  C(z) denominator: {poly_str(controller.den)}\n")

    print("Step 4 — the closed loop (Eq. 11/12)")
    loop = closed_loop(a, gains)
    print(f"  Y(z) numerator:   {poly_str(loop.num)}")
    print(f"  Y(z) denominator: {poly_str(loop.den)}")
    magnitudes = np.sort(np.abs(loop.poles()))
    print(f"  pole magnitudes: {np.round(magnitudes, 4)} (all < 1: stable)")
    print(f"  DC gain: {loop.dc_gain():.6f} (=1: zero steady-state error)\n")

    print("Step 5 — robustness to gain mismatch (Eq. 13)")
    g_limit = stability_gain_limit(a, gains)
    print(f"  stable for true gain up to g = {g_limit:.3f} x design gain")
    worst = max(fit.gain for fit in cal.per_benchmark_gains.values())
    print(f"  worst per-benchmark gain observed: {worst / a:.2f} x design\n")

    print("Step 6 — analytic step response")
    y = step_response(loop, n_steps=30)
    m = response_metrics(y, reference=1.0, tolerance=0.02)
    print(format_series({"unit step response": y}, width=60))
    print(f"  overshoot {m.max_overshoot:.1%}, settles in {m.settling_steps} "
          f"invocations (2% band), steady-state error {m.steady_state_error:.2%}")


if __name__ == "__main__":
    main()
