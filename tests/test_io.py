"""Run export: CSV/JSON serialization of telemetry."""

import csv
import json

import numpy as np
import pytest

from repro.io import result_to_json, save_run, telemetry_to_csv, windows_to_csv

pytestmark = pytest.mark.slow


class TestTelemetryCSV:
    def test_roundtrip_values(self, nomgmt_run, tmp_path):
        path = tmp_path / "telemetry.csv"
        n_rows = telemetry_to_csv(nomgmt_run, path)
        assert n_rows == nomgmt_run.telemetry.n_intervals

        with path.open() as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert len(data) == n_rows
        # Spot-check one column against the source array.
        col = header.index("chip_power_frac")
        values = np.array([float(r[col]) for r in data])
        np.testing.assert_allclose(
            values, nomgmt_run.telemetry["chip_power_frac"], rtol=1e-6
        )

    def test_vector_series_expanded(self, nomgmt_run, tmp_path):
        path = tmp_path / "telemetry.csv"
        telemetry_to_csv(nomgmt_run, path)
        header = path.read_text().splitlines()[0].split(",")
        n_islands = nomgmt_run.config.n_islands
        island_cols = [h for h in header if h.startswith("island_power_frac[")]
        assert len(island_cols) == n_islands


class TestWindowsCSV:
    def test_one_row_per_window(self, nomgmt_run, tmp_path):
        path = tmp_path / "windows.csv"
        n = windows_to_csv(nomgmt_run, path)
        assert n == len(nomgmt_run.telemetry.windows)
        lines = path.read_text().splitlines()
        assert len(lines) == n + 1

    def test_energy_column_positive(self, nomgmt_run, tmp_path):
        path = tmp_path / "windows.csv"
        windows_to_csv(nomgmt_run, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert all(float(r["energy_j[0]"]) > 0 for r in rows)


class TestJSONSummary:
    def test_fields(self, nomgmt_run):
        summary = result_to_json(nomgmt_run)
        assert summary["scheme"] == "no-management"
        assert summary["n_cores"] == 8
        assert summary["n_windows"] == len(nomgmt_run.telemetry.windows)
        assert 0 < summary["mean_chip_power_frac"] <= 1
        json.dumps(summary)  # fully serializable


class TestSaveRun:
    def test_writes_all_three(self, nomgmt_run, tmp_path):
        paths = save_run(nomgmt_run, tmp_path / "exports", stem="baseline")
        assert set(paths) == {"summary", "telemetry", "windows"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0
        summary = json.loads(paths["summary"].read_text())
        assert summary["budget_fraction"] == nomgmt_run.budget_fraction
