"""Discrete transfer functions: algebra, poles, stability, simulation."""

import numpy as np
import pytest

from repro.control.lti import DiscreteTransferFunction


def first_order(pole: float, gain: float = 1.0) -> DiscreteTransferFunction:
    """H(z) = gain / (z - pole)."""
    return DiscreteTransferFunction([gain], [1.0, -pole])


class TestConstruction:
    def test_normalizes_to_monic_denominator(self):
        tf = DiscreteTransferFunction([2.0], [2.0, -1.0])
        assert tf.den[0] == pytest.approx(1.0)
        assert tf.num[0] == pytest.approx(1.0)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            DiscreteTransferFunction([1.0], [0.0, 0.0])

    def test_leading_zeros_trimmed(self):
        tf = DiscreteTransferFunction([0.0, 0.0, 1.0], [0.0, 1.0, -0.5])
        assert len(tf.num) == 1
        assert len(tf.den) == 2


class TestAlgebra:
    def test_series_composition(self):
        h = first_order(0.5) * first_order(0.2)
        poles = np.sort(h.poles().real)
        np.testing.assert_allclose(poles, [0.2, 0.5], atol=1e-12)

    def test_parallel_composition_dc_gain(self):
        h = first_order(0.5) + first_order(0.0)
        # DC gains: 1/(1-0.5)=2 and 1/1=1 -> 3 total.
        assert h.dc_gain() == pytest.approx(3.0)

    def test_scale(self):
        assert first_order(0.5).scale(3.0).dc_gain() == pytest.approx(6.0)

    def test_unity_feedback_moves_pole(self):
        # L = 1/(z-1) (integrator): closed loop = 1/z, pole at 0.
        closed = first_order(1.0).feedback()
        np.testing.assert_allclose(closed.poles(), [0.0], atol=1e-12)


class TestAnalysis:
    def test_stability_verdicts(self):
        assert first_order(0.9).is_stable()
        assert not first_order(1.0).is_stable()
        assert not first_order(-1.1).is_stable()

    def test_stability_margin(self):
        assert first_order(0.9).is_stable(margin=0.05)
        assert not first_order(0.97).is_stable(margin=0.05)

    def test_dc_gain_integrator_is_infinite(self):
        assert first_order(1.0).dc_gain() == float("inf")

    def test_zeros(self):
        tf = DiscreteTransferFunction([1.0, -0.3], [1.0, -0.5, 0.0])
        np.testing.assert_allclose(tf.zeros(), [0.3], atol=1e-12)


class TestSimulation:
    def test_step_response_converges_to_dc_gain(self):
        tf = first_order(0.5, gain=2.0)
        response = tf.step_response(60)
        assert response[-1] == pytest.approx(tf.dc_gain(), rel=1e-6)

    def test_impulse_response_matches_geometric_series(self):
        tf = first_order(0.5)
        impulse = np.zeros(10)
        impulse[0] = 1.0
        y = tf.simulate(impulse)
        # y[t] = 0.5^(t-1) for t >= 1 (one-step input delay from z in den).
        expected = np.array([0.0] + [0.5**k for k in range(9)])
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_non_causal_rejected(self):
        tf = DiscreteTransferFunction([1.0, 0.0, 0.0], [1.0, -0.5])
        with pytest.raises(ValueError):
            tf.simulate([1.0, 1.0])

    def test_step_response_requires_positive_length(self):
        with pytest.raises(ValueError):
            first_order(0.5).step_response(0)

    def test_integrator_accumulates(self):
        integ = first_order(1.0)
        y = integ.simulate(np.ones(5))
        np.testing.assert_allclose(y, [0, 1, 2, 3, 4], atol=1e-12)
