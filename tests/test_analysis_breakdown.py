"""Offline energy accounting."""

import numpy as np
import pytest

from repro.analysis.breakdown import energy_breakdown, verify_reconstruction
from repro.power.dynamic import STRUCTURES

pytestmark = pytest.mark.slow


class TestEnergyBreakdown:
    def test_reconstruction_matches_recorded_energy(self, nomgmt_run):
        breakdown = energy_breakdown(nomgmt_run)
        assert breakdown.reconstruction_error < 0.02
        assert verify_reconstruction(nomgmt_run)

    def test_components_sum_to_total(self, nomgmt_run):
        b = energy_breakdown(nomgmt_run)
        assert b.dynamic_j + b.static_j + b.uncore_j == pytest.approx(
            b.total_j, rel=1e-9
        )
        assert b.island_j.sum() + b.uncore_j == pytest.approx(
            b.total_j, rel=1e-9
        )
        assert sum(b.structure_j.values()) == pytest.approx(
            b.dynamic_j, rel=1e-9
        )

    def test_structure_coverage(self, nomgmt_run):
        b = energy_breakdown(nomgmt_run)
        assert set(b.structure_j) == {s.name for s in STRUCTURES}
        assert all(v > 0 for v in b.structure_j.values())

    def test_clock_tree_is_largest_dynamic_consumer(self, nomgmt_run):
        b = energy_breakdown(nomgmt_run)
        assert max(b.structure_j, key=b.structure_j.get) == "clock_tree"

    def test_managed_run_uses_less_energy(self, cpm_run_80, nomgmt_run):
        capped = energy_breakdown(cpm_run_80)
        free = energy_breakdown(nomgmt_run)
        assert capped.total_j < free.total_j

    def test_island_energy_matches_window_accounting(self, nomgmt_run):
        """Two independent paths to the same joules: reconstruction vs
        the simulator's own window energy accumulators."""
        b = energy_breakdown(nomgmt_run)
        windowed = np.sum(
            [w.island_energy_j for w in nomgmt_run.telemetry.windows], axis=0
        )
        np.testing.assert_allclose(b.island_j, windowed, rtol=0.02)

    def test_table_renders(self, nomgmt_run):
        text = energy_breakdown(nomgmt_run).as_table()
        assert "clock_tree" in text
        assert "uncore" in text
