"""Discrete PID: term behaviour, anti-windup, z-domain form."""

import numpy as np
import pytest

from repro.control.pid import DiscretePID, PIDGains


class TestTerms:
    def test_pure_proportional(self):
        pid = DiscretePID(PIDGains(kp=2.0, ki=0.0, kd=0.0))
        assert pid.step(1.5) == pytest.approx(3.0)
        assert pid.step(-0.5) == pytest.approx(-1.0)

    def test_integral_accumulates(self):
        pid = DiscretePID(PIDGains(kp=0.0, ki=1.0, kd=0.0))
        assert pid.step(1.0) == pytest.approx(1.0)
        assert pid.step(1.0) == pytest.approx(2.0)
        assert pid.step(-3.0) == pytest.approx(-1.0)

    def test_derivative_uses_e_minus_1_equals_zero(self):
        pid = DiscretePID(PIDGains(kp=0.0, ki=0.0, kd=1.0))
        assert pid.step(5.0) == pytest.approx(5.0)  # e(-1) = 0 convention
        assert pid.step(7.0) == pytest.approx(2.0)
        assert pid.step(7.0) == pytest.approx(0.0)

    def test_combined_matches_equation_7(self):
        g = PIDGains(kp=0.4, ki=0.4, kd=0.3)
        pid = DiscretePID(g)
        errors = [1.0, 0.5, -0.2]
        integral = 0.0
        prev = 0.0
        for e in errors:
            integral += e
            derivative = e - prev
            expected = g.kp * e + g.ki * integral + g.kd * derivative
            assert pid.step(e) == pytest.approx(expected)
            prev = e


class TestAntiWindup:
    def test_output_clamped(self):
        pid = DiscretePID(PIDGains(kp=10.0, ki=0.0, kd=0.0), output_limits=(-1, 1))
        assert pid.step(5.0) == 1.0
        assert pid.step(-5.0) == -1.0

    def test_integral_frozen_while_saturated(self):
        pid = DiscretePID(PIDGains(kp=0.0, ki=1.0, kd=0.0), output_limits=(-1, 1))
        for _ in range(10):
            pid.step(5.0)
        # Without conditional integration the accumulator would be 50.
        assert pid.integral <= 6.0
        # Recovery must be fast: one opposite error already de-saturates.
        assert pid.step(-5.0) < 1.0

    def test_downstream_saturation_notification(self):
        pid = DiscretePID(PIDGains(kp=0.0, ki=1.0, kd=0.0))
        pid.step(1.0)
        pid.notify_actuator_saturation(1)
        pid.step(1.0)  # frozen: pushing further into saturation
        assert pid.integral == pytest.approx(1.0)
        pid.step(-1.0)  # opposite direction integrates again
        assert pid.integral == pytest.approx(0.0)

    def test_invalid_saturation_sign(self):
        pid = DiscretePID(PIDGains(1, 1, 1))
        with pytest.raises(ValueError):
            pid.notify_actuator_saturation(2)

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            DiscretePID(PIDGains(1, 1, 1), output_limits=(1.0, -1.0))


class TestState:
    def test_reset(self):
        pid = DiscretePID(PIDGains(kp=1.0, ki=1.0, kd=1.0))
        pid.step(3.0)
        pid.reset()
        assert pid.integral == 0.0
        # After reset the controller behaves exactly like a fresh one.
        fresh = DiscretePID(PIDGains(kp=1.0, ki=1.0, kd=1.0))
        assert pid.step(2.0) == pytest.approx(fresh.step(2.0))

    def test_gains_scaled(self):
        g = PIDGains(1.0, 2.0, 3.0).scaled(0.5)
        assert (g.kp, g.ki, g.kd) == (0.5, 1.0, 1.5)


class TestTransferFunction:
    def test_matches_time_domain(self):
        """C(z) evaluated by simulation equals the stateful PID."""
        g = PIDGains(kp=0.7, ki=0.3, kd=0.2)
        tf = DiscretePID(g).transfer_function()
        rng = np.random.default_rng(0)
        errors = rng.normal(size=30)
        pid = DiscretePID(g)
        direct = np.array([pid.step(e) for e in errors])
        simulated = tf.simulate(errors)
        np.testing.assert_allclose(simulated, direct, atol=1e-9)

    def test_has_integrator_pole(self):
        tf = DiscretePID(PIDGains(1.0, 1.0, 1.0)).transfer_function()
        poles = np.sort(tf.poles().real)
        np.testing.assert_allclose(poles, [0.0, 1.0], atol=1e-12)
