"""The README's code snippets actually work.

Documentation rot is a real failure mode for a library of this size;
these tests execute the behaviours the README promises.
"""

import pytest

pytestmark = pytest.mark.slow


def test_quickstart_snippet():
    from repro import DEFAULT_CONFIG, run_cpm

    result = run_cpm(DEFAULT_CONFIG, budget_fraction=0.8, n_gpm_intervals=6)
    assert 0.6 < result.mean_chip_power_frac < 0.9
    assert result.telemetry["island_power_frac"].shape[1] == 4


def test_calibration_snippet():
    from repro import DEFAULT_CONFIG, default_calibration

    cal = default_calibration(DEFAULT_CONFIG)
    assert cal.system_gain > 0
    assert cal.pid_gains.kp > 0
    assert cal.validation_error < 0.10
    assert cal.stability_limit > 1.0


def test_policy_swap_snippet():
    from repro import DEFAULT_CONFIG, ThermalAwarePolicy, run_cpm

    result = run_cpm(
        DEFAULT_CONFIG,
        policy=ThermalAwarePolicy(),
        budget_fraction=0.8,
        n_gpm_intervals=4,
    )
    assert result.scheme_name == "cpm"


def test_fault_injection_snippet():
    from repro import CPMScheme, DEFAULT_CONFIG, Simulation
    from repro.faults import GainError, StuckSensor, inject

    scheme = inject(CPMScheme(), GainError(multiplier=1.4), StuckSensor(island=2))
    result = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=0.8).run(3)
    assert result.telemetry.n_intervals == 30


def test_record_replay_snippet(tmp_path):
    from repro import DEFAULT_CONFIG, NoManagementScheme, Simulation
    from repro.workloads import RecordedWorkload, record

    capture = record(DEFAULT_CONFIG, n_ticks=20)
    path = capture.save(tmp_path / "wl.npz")
    loaded = RecordedWorkload.load(path)
    result = Simulation(
        DEFAULT_CONFIG, NoManagementScheme(), instances=loaded.instances()
    ).run(2)
    assert result.total_instructions > 0
