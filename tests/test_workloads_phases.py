"""Phase machine: dwell behaviour, noise, validation."""

import numpy as np
import pytest

from repro.workloads.phases import Phase, PhaseMachine

PHASES = (
    Phase(alpha=0.9, cpi_base=0.8, l1_mpki=5.0, l2_mpki=0.5),
    Phase(alpha=0.6, cpi_base=1.2, l1_mpki=30.0, l2_mpki=10.0),
)


def machine(rng=None, **kwargs):
    defaults = dict(
        phases=PHASES,
        mean_dwell_intervals=20.0,
        noise_sigma=0.02,
        noise_rho=0.8,
        rng=rng or np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return PhaseMachine(**defaults)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(alpha=0.0, cpi_base=1.0, l1_mpki=1.0, l2_mpki=1.0)
        with pytest.raises(ValueError):
            Phase(alpha=0.5, cpi_base=-1.0, l1_mpki=1.0, l2_mpki=1.0)
        with pytest.raises(ValueError):
            Phase(alpha=0.5, cpi_base=1.0, l1_mpki=-1.0, l2_mpki=1.0)


class TestPhaseMachine:
    def test_deterministic_per_seed(self):
        a = machine(np.random.default_rng(7))
        b = machine(np.random.default_rng(7))
        for _ in range(100):
            sa, sb = a.advance(), b.advance()
            assert sa.alpha == sb.alpha
            assert sa.phase == sb.phase

    def test_mean_dwell_approximates_parameter(self):
        m = machine(np.random.default_rng(3), mean_dwell_intervals=25.0)
        transitions = 0
        last = m.current_phase_index
        n = 20000
        for _ in range(n):
            m.advance()
            if m.current_phase_index != last:
                transitions += 1
                last = m.current_phase_index
        observed_dwell = n / max(transitions, 1)
        assert observed_dwell == pytest.approx(25.0, rel=0.15)

    def test_visits_all_phases(self):
        m = machine(np.random.default_rng(11))
        seen = set()
        for _ in range(2000):
            m.advance()
            seen.add(m.current_phase_index)
        assert seen == {0, 1}

    def test_alpha_noise_bounded(self):
        m = machine(np.random.default_rng(13), noise_sigma=0.2)
        alphas = [m.advance().alpha for _ in range(2000)]
        assert min(alphas) >= 0.05
        assert max(alphas) <= 1.0

    def test_noise_autocorrelated(self):
        m = machine(
            np.random.default_rng(17),
            phases=PHASES[:1],
            noise_sigma=0.05,
            noise_rho=0.9,
        )
        alphas = np.array([m.advance().alpha for _ in range(5000)])
        x = alphas - alphas.mean()
        autocorr = float(np.corrcoef(x[:-1], x[1:])[0, 1])
        assert autocorr > 0.6

    def test_single_phase_never_transitions(self):
        m = machine(np.random.default_rng(19), phases=PHASES[:1])
        for _ in range(100):
            m.advance()
            assert m.current_phase_index == 0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PhaseMachine((), 10, 0.01, 0.5, rng)
        with pytest.raises(ValueError):
            PhaseMachine(PHASES, 0.5, 0.01, 0.5, rng)
        with pytest.raises(ValueError):
            PhaseMachine(PHASES, 10, -0.1, 0.5, rng)
        with pytest.raises(ValueError):
            PhaseMachine(PHASES, 10, 0.01, 1.0, rng)
