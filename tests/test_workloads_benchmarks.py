"""Benchmark specs, instances, PARSEC/SPEC catalogues, input sets."""

import numpy as np
import pytest

from repro.rng import SeedSequenceFactory
from repro.workloads.benchmark import (
    BenchmarkInstance,
    BenchmarkSpec,
    CPU_BOUND,
    MEMORY_BOUND,
    MemoryBehavior,
    make_instances,
)
from repro.workloads.parsec import PARSEC_BENCHMARKS, SHORT_NAMES, parsec_benchmark
from repro.workloads.spec import SPEC_BENCHMARKS, spec_benchmark


class TestCatalogues:
    def test_eight_parsec_benchmarks(self):
        assert len(PARSEC_BENCHMARKS) == 8
        kinds = [s.kind for s in PARSEC_BENCHMARKS.values()]
        assert kinds.count(CPU_BOUND) == 4
        assert kinds.count(MEMORY_BOUND) == 4

    def test_four_spec_benchmarks_all_cpu_bound(self):
        assert len(SPEC_BENCHMARKS) == 4
        assert all(s.kind == CPU_BOUND for s in SPEC_BENCHMARKS.values())

    def test_short_name_lookup(self):
        assert parsec_benchmark("bschls").name == "blackscholes"
        assert parsec_benchmark("sclust").name == "streamcluster"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            parsec_benchmark("doom")
        with pytest.raises(KeyError):
            spec_benchmark("doom")

    def test_class_structure_in_miss_rates(self):
        """Memory-bound benchmarks have far higher off-chip miss rates."""
        cpu = [s.mean_l2_mpki for s in PARSEC_BENCHMARKS.values() if s.kind == "C"]
        mem = [s.mean_l2_mpki for s in PARSEC_BENCHMARKS.values() if s.kind == "M"]
        assert max(cpu) < min(mem)

    def test_short_names_cover_all(self):
        assert set(SHORT_NAMES) == set(PARSEC_BENCHMARKS)


class TestInputSets:
    def test_paper_default_input_rule(self):
        # CPU-bound -> simlarge, memory-bound -> native.
        assert parsec_benchmark("blackscholes").input_set == "simlarge"
        assert parsec_benchmark("canneal").input_set == "native"

    def test_native_more_memory_intensive(self):
        sim = parsec_benchmark("canneal", input_set="simlarge")
        native = parsec_benchmark("canneal", input_set="native")
        assert native.mean_l2_mpki > sim.mean_l2_mpki
        assert native.memory.footprint_bytes > sim.memory.footprint_bytes

    def test_input_set_roundtrip(self):
        base = PARSEC_BENCHMARKS["vips"]
        roundtrip = base.with_input_set("native").with_input_set("simlarge")
        assert roundtrip.mean_l2_mpki == pytest.approx(base.mean_l2_mpki)

    def test_same_input_set_is_identity(self):
        base = PARSEC_BENCHMARKS["vips"]
        assert base.with_input_set("simlarge") is base

    def test_unknown_input_set(self):
        with pytest.raises(ValueError):
            PARSEC_BENCHMARKS["vips"].with_input_set("huge")


class TestMemoryBehavior:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBehavior(0, 100, 0.1, 0.1)
        with pytest.raises(ValueError):
            MemoryBehavior(200, 100, 0.1, 0.1)  # WS > footprint
        with pytest.raises(ValueError):
            MemoryBehavior(50, 100, 0.8, 0.5)  # fractions > 1


class TestInstances:
    def test_advance_produces_spec_values(self):
        spec = parsec_benchmark("blackscholes")
        inst = BenchmarkInstance(spec, np.random.default_rng(0))
        sample = inst.advance()
        cpi_values = {p.cpi_base for p in spec.phases}
        assert sample.cpi_base in cpi_values
        assert 0.05 <= sample.alpha <= 1.0

    def test_retire_accounting(self):
        inst = BenchmarkInstance(
            parsec_benchmark("x264"), np.random.default_rng(0)
        )
        inst.retire(1e6)
        inst.retire(2e6)
        assert inst.instructions_retired == pytest.approx(3e6)
        with pytest.raises(ValueError):
            inst.retire(-1.0)

    def test_make_instances_independent_streams(self):
        specs = [parsec_benchmark("x264")] * 2
        instances = make_instances(specs, SeedSequenceFactory(1))
        a = [instances[0].advance().alpha for _ in range(50)]
        b = [instances[1].advance().alpha for _ in range(50)]
        assert a != b

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="bad",
                kind="X",
                suite="parsec",
                description="",
                phases=PARSEC_BENCHMARKS["vips"].phases,
                memory=PARSEC_BENCHMARKS["vips"].memory,
            )
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="bad",
                kind="C",
                suite="parsec",
                description="",
                phases=(),
                memory=PARSEC_BENCHMARKS["vips"].memory,
            )
