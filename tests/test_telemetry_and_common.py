"""Telemetry helpers and the experiment-result container."""

import numpy as np
import pytest

from repro.cmpsim.chip import IntervalResult
from repro.cmpsim.telemetry import Telemetry, WindowStats
from repro.experiments.common import ExperimentResult, horizon


def fake_interval(n_islands=2, n_cores=4, power=0.1) -> IntervalResult:
    return IntervalResult(
        dt=5e-4,
        core_busy=np.full(n_cores, 0.8),
        core_ips=np.full(n_cores, 1e9),
        core_instructions=np.full(n_cores, 5e5),
        core_power_w=np.full(n_cores, 5.0),
        core_utilization=np.full(n_cores, 0.7),
        core_temperature_c=np.full(n_cores, 55.0),
        island_power_w=np.full(n_islands, 10.0),
        island_power_frac=np.full(n_islands, power),
        island_bips=np.full(n_islands, 2.0),
        island_utilization=np.full(n_islands, 0.7),
        island_frequency_ghz=np.full(n_islands, 1.6),
        chip_power_w=25.0,
        chip_power_frac=2 * power + 0.05,
        chip_bips=4.0,
    )


def record_ticks(telemetry: Telemetry, powers, gpm_every=3):
    for t, p in enumerate(powers):
        telemetry.record(
            time_s=t * 5e-4,
            result=fake_interval(power=p),
            setpoints=np.array([0.1, 0.1]),
            sensed=np.array([p, p]),
            is_gpm_tick=(t % gpm_every == 0),
        )


class TestTelemetry:
    def test_record_and_finalize(self):
        t = Telemetry(n_islands=2, n_cores=4)
        record_ticks(t, [0.1, 0.11, 0.12])
        arrays = t.finalize()
        assert arrays["island_power_frac"].shape == (3, 2)
        assert t.n_intervals == 3

    def test_record_after_finalize_rejected(self):
        t = Telemetry(n_islands=2, n_cores=4)
        record_ticks(t, [0.1])
        t.finalize()
        with pytest.raises(RuntimeError):
            record_ticks(t, [0.1])

    def test_gpm_tick_indices(self):
        t = Telemetry(n_islands=2, n_cores=4)
        record_ticks(t, [0.1] * 7, gpm_every=3)
        assert t.gpm_tick_indices().tolist() == [0, 3, 6]

    def test_tracking_segments_cover_all_windows_and_islands(self):
        t = Telemetry(n_islands=2, n_cores=4)
        record_ticks(t, [0.1] * 9, gpm_every=3)
        segments = t.tracking_segments()
        # 3 windows x 2 islands.
        assert len(segments) == 6
        for series, setpoint in segments:
            assert series.shape == (3,)
            assert setpoint.shape == (1,)

    def test_window_stats_storage(self):
        t = Telemetry(n_islands=2, n_cores=4)
        w = WindowStats(
            island_power_frac=np.array([0.1, 0.1]),
            island_bips=np.array([2.0, 2.0]),
            island_utilization=np.array([0.7, 0.7]),
            island_setpoints=np.array([0.1, 0.1]),
            island_energy_j=np.array([0.05, 0.05]),
            island_instructions=np.array([1e6, 1e6]),
            duration_s=5e-3,
        )
        t.push_window(w)
        assert t.windows == [w]


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            experiment="demo", description="a demo", headers=("a", "b")
        )
        result.add_row("x", 1.5)
        result.add_series("trace", [1.0, 2.0, 3.0])
        result.notes.append("a note")
        text = result.render()
        assert "demo" in text
        assert "1.5000" in text
        assert "note: a note" in text
        assert "trace" in text

    def test_series_coerced_to_float_arrays(self):
        result = ExperimentResult(experiment="demo", description="d")
        result.add_series("xs", [1, 2, 3])
        assert result.series["xs"].dtype == np.float64

    def test_horizon_switch(self):
        assert horizon(True) < horizon(False)
