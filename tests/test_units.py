"""Unit-conversion helpers."""

import pytest

from repro import units


def test_time_conversions():
    assert units.ms(5) == pytest.approx(5e-3)
    assert units.us(2) == pytest.approx(2e-6)
    assert units.ns(100) == pytest.approx(1e-7)


def test_cycles_at_scales_with_frequency():
    # 100 ns at 2 GHz is 200 cycles — the Table I memory latency.
    assert units.cycles_at(100e-9, 2.0) == pytest.approx(200.0)
    # Half the frequency, half the cycles for the same wall-clock time.
    assert units.cycles_at(100e-9, 1.0) == pytest.approx(100.0)


def test_cycles_roundtrip():
    seconds = units.seconds_for_cycles(200.0, 2.0)
    assert units.cycles_at(seconds, 2.0) == pytest.approx(200.0)


def test_bips():
    assert units.bips(2e9, 1.0) == pytest.approx(2.0)
    assert units.bips(1e9, 0.5) == pytest.approx(2.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_invalid_frequency_rejected(bad):
    with pytest.raises(ValueError):
        units.cycles_at(1e-9, bad)
    with pytest.raises(ValueError):
        units.seconds_for_cycles(100, bad)


def test_bips_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        units.bips(1e9, 0.0)
