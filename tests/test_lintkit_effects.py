"""Tests for ``repro.lintkit.effects`` — the interprocedural effect pass.

Organized bottom-up: each EFF rule on minimal in-memory mini-programs
(:func:`analyze_sources_effects`), then the propagation machinery (root
binding, CHA dispatch, re-export chains, chain rendering), then the
engine/CLI integration and the shared parsed-module cache, and finally
the seeded-mutation fixture ``tests/fixtures/effects_mutation/`` whose
``# expect: EFFxxx`` markers must match the analysis output exactly.

The in-memory mini-programs name their modules ``runner.py`` and
``simulator.py`` so the analysis' dotted-suffix roots bind to them the
same way they bind to the real tree.
"""

from __future__ import annotations

import re
import textwrap
from pathlib import Path

from repro.lintkit import lint_paths
from repro.lintkit.cli import main
from repro.lintkit.effects import EFF_RULES, ROOTS, analyze_sources_effects
from repro.lintkit.engine import clear_module_cache, _MODULE_CACHE

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = (
    Path(__file__).resolve().parent / "fixtures" / "effects_mutation"
)

#: A minimal clean worker/simulator pair; tests overlay violations on it.
SIM_PATH = "src/mini/simulator.py"
RUN_PATH = "src/mini/runner.py"

CLEAN_SIMULATOR = """
class Simulation:
    def __init__(self, seed):
        self.seed = seed

    def run(self):
        return float(self.seed) * 2.0
"""

CLEAN_RUNNER = """
from .simulator import Simulation

def _execute(request):
    sim = Simulation(request["seed"])
    return sim.run()

def _supervised_worker(queue):
    return _execute(queue.get())
"""


def analyze(
    simulator: str = CLEAN_SIMULATOR,
    runner: str = CLEAN_RUNNER,
    extra: dict[str, str] | None = None,
):
    """Run the effects pass over a dedented in-memory mini-program."""
    sources = {
        SIM_PATH: textwrap.dedent(simulator),
        RUN_PATH: textwrap.dedent(runner),
    }
    for path, text in (extra or {}).items():
        sources[path] = textwrap.dedent(text)
    return analyze_sources_effects(sources)


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


class TestCleanBaseline:
    def test_clean_mini_program_is_silent(self):
        assert analyze() == []

    def test_rule_catalogue_covers_eff001_to_eff005(self):
        assert [r[0] for r in EFF_RULES] == [
            "EFF001",
            "EFF002",
            "EFF003",
            "EFF004",
            "EFF005",
        ]

    def test_roots_cover_all_three_guarantees(self):
        assert sorted(r.rule_id for r in ROOTS) == [
            "EFF001",
            "EFF002",
            "EFF003",
        ]


# ---------------------------------------------------------------------------
# EFF001 — shared-state mutation reachable from a worker
# ---------------------------------------------------------------------------


class TestEff001ParallelSafety:
    def test_direct_global_statement_write_fires(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _COUNT = 0

            def _execute(request):
                global _COUNT
                _COUNT = _COUNT + 1
                return Simulation(request["seed"]).run()
            """
        )
        assert rule_ids(findings) == ["EFF001"]
        assert "_COUNT" in findings[0].message

    def test_container_mutation_two_calls_deep_fires(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _CACHE = {}

            def _remember(key, value):
                _CACHE[key] = value

            def _execute(request):
                out = Simulation(request["seed"]).run()
                _remember(request["key"], out)
                return out
            """
        )
        assert rule_ids(findings) == ["EFF001"]
        assert "via" in findings[0].message
        assert "_remember" in findings[0].message

    def test_mutating_method_on_module_global_fires(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _LOG = []

            def _execute(request):
                _LOG.append(request["seed"])
                return Simulation(request["seed"]).run()
            """
        )
        assert rule_ids(findings) == ["EFF001"]

    def test_local_mutation_is_silent(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            def _execute(request):
                log = []
                log.append(request["seed"])
                return Simulation(request["seed"]).run()
            """
        )
        assert findings == []

    def test_unreachable_mutation_is_silent(self):
        # The same write outside the worker's call graph does not fire.
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _CACHE = {}

            def summarize_results(key, value):
                _CACHE[key] = value

            def _execute(request):
                return Simulation(request["seed"]).run()
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# EFF002 — cache-key-unsound input on the cached run path
# ---------------------------------------------------------------------------


class TestEff002CacheSoundness:
    def test_env_read_in_init_fires(self):
        findings = analyze(
            simulator="""
            import os

            class Simulation:
                def __init__(self, seed):
                    self.seed = seed
                    self.scale = float(os.getenv("SCALE", "1"))

                def run(self):
                    return self.seed * self.scale
            """
        )
        assert "EFF002" in rule_ids(findings)

    def test_os_environ_subscript_fires(self):
        findings = analyze(
            simulator="""
            import os

            class Simulation:
                def __init__(self, seed):
                    self.mode = os.environ["REPRO_MODE"]

                def run(self):
                    return 1.0
            """
        )
        assert "EFF002" in rule_ids(findings)

    def test_file_read_on_cached_path_fires(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed):
                    self.table = open("tuning.txt").read()

                def run(self):
                    return 1.0
            """
        )
        assert "EFF002" in rule_ids(findings)

    def test_mutated_global_read_fires_but_constant_read_does_not(self):
        # Reading a module binding that somebody mutates is a hidden
        # input; reading a never-written constant is a fixed input.
        mutated = analyze(
            simulator="""
            _TUNING = {"gain": 1.0}

            def retune(gain):
                _TUNING["gain"] = gain

            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return _TUNING["gain"] * self.seed
            """
        )
        assert "EFF002" in rule_ids(mutated)
        constant = analyze(
            simulator="""
            _GAINS = {"default": 1.0}

            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return _GAINS["default"] * self.seed
            """
        )
        assert "EFF002" not in rule_ids(constant)

    def test_env_read_outside_cached_path_is_silent(self):
        # Mirrors the real runner: reading env to choose the *cache
        # location* is outside Simulation.__init__/run, hence sound.
        findings = analyze(
            runner="""
            import os

            from .simulator import Simulation

            def resolve_cache_dir():
                return os.getenv("CACHE_DIR", ".cache")

            def _execute(request):
                return Simulation(request["seed"]).run()
            """
        )
        assert "EFF002" not in rule_ids(findings)


# ---------------------------------------------------------------------------
# EFF003 — hidden I/O / wall-clock in simulation-reachable code
# ---------------------------------------------------------------------------


class TestEff003SimulationPurity:
    def test_wall_clock_fires(self):
        findings = analyze(
            simulator="""
            import time

            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return time.perf_counter()
            """
        )
        assert "EFF003" in rule_ids(findings)

    def test_print_three_calls_deep_fires(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return _interval(self.seed)

            def _interval(seed):
                return _island_power(seed)

            def _island_power(seed):
                print("debug", seed)
                return float(seed)
            """
        )
        eff3 = [f for f in findings if f.rule_id == "EFF003"]
        assert len(eff3) == 1
        assert "_interval" in eff3[0].message
        assert "_island_power" in eff3[0].message

    def test_file_write_via_pathlib_method_fires(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed, trace_path):
                    self.seed = seed
                    self.trace_path = trace_path

                def run(self):
                    self.trace_path.write_text("tick")
                    return 1.0
            """
        )
        assert "EFF003" in rule_ids(findings)

    def test_io_outside_simulation_graph_is_silent(self):
        findings = analyze(
            extra={
                "src/mini/report.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert findings == []


# ---------------------------------------------------------------------------
# EFF004 — RNG stream aliasing (local rule, fires everywhere)
# ---------------------------------------------------------------------------


class TestEff004RngAliasing:
    def test_pass_inside_wider_loop_fires(self):
        findings = analyze(
            extra={
                "src/mini/noise.py": """
                import numpy as np

                def make_noise(seed, n):
                    rng = np.random.default_rng(seed)
                    out = []
                    for _ in range(n):
                        out.append(_sample(rng))
                    return out

                def _sample(rng):
                    return float(rng.normal())
                """
            }
        )
        assert rule_ids(findings) == ["EFF004"]

    def test_closure_capture_after_local_draws_fires(self):
        findings = analyze(
            extra={
                "src/mini/noise.py": """
                import numpy as np

                def build(seed, values):
                    rng = np.random.default_rng(seed)
                    first = float(rng.normal())
                    def jitter(x):
                        return x + float(rng.normal())
                    return first, [jitter(v) for v in values]
                """
            }
        )
        assert rule_ids(findings) == ["EFF004"]

    def test_split_streams_per_consumer_is_silent(self):
        findings = analyze(
            extra={
                "src/mini/noise.py": """
                from repro.rng import split

                def make_noise(rng, values):
                    a, b = split(rng, 2)
                    return [float(a.normal()) for _ in values], float(b.normal())
                """
            }
        )
        assert findings == []

    def test_single_consumer_pass_is_silent(self):
        findings = analyze(
            extra={
                "src/mini/noise.py": """
                import numpy as np

                def make_noise(seed):
                    rng = np.random.default_rng(seed)
                    return _sample(rng)

                def _sample(rng):
                    return float(rng.normal())
                """
            }
        )
        assert findings == []

    def test_rng_module_itself_is_exempt(self):
        findings = analyze(
            extra={
                "src/mini/rng.py": """
                import numpy as np

                def fan_out(seed, sinks):
                    rng = np.random.default_rng(seed)
                    return [sink(rng) for sink in sinks]
                """
            }
        )
        assert findings == []


# ---------------------------------------------------------------------------
# EFF005 — order-sensitive accumulation (reachable code only)
# ---------------------------------------------------------------------------


class TestEff005UnorderedAccumulation:
    def test_set_iteration_accumulation_fires_when_reachable(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed):
                    self.islands = {seed, seed + 1, seed + 2}

                def run(self):
                    total = 0.0
                    for island in {1.0, 2.5, 0.25}:
                        total += island
                    return total
            """
        )
        assert "EFF005" in rule_ids(findings)

    def test_sum_over_set_call_fires(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return sum(set([self.seed, 2.0, 3.0]))
            """
        )
        assert "EFF005" in rule_ids(findings)

    def test_sorted_iteration_is_silent(self):
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    total = 0.0
                    for island in sorted({1.0, 2.5, 0.25}):
                        total += island
                    return total
            """
        )
        assert findings == []

    def test_unreachable_accumulation_is_silent(self):
        findings = analyze(
            extra={
                "src/mini/report.py": """
                def tally(values):
                    total = 0.0
                    for v in set(values):
                        total += v
                    return total
                """
            }
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Propagation machinery
# ---------------------------------------------------------------------------


class TestPropagation:
    def test_cha_sees_through_dynamic_dispatch(self):
        # run() calls self.scheme.on_gpm(...) on an unknown receiver;
        # CHA must still reach the concrete scheme's method.
        findings = analyze(
            simulator="""
            class Simulation:
                def __init__(self, seed, scheme):
                    self.seed = seed
                    self.scheme = scheme

                def run(self):
                    return self.scheme.on_gpm(self.seed)
            """,
            extra={
                "src/mini/scheme.py": """
                import time

                class CPMScheme:
                    def on_gpm(self, seed):
                        return time.monotonic() + seed
                """
            },
        )
        eff3 = [f for f in findings if f.rule_id == "EFF003"]
        assert len(eff3) == 1
        assert eff3[0].path == "src/mini/scheme.py"
        assert "CPMScheme.on_gpm" in eff3[0].message

    def test_reexport_chain_resolves(self):
        # package __init__ re-exports the helper; the worker imports it
        # from the package, and the write must still be traced.
        findings = analyze(
            runner="""
            from .simulator import Simulation
            from .helpers import remember

            def _execute(request):
                out = Simulation(request["seed"]).run()
                remember(request["key"], out)
                return out
            """,
            extra={
                "src/mini/helpers/__init__.py": """
                from .store import remember
                """,
                "src/mini/helpers/store.py": """
                _SEEN = {}

                def remember(key, value):
                    _SEEN[key] = value
                """,
            },
        )
        assert rule_ids(findings) == ["EFF001"]
        assert findings[0].path == "src/mini/helpers/store.py"

    def test_inline_suppression_is_honoured(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _LOG = []

            def _execute(request):
                _LOG.append(request["seed"])  # lint: ignore[EFF001] test fixture
                return Simulation(request["seed"]).run()
            """
        )
        assert findings == []

    def test_finding_message_names_root_and_chain(self):
        findings = analyze(
            runner="""
            from .simulator import Simulation

            _LOG = []

            def _audit(value):
                _LOG.append(value)

            def _execute(request):
                out = Simulation(request["seed"]).run()
                _audit(out)
                return out
            """
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "parallel worker entry" in message
        assert "runner._execute -> runner._audit" in message


# ---------------------------------------------------------------------------
# The EFF002 regression the syntactic rules cannot catch
# ---------------------------------------------------------------------------


class TestCacheUnsoundRegression:
    """A planted env-var read inside the cached run path: invisible to
    every per-module syntactic rule, caught by the effects pass."""

    PLANTED = {
        "src/mini/simulator.py": textwrap.dedent(
            """
            from .tuning import ambient_gain

            class Simulation:
                def __init__(self, seed):
                    self.seed = seed

                def run(self):
                    return float(self.seed) * ambient_gain()
            """
        ),
        "src/mini/tuning.py": textwrap.dedent(
            """
            import os

            def ambient_gain():
                return float(os.getenv("REPRO_GAIN", "1.0"))
            """
        ),
        "src/mini/runner.py": textwrap.dedent(CLEAN_RUNNER),
    }

    def test_syntactic_rules_miss_it(self, tmp_path):
        root = tmp_path / "src" / "mini"
        root.mkdir(parents=True)
        for path, text in self.PLANTED.items():
            (tmp_path / path).write_text(text)
        report = lint_paths([tmp_path / "src"], analyses=("rules",))
        assert not any(
            f.rule_id.startswith(("DET", "EFF")) for f in report.findings
        )

    def test_effects_pass_catches_it(self):
        findings = analyze_sources_effects(self.PLANTED)
        eff2 = [f for f in findings if f.rule_id == "EFF002"]
        assert len(eff2) == 1
        assert eff2[0].path == "src/mini/tuning.py"
        assert "os.getenv" in eff2[0].message
        assert "Simulation.run" in eff2[0].message


# ---------------------------------------------------------------------------
# Engine / CLI integration and the shared parsed-module cache
# ---------------------------------------------------------------------------


class TestEngineAndCli:
    def test_cli_exit_one_on_fixture_findings(self):
        assert (
            main([str(FIXTURE_DIR), "--analysis", "effects", "--no-baseline"])
            == 1
        )

    def test_cli_exit_zero_when_effects_clean(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Clean."""\n\n__all__: list[str] = []\n')
        assert (
            main([str(target), "--analysis", "effects", "--no-baseline"]) == 0
        )
        capsys.readouterr()

    def test_list_rules_includes_effect_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id, _, _ in EFF_RULES:
            assert rule_id in out

    def test_parsed_module_cache_is_shared_across_runs(self):
        clear_module_cache()
        lint_paths([FIXTURE_DIR], analyses=("rules",))
        populated = len(_MODULE_CACHE)
        assert populated >= 3
        before = {
            key: id(entry[1]) for key, entry in _MODULE_CACHE.items()
        }
        lint_paths([FIXTURE_DIR], analyses=("effects",))
        after = {key: id(entry[1]) for key, entry in _MODULE_CACHE.items()}
        assert before == after, "second run must reuse the cached parses"

    def test_cache_invalidates_on_file_change(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text('"""Doc."""\n\n__all__ = ["X"]\nX = 1\n')
        clear_module_cache()
        first = lint_paths([target], analyses=("rules",))
        assert first.findings == ()
        # Make the file newer *and* different: the signature must miss.
        target.write_text('"""Doc."""\n\n__all__ = ["X"]\nX = 1\nY = 2\n')
        import os as _os

        stat = target.stat()
        _os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
        second = lint_paths([target], analyses=("rules",))
        assert [f.rule_id for f in second.findings] == ["API002"]


# ---------------------------------------------------------------------------
# The seeded-mutation fixture
# ---------------------------------------------------------------------------


class TestMutationFixture:
    def test_expected_findings_exactly(self):
        """The analysis flags every seeded violation and nothing else."""
        expected = []
        for path in sorted(FIXTURE_DIR.glob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                marker = re.search(r"# expect: (EFF\d{3})", line)
                if marker:
                    expected.append((rel, lineno, marker.group(1)))
        assert len(expected) == 7, "fixture must seed exactly seven violations"
        assert {m for _, _, m in expected} == {
            "EFF001",
            "EFF002",
            "EFF003",
            "EFF004",
            "EFF005",
        }
        report = lint_paths([FIXTURE_DIR], analyses=("effects",))
        found = sorted(
            (f.path, f.line, f.rule_id) for f in report.findings
        )
        assert found == sorted(expected)

    def test_fixture_is_otherwise_api_clean(self):
        # Some planted effects are visible to the determinism rules at
        # the *direct call site* (that overlap is inherent — DET003 also
        # dislikes time.perf_counter); everything else in the rule
        # catalogue must accept the fixture, so it cannot rot into
        # testing something other than what it claims.
        report = lint_paths([FIXTURE_DIR], analyses=("rules",))
        assert all(f.rule_id.startswith("DET") for f in report.findings), [
            f.render() for f in report.findings
        ]


# ---------------------------------------------------------------------------
# Acceptance: the repository's own tree is effect-clean
# ---------------------------------------------------------------------------


class TestRepositoryTree:
    def test_src_tree_has_no_effect_findings(self):
        report = lint_paths([REPO_ROOT / "src"], analyses=("effects",))
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"effect findings in src/:\n{rendered}"

    def test_real_roots_bind_and_reach_deep(self):
        # Vacuous cleanliness would be worthless: assert the roots bind
        # to the real tree and the walk reaches a substantial fraction
        # of it, including code only visible through dynamic dispatch.
        from repro.lintkit.effects.propagate import _reach
        from repro.lintkit.effects.summaries import summarize
        from repro.lintkit.engine import iter_python_files, load_module

        modules = [
            load_module(p) for p in iter_python_files([REPO_ROOT / "src"])
        ]
        program = summarize(modules)
        for root in ROOTS:
            reached = _reach(program, root.suffixes)
            assert reached, f"root {root.rule_id} bound no entry point"
            assert len(reached) > 100, (
                f"root {root.rule_id} reached only {len(reached)} functions"
            )
        sim_reach = _reach(program, ("Simulation.run",))
        assert "repro.cmpsim.telemetry.Telemetry.record" in sim_reach
        assert "repro.faults.NoisySensor.apply" in sim_reach
