"""Headline results hold across seeds, not just at the default one.

A reproduction whose conclusions flip with the random seed has not
reproduced anything; these tests re-derive the central claims at several
seeds.
"""

import pytest

from repro.baselines.maxbips import MaxBIPSScheme
from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.calibration import calibrate
from repro.core.cpm import run_cpm
from repro.core.metrics import performance_degradation

pytestmark = pytest.mark.slow

SEEDS = (101, 202, 303)


@pytest.mark.parametrize("seed", SEEDS)
def test_calibration_quality_across_seeds(seed):
    cal = calibrate(DEFAULT_CONFIG, seed=seed, n_gpm=8)
    assert cal.mean_transducer_r_squared > 0.9
    assert cal.validation_error < 0.10
    assert cal.stability_limit > 1.3
    assert 0.05 < cal.system_gain < 0.3


@pytest.mark.parametrize("seed", SEEDS)
def test_cpm_beats_maxbips_across_seeds(seed):
    reference = Simulation(
        DEFAULT_CONFIG, NoManagementScheme(), budget_fraction=1.0, seed=seed
    ).run(12)
    cpm = run_cpm(
        DEFAULT_CONFIG, budget_fraction=0.8, n_gpm_intervals=12, seed=seed
    )
    maxbips = Simulation(
        DEFAULT_CONFIG, MaxBIPSScheme(), budget_fraction=0.8, seed=seed
    ).run(12)
    cpm_deg = performance_degradation(cpm, reference)
    mb_deg = performance_degradation(maxbips, reference)
    assert cpm_deg < mb_deg
    assert cpm_deg < 0.08


@pytest.mark.parametrize("seed", SEEDS)
def test_budget_tracking_across_seeds(seed):
    result = run_cpm(
        DEFAULT_CONFIG, budget_fraction=0.8, n_gpm_intervals=12, seed=seed
    )
    chip = result.telemetry["chip_power_frac"][40:]
    assert chip.mean() == pytest.approx(0.8, abs=0.04)
    assert chip.max() < 0.8 * 1.08


@pytest.mark.parametrize("seed", SEEDS)
def test_maxbips_never_overshoots_across_seeds(seed):
    result = Simulation(
        DEFAULT_CONFIG, MaxBIPSScheme(), budget_fraction=0.8, seed=seed
    ).run(12)
    chip = result.telemetry["chip_power_frac"][10:]
    assert chip.max() <= 0.8 + 1e-9
