"""DVFS table semantics and the analytic CPI stack."""

import numpy as np
import pytest

from repro.cmpsim.core import cpi_stack, frequency_speedup, utilization_reference
from repro.cmpsim.dvfs import DVFSTable
from repro.config import MemoryConfig
from repro.workloads.parsec import parsec_benchmark


class TestDVFSTable:
    def test_bounds(self):
        t = DVFSTable()
        assert t.f_min == 0.6
        assert t.f_max == 2.0
        assert t.n_points == 8

    def test_clamp(self):
        t = DVFSTable()
        assert t.clamp(3.0) == 2.0
        assert t.clamp(0.1) == 0.6
        assert t.clamp(1.3) == 1.3

    def test_voltage_interpolation(self):
        t = DVFSTable()
        v_mid = t.voltage_at(0.7)
        assert t.voltage_at(0.6) < v_mid < t.voltage_at(0.8)
        assert t.voltage_at(2.0) == pytest.approx(1.484)

    def test_voltage_outside_range_raises(self):
        t = DVFSTable()
        with pytest.raises(ValueError):
            t.voltage_at(2.5)
        with pytest.raises(ValueError):
            t.voltage_at(0.3)

    def test_quantize_nearest(self):
        t = DVFSTable()
        assert t.quantize(1.29) == pytest.approx(1.2)
        assert t.quantize(1.31) == pytest.approx(1.4)

    def test_quantize_down_is_conservative(self):
        t = DVFSTable()
        assert t.quantize_down(1.99) == pytest.approx(1.8)
        assert t.quantize_down(0.61) == pytest.approx(0.6)
        assert t.quantize_down(0.2) == pytest.approx(0.6)  # clamped first

    def test_index_of(self):
        t = DVFSTable()
        assert t.index_of(1.4) == 4
        with pytest.raises(ValueError):
            t.index_of(1.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            DVFSTable([(1.0, 1.0)])
        with pytest.raises(ValueError):
            DVFSTable([(1.0, 1.2), (2.0, 1.0)])  # voltage decreasing


class TestCPIStack:
    MEM = MemoryConfig()

    def test_memory_term_scales_with_frequency(self):
        """Off-chip stalls cost more cycles at higher frequency — the core
        mechanism behind every performance result in the paper."""
        low = cpi_stack(0.6, 1.0, 1.0, 0.0, 10.0, self.MEM)
        high = cpi_stack(2.0, 1.0, 1.0, 0.0, 10.0, self.MEM)
        assert high.cpi > low.cpi
        # 10 MPKI * 100ns: 2 cycles/instr at 2 GHz, 0.6 at 600 MHz.
        assert high.cpi == pytest.approx(1.0 + 2.0)
        assert low.cpi == pytest.approx(1.0 + 0.6)

    def test_cpu_bound_ips_linear_in_frequency(self):
        low = cpi_stack(1.0, 1.0, 1.0, 0.0, 0.0, self.MEM)
        high = cpi_stack(2.0, 1.0, 1.0, 0.0, 0.0, self.MEM)
        assert high.ips == pytest.approx(2 * low.ips)

    def test_memory_bound_ips_sublinear(self):
        low = cpi_stack(1.0, 1.0, 1.0, 0.0, 20.0, self.MEM)
        high = cpi_stack(2.0, 1.0, 1.0, 0.0, 20.0, self.MEM)
        assert high.ips < 1.5 * low.ips

    def test_busy_fraction(self):
        r = cpi_stack(2.0, 1.0, 1.0, 0.0, 10.0, self.MEM)
        assert r.busy == pytest.approx(1.0 / 3.0)
        r2 = cpi_stack(2.0, 1.0, 1.0, 0.0, 0.0, self.MEM)
        assert r2.busy == pytest.approx(1.0)

    def test_l1_misses_frequency_invariant_cycles(self):
        low = cpi_stack(0.6, 1.0, 1.0, 20.0, 0.0, self.MEM)
        high = cpi_stack(2.0, 1.0, 1.0, 20.0, 0.0, self.MEM)
        assert low.cpi == pytest.approx(high.cpi)  # on-chip stalls scale

    def test_alpha_scales_throughput_only(self):
        full = cpi_stack(2.0, 1.0, 1.0, 5.0, 1.0, self.MEM)
        half = cpi_stack(2.0, 0.5, 1.0, 5.0, 1.0, self.MEM)
        assert half.ips == pytest.approx(0.5 * full.ips)
        assert half.busy == pytest.approx(full.busy)

    def test_vectorized(self):
        f = np.array([0.6, 2.0])
        r = cpi_stack(f, 0.8, 1.0, 10.0, 5.0, self.MEM)
        assert r.cpi.shape == (2,)
        assert r.cpi[1] > r.cpi[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            cpi_stack(0.0, 1.0, 1.0, 0.0, 0.0, self.MEM)
        with pytest.raises(ValueError):
            cpi_stack(1.0, 1.5, 1.0, 0.0, 0.0, self.MEM)


class TestSpeedupAndReference:
    def test_frequency_speedup_cpu_bound(self):
        assert frequency_speedup(1.0, 2.0, 1.0, 0.0) == pytest.approx(2.0)

    def test_frequency_speedup_memory_bound_saturates(self):
        s = frequency_speedup(1.0, 2.0, 1.0, 5.0)
        assert 1.0 < s < 1.2

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            frequency_speedup(0.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            frequency_speedup(1.0, 2.0, 0.0, 0.0)

    def test_utilization_reference_ordering(self):
        """CPU-bound peak throughput far exceeds memory-bound."""
        mem = MemoryConfig()
        cpu_ref = utilization_reference(parsec_benchmark("blackscholes"), 2.0, mem)
        mem_ref = utilization_reference(parsec_benchmark("canneal"), 2.0, mem)
        assert cpu_ref > 2 * mem_ref
