"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.slow


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "cpm"
        assert args.budget == 0.8
        assert args.cores == 8

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])


class TestRunCommand:
    def test_run_and_export(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--scheme", "none",
                "--intervals", "2",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean chip power" in out
        summary = json.loads((tmp_path / "no-management.json").read_text())
        assert summary["n_intervals"] == 20

    def test_run_cpm_policy_selection(self, capsys):
        code = main(
            ["run", "--scheme", "cpm", "--policy", "uniform", "--intervals", "3"]
        )
        assert code == 0
        assert "cpm" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_prints_all_schemes(self, capsys):
        code = main(["compare", "--intervals", "3", "--budget", "0.8"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("no-management", "cpm", "maxbips", "static-uniform"):
            assert name in out


class TestCalibrateCommand:
    def test_calibrate_prints_gains(self, capsys):
        code = main(["calibrate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "system gain a" in out
        assert "holdout" in out


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        code = main(["experiment", "fig06_power_utilization", "--quick"])
        assert code == 0
        assert "fig06" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "fig99_nonsense"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
