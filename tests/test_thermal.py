"""Thermal substrate: floorplan, RC network, hotspot/violation tracking."""

import numpy as np
import pytest

from repro.config import ThermalConfig
from repro.thermal.floorplan import Floorplan, grid_floorplan
from repro.thermal.hotspot import (
    HotspotDetector,
    ThermalConstraints,
    ViolationTracker,
)
from repro.thermal.rc_model import RCThermalModel


class TestFloorplan:
    def test_default_shapes(self):
        assert (grid_floorplan(8).rows, grid_floorplan(8).cols) == (2, 4)
        assert (grid_floorplan(32).rows, grid_floorplan(32).cols) == (2, 16)
        assert (grid_floorplan(3).rows, grid_floorplan(3).cols) == (1, 3)

    def test_positions_row_major(self):
        fp = grid_floorplan(8)
        assert fp.position(0) == (0, 0)
        assert fp.position(3) == (0, 3)
        assert fp.position(4) == (1, 0)

    def test_adjacency_symmetric_no_self_loops(self):
        adj = grid_floorplan(8).core_adjacency()
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()

    def test_adjacency_edges(self):
        fp = grid_floorplan(8)  # 2x4 grid
        adj = fp.core_adjacency()
        assert adj[0, 1]      # horizontal neighbours
        assert adj[0, 4]      # vertical neighbours
        assert not adj[0, 5]  # diagonal is not adjacent
        assert not adj[3, 4]  # row wrap is not adjacent

    def test_island_adjacency(self):
        fp = grid_floorplan(8)
        island_of_core = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        pairs = fp.adjacent_island_pairs(island_of_core)
        assert (0, 1) in pairs
        assert (0, 2) in pairs  # vertically adjacent (cores 0/1 above 4/5)
        assert (0, 3) not in pairs

    def test_validation(self):
        with pytest.raises(ValueError):
            Floorplan(n_cores=8, rows=1, cols=4)
        with pytest.raises(IndexError):
            grid_floorplan(4).position(4)


class TestRCModel:
    def model(self):
        return RCThermalModel(grid_floorplan(4), ThermalConfig())

    def test_starts_at_ambient(self):
        m = self.model()
        np.testing.assert_allclose(m.temperatures, 45.0)

    def test_warms_toward_steady_state(self):
        m = self.model()
        power = np.array([8.0, 8.0, 8.0, 8.0])
        expected = m.steady_state(power)
        for _ in range(3000):
            m.step(power, dt=5e-4)
        np.testing.assert_allclose(m.temperatures, expected, atol=0.05)

    def test_steady_state_uniform_power(self):
        """Uniform power: no lateral flow, pure vertical balance."""
        m = self.model()
        cfg = m.config
        power = np.full(4, 10.0)
        expected = cfg.ambient_c + cfg.vertical_resistance_k_per_w * 10.0
        np.testing.assert_allclose(m.steady_state(power), expected, rtol=1e-9)

    def test_lateral_coupling_spreads_heat(self):
        m = self.model()
        power = np.array([20.0, 0.0, 0.0, 0.0])
        steady = m.steady_state(power)
        assert steady[0] > steady[1] > m.config.ambient_c
        # Hot core is cooler than it would be in isolation.
        isolated = m.config.ambient_c + m.config.vertical_resistance_k_per_w * 20
        assert steady[0] < isolated

    def test_energy_balance_at_steady_state(self):
        m = self.model()
        power = np.array([5.0, 12.0, 3.0, 9.0])
        steady = m.steady_state(power)
        vertical_out = (steady - m.config.ambient_c).sum() / (
            m.config.vertical_resistance_k_per_w
        )
        assert vertical_out == pytest.approx(power.sum(), rel=1e-9)

    def test_reset(self):
        m = self.model()
        m.step(np.full(4, 10.0), dt=5e-4)
        m.reset()
        np.testing.assert_allclose(m.temperatures, 45.0)
        m.reset(70.0)
        np.testing.assert_allclose(m.temperatures, 70.0)

    def test_stability_guard(self):
        m = self.model()
        with pytest.raises(ValueError):
            m.step(np.zeros(4), dt=1.0)  # way past the Euler limit

    def test_shape_validation(self):
        m = self.model()
        with pytest.raises(ValueError):
            m.step(np.zeros(3), dt=5e-4)
        with pytest.raises(ValueError):
            m.steady_state(np.zeros(5))


class TestHotspotDetector:
    def test_counts_hot_intervals(self):
        d = HotspotDetector(n_cores=2, threshold_c=85.0)
        d.observe(np.array([80.0, 90.0]))
        d.observe(np.array([86.0, 90.0]))
        np.testing.assert_array_equal(d.hot_intervals, [1, 2])
        np.testing.assert_allclose(d.hot_fraction(), [0.5, 1.0])
        assert d.any_hotspot

    def test_no_hotspots(self):
        d = HotspotDetector(n_cores=2, threshold_c=85.0)
        d.observe(np.array([60.0, 70.0]))
        assert not d.any_hotspot
        np.testing.assert_allclose(d.hot_fraction(), [0.0, 0.0])


class TestViolationTracker:
    def constraints(self):
        return ThermalConstraints(
            adjacent_pairs=frozenset({(0, 1)}),
            pair_share_cap=0.5,
            pair_consecutive_limit=2,
            single_share_cap=0.4,
            single_consecutive_limit=2,
        )

    def test_streak_within_limit_allowed(self):
        t = ViolationTracker(constraints=self.constraints(), n_islands=3)
        over = np.array([0.3, 0.3, 0.4])  # pair = 0.6 > 0.5
        assert not t.observe(over)
        assert not t.observe(over)
        assert t.observe(over)  # third consecutive -> violation
        assert t.violation_fraction() == pytest.approx(1 / 3)

    def test_streak_resets(self):
        t = ViolationTracker(constraints=self.constraints(), n_islands=3)
        over = np.array([0.3, 0.3, 0.4])
        under = np.array([0.2, 0.2, 0.6])  # island 2 over single cap
        t.observe(over)
        t.observe(over)
        t.observe(under)  # pair streak resets
        assert not t.observe(over)

    def test_single_island_constraint(self):
        t = ViolationTracker(constraints=self.constraints(), n_islands=3)
        shares = np.array([0.1, 0.1, 0.45])
        assert not t.observe(shares)
        assert not t.observe(shares)
        assert t.observe(shares)
        fractions = t.island_violation_fractions()
        assert fractions[2] > 0
        assert fractions[0] == 0

    def test_pair_attribution(self):
        t = ViolationTracker(constraints=self.constraints(), n_islands=3)
        over = np.array([0.3, 0.3, 0.4])
        for _ in range(4):
            t.observe(over)
        fractions = t.island_violation_fractions()
        assert fractions[0] == fractions[1] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ViolationTracker(constraints=self.constraints(), n_islands=1)
        with pytest.raises(ValueError):
            ThermalConstraints(adjacent_pairs=frozenset(), pair_share_cap=0.0)
