"""Static (leakage) power model."""

import numpy as np
import pytest

from repro.power.leakage import DEFAULT_VOLTAGE_EXPONENT, LeakagePowerModel


def model(**kwargs) -> LeakagePowerModel:
    defaults = dict(nominal_leakage_w=1.5, nominal_voltage=1.484)
    defaults.update(kwargs)
    return LeakagePowerModel(**defaults)


class TestVoltageDependence:
    def test_nominal_point(self):
        m = model()
        assert m.power(1.484, 60.0) == pytest.approx(1.5)

    def test_super_quadratic_exponent(self):
        """DIBL makes leakage fall faster than V^2 — the convex-EPI premise
        of the variation-aware policy."""
        m = model()
        half_v = m.power(1.484 / 2, 60.0)
        assert half_v < 1.5 / 4.0
        assert half_v == pytest.approx(1.5 * 0.5**DEFAULT_VOLTAGE_EXPONENT)

    def test_custom_exponent(self):
        m = model(voltage_exponent=2.0)
        assert m.power(0.742, 60.0) == pytest.approx(1.5 / 4.0)


class TestTemperatureDependence:
    def test_doubles_every_25c(self):
        m = model()
        assert m.power(1.484, 85.0) == pytest.approx(3.0, rel=1e-6)
        assert m.power(1.484, 35.0) == pytest.approx(1.5 / 2.0, rel=1e-6)

    def test_monotone_in_temperature(self):
        m = model()
        temps = np.linspace(40, 100, 13)
        powers = m.power(1.2, temps)
        assert np.all(np.diff(powers) > 0)


class TestProcessMultiplier:
    def test_linear_in_multiplier(self):
        m = model()
        base = m.power(1.3, 70.0, 1.0)
        assert m.power(1.3, 70.0, 2.0) == pytest.approx(2 * base)

    def test_vectorized_multipliers(self):
        m = model()
        out = m.power(1.3, 70.0, np.array([1.2, 1.5, 2.0, 1.0]))
        assert out.shape == (4,)
        assert out[2] == pytest.approx(2 * out[3])


class TestValidation:
    def test_negative_nominal_rejected(self):
        with pytest.raises(ValueError):
            model(nominal_leakage_w=-1.0)

    def test_nonpositive_voltage_rejected(self):
        m = model()
        with pytest.raises(ValueError):
            m.power(0.0, 60.0)

    def test_nonpositive_multiplier_rejected(self):
        m = model()
        with pytest.raises(ValueError):
            m.power(1.0, 60.0, 0.0)

    def test_exponent_below_one_rejected(self):
        with pytest.raises(ValueError):
            model(voltage_exponent=0.5)
