"""Table III mixes and island assignment."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.workloads.mixes import MIX1, MIX2, MIX3, Mix, mix_for_config, thermal_mix


class TestPaperMixes:
    def test_mix1_pairs_c_with_m(self):
        assert MIX1.n_cores == 8
        assert MIX1.n_islands == 4
        assert MIX1.characteristics() == ("C,M", "C,M", "C,M", "C,M")

    def test_mix2_homogeneous_islands(self):
        assert MIX2.characteristics() == ("C,C", "M,M", "C,C", "M,M")

    def test_mix3_sixteen_cores(self):
        assert MIX3.n_cores == 16
        assert MIX3.n_islands == 4
        chars = MIX3.characteristics()
        assert chars[0] == "C,C,C,C"
        assert chars[1] == "M,M,M,M"

    def test_thermal_mix_single_core_islands(self):
        mix = thermal_mix()
        assert mix.n_cores == 8
        assert mix.n_islands == 8
        assert [apps[0] for apps in mix.islands[:4]] == [
            "mesa", "bzip2", "gcc", "sixtrack",
        ]

    def test_specs_flattened_in_core_order(self):
        specs = MIX1.specs()
        assert len(specs) == 8
        assert specs[0].name == "blackscholes"
        assert specs[1].name == "streamcluster"


class TestReplication:
    def test_replicated_doubles(self):
        mix32 = MIX3.replicated(2)
        assert mix32.n_cores == 32
        assert mix32.n_islands == 8
        assert mix32.islands[4:] == MIX3.islands

    def test_replicated_requires_positive(self):
        with pytest.raises(ValueError):
            MIX1.replicated(0)


class TestMixForConfig:
    def test_default_8core_is_mix1(self):
        assert mix_for_config(DEFAULT_CONFIG) is MIX1

    def test_16core_is_mix3(self):
        cfg = DEFAULT_CONFIG.with_islands(16, 4)
        assert mix_for_config(cfg) is MIX3

    def test_32core_is_mix3_twice(self):
        cfg = DEFAULT_CONFIG.with_islands(32, 8)
        mix = mix_for_config(cfg)
        assert mix.n_cores == 32
        assert mix.n_islands == 8

    def test_regrouping_preserves_apps(self):
        """8 cores in 8 single-core islands: same apps, regrouped."""
        cfg = DEFAULT_CONFIG.with_islands(8, 8)
        mix = mix_for_config(cfg, MIX1)
        flat = [name for island in mix.islands for name in island]
        assert flat == [name for island in MIX1.islands for name in island]
        assert mix.n_islands == 8

    def test_regrouping_to_two_islands(self):
        cfg = DEFAULT_CONFIG.with_islands(8, 2)
        mix = mix_for_config(cfg, MIX1)
        assert mix.n_islands == 2
        assert mix.n_cores == 8

    def test_explicit_mix_matching_shape_passthrough(self):
        assert mix_for_config(DEFAULT_CONFIG, MIX2) is MIX2


def test_mix_is_value_object():
    a = Mix(name="x", islands=(("vips",),))
    b = Mix(name="x", islands=(("vips",),))
    assert a == b
    assert hash(a) == hash(b)
