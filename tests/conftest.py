"""Shared fixtures: small platforms, cached runs, cached calibration.

Simulation-backed tests share session-scoped runs wherever the assertion
only *reads* results — the simulator is deterministic per seed, so
sharing is exact and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import Simulation
from repro.config import CMPConfig, DEFAULT_CONFIG
from repro.core.calibration import default_calibration
from repro.core.cpm import run_cpm
from repro.rng import DEFAULT_SEED, SeedSequenceFactory

TEST_SEED = DEFAULT_SEED


@pytest.fixture(scope="session")
def default_config() -> CMPConfig:
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def small_config() -> CMPConfig:
    """A 4-core / 2-island platform for cheap simulation tests."""
    return DEFAULT_CONFIG.with_islands(4, 2)


@pytest.fixture(scope="session")
def seeds() -> SeedSequenceFactory:
    return SeedSequenceFactory(TEST_SEED)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def calibration(default_config):
    """The memoized default calibration for the default platform."""
    return default_calibration(default_config, seed=TEST_SEED)


@pytest.fixture(scope="session")
def cpm_run_80(default_config):
    """One shared CPM run at an 80% budget (default platform, Mix-1)."""
    return run_cpm(
        default_config, budget_fraction=0.8, n_gpm_intervals=12, seed=TEST_SEED
    )


@pytest.fixture(scope="session")
def nomgmt_run(default_config):
    """One shared no-management run on the default platform."""
    sim = Simulation(
        default_config, NoManagementScheme(), budget_fraction=1.0, seed=TEST_SEED
    )
    return sim.run(12)
