"""Robustness under injected faults.

Exercises the paper's stability claim (Eq. 13: stable for true gains up
to g× the design) end to end, plus graceful degradation under sensing
and actuation failures the analysis does not cover.
"""

import numpy as np
import pytest

from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.calibration import default_calibration
from repro.core.cpm import CPMScheme
from repro.faults import (
    BiasedTransducer,
    GainError,
    LaggedActuator,
    NoisySensor,
    StuckSensor,
    inject,
)

pytestmark = pytest.mark.slow

BUDGET = 0.8


def run_with_faults(*faults, n_gpm=12, budget=BUDGET):
    scheme = inject(CPMScheme(), *faults) if faults else CPMScheme()
    sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=budget)
    return sim.run(n_gpm)


def tracking_error(result) -> float:
    chip = result.telemetry["chip_power_frac"][30:]
    return float(np.abs(chip / result.budget_fraction - 1.0).mean())


class TestGainError:
    def test_stable_within_analytic_margin(self):
        """The loop stays usable at gain errors inside the Eq. 13 bound."""
        cal = default_calibration(DEFAULT_CONFIG)
        safe = 0.9 * cal.stability_limit
        result = run_with_faults(GainError(multiplier=safe))
        assert tracking_error(result) < 0.10
        assert np.isfinite(result.telemetry["chip_power_frac"]).all()

    def test_degrades_beyond_margin(self):
        """Past the margin the loop falls into a dither limit cycle: the
        actuator clamps bound the divergence, but the tick-to-tick power
        swing (the instability signature) grows sharply."""
        cal = default_calibration(DEFAULT_CONFIG)
        nominal = run_with_faults()
        # 3.5x the analytic limit: far enough past the margin that the
        # limit cycle dominates the workload-noise dither at any seed.
        beyond = run_with_faults(GainError(multiplier=3.5 * cal.stability_limit))

        def dither(run):
            chip = run.telemetry["chip_power_frac"][30:]
            return float(np.abs(np.diff(chip)).mean())

        assert dither(beyond) > 2.0 * dither(nominal)

    def test_small_gain_error_harmless(self):
        nominal = run_with_faults()
        off = run_with_faults(GainError(multiplier=1.2))
        assert abs(tracking_error(off) - tracking_error(nominal)) < 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            GainError(multiplier=0.0)


class TestSensingFaults:
    def test_bias_shifts_actual_power(self):
        """A +bias transducer makes the loop believe power is higher than
        it is, so actual consumption lands *below* target by ~the bias."""
        bias = 0.01
        clean = run_with_faults()
        biased = run_with_faults(BiasedTransducer(bias=bias))
        clean_mean = clean.telemetry["chip_power_frac"][30:].mean()
        biased_mean = biased.telemetry["chip_power_frac"][30:].mean()
        shift = clean_mean - biased_mean
        assert shift == pytest.approx(
            bias * DEFAULT_CONFIG.n_islands, rel=0.5
        )

    def test_noise_increases_power_variance_but_not_mean(self):
        clean = run_with_faults()
        noisy = run_with_faults(NoisySensor(sigma=0.05, seed=3))
        c = clean.telemetry["chip_power_frac"][30:]
        n = noisy.telemetry["chip_power_frac"][30:]
        assert n.std() > c.std()
        assert n.mean() == pytest.approx(c.mean(), abs=0.03)

    def test_stuck_sensor_contained_to_one_island(self):
        """A dead counter on island 2 breaks that island's capping but
        the other islands keep tracking their set-points."""
        result = run_with_faults(StuckSensor(island=2, stick_after=30))
        power = result.telemetry["island_power_frac"][40:]
        setpoints = result.telemetry["island_setpoint_frac"][40:]
        errors = np.abs(power - setpoints).mean(axis=0)
        healthy = [0, 1, 3]
        assert errors[healthy].max() < 0.02

    def test_stuck_sensor_island_validated(self):
        scheme = inject(CPMScheme(), StuckSensor(island=9))
        sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=BUDGET)
        with pytest.raises(ValueError):
            sim.run(1)


class TestActuatorFaults:
    def test_one_extra_delay_tolerated(self):
        """An extra sample of actuation lag degrades but does not
        destabilize the loop (phase margin survives)."""
        result = run_with_faults(LaggedActuator())
        chip = result.telemetry["chip_power_frac"][30:]
        assert np.isfinite(chip).all()
        assert tracking_error(result) < 0.12


class TestComposition:
    def test_multiple_faults_compose(self):
        result = run_with_faults(
            GainError(multiplier=1.2),
            NoisySensor(sigma=0.02, seed=1),
            BiasedTransducer(bias=0.005),
        )
        assert np.isfinite(result.telemetry["chip_power_frac"]).all()

    def test_wrapper_preserves_scheme_protocol(self):
        from repro.cmpsim.simulator import PowerScheme

        wrapped = inject(CPMScheme(), GainError(multiplier=1.1))
        assert isinstance(wrapped, PowerScheme)
        assert wrapped.name.endswith("+faults")

    def test_inject_requires_faults(self):
        with pytest.raises(ValueError):
            inject(CPMScheme())
