"""Plain-text rendering helpers."""

import numpy as np
import pytest

from repro.reporting import (
    as_percent,
    format_series,
    format_table,
    format_value,
    sparkline,
)


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.12345) == "0.1235"
        assert format_value(12.345) == "12.35"
        assert format_value(12345.6) == "12,346"
        assert format_value(float("nan")) == "nan"

    def test_non_floats(self):
        assert format_value(3) == "3"
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁"
        assert s[-1] == "█"
        assert len(s) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_resampling(self):
        s = sparkline(np.arange(100), width=10)
        assert len(s) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestFormatSeries:
    def test_includes_stats(self):
        out = format_series({"power": [0.1, 0.2, 0.3]})
        assert "min 0.1000" in out
        assert "max 0.3000" in out
        assert "mean 0.2000" in out

    def test_handles_empty_series(self):
        out = format_series({"nothing": []})
        assert "(empty)" in out

    def test_labels_aligned(self):
        out = format_series({"a": [1, 2], "longer": [1, 2]})
        lines = out.splitlines()
        assert lines[0].index("▁") == lines[1].index("▁")


def test_as_percent():
    assert as_percent(0.0415) == "4.15%"
    assert as_percent(0.5, digits=0) == "50%"
