"""Configuration dataclasses: defaults, validation, derived quantities."""

import dataclasses

import pytest

from repro.config import (
    CMPConfig,
    ControlConfig,
    CoreConfig,
    DEFAULT_CONFIG,
    DVFSConfig,
    MemoryConfig,
    PENTIUM_M_VF_TABLE,
)


class TestDefaults:
    def test_paper_platform_shape(self):
        assert DEFAULT_CONFIG.n_cores == 8
        assert DEFAULT_CONFIG.n_islands == 4
        assert DEFAULT_CONFIG.cores_per_island == 2

    def test_vf_table_matches_paper_range(self):
        freqs = [f for f, _ in PENTIUM_M_VF_TABLE]
        assert len(freqs) == 8
        assert freqs[0] == pytest.approx(0.6)
        assert freqs[-1] == pytest.approx(2.0)

    def test_control_cadence(self):
        assert DEFAULT_CONFIG.control.gpm_interval_s == pytest.approx(5e-3)
        assert DEFAULT_CONFIG.control.pic_interval_s == pytest.approx(0.5e-3)
        assert DEFAULT_CONFIG.control.pics_per_gpm == 10

    def test_transition_overhead_is_paper_value(self):
        assert DEFAULT_CONFIG.dvfs.transition_overhead == pytest.approx(0.005)

    def test_config_hashable_for_memoization(self):
        assert hash(DEFAULT_CONFIG) == hash(CMPConfig())


class TestTopology:
    def test_island_of_core_contiguous_blocks(self):
        cfg = DEFAULT_CONFIG
        assert [cfg.island_of_core(c) for c in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_cores_in_island(self):
        assert list(DEFAULT_CONFIG.cores_in_island(2)) == [4, 5]

    def test_out_of_range_indices(self):
        with pytest.raises(IndexError):
            DEFAULT_CONFIG.island_of_core(8)
        with pytest.raises(IndexError):
            DEFAULT_CONFIG.cores_in_island(4)

    def test_with_islands(self):
        cfg = DEFAULT_CONFIG.with_islands(32, 8)
        assert cfg.n_cores == 32
        assert cfg.cores_per_island == 4
        # Everything else inherited.
        assert cfg.dvfs == DEFAULT_CONFIG.dvfs


class TestValidation:
    def test_uneven_islands_rejected(self):
        with pytest.raises(ValueError):
            CMPConfig(n_cores=8, n_islands=3)

    def test_bad_dvfs_mode_rejected(self):
        with pytest.raises(ValueError):
            DVFSConfig(mode="sometimes")

    def test_unsorted_vf_table_rejected(self):
        with pytest.raises(ValueError):
            DVFSConfig(vf_table=((2.0, 1.5), (0.6, 1.0)))

    def test_gpm_interval_must_be_multiple_of_pic(self):
        control = ControlConfig(gpm_interval_s=5e-3, pic_interval_s=0.7e-3)
        with pytest.raises(ValueError):
            _ = control.pics_per_gpm

    def test_gpm_shorter_than_pic_rejected(self):
        with pytest.raises(ValueError):
            ControlConfig(gpm_interval_s=0.1e-3, pic_interval_s=0.5e-3)

    def test_stall_activity_bounds(self):
        with pytest.raises(ValueError):
            CoreConfig(stall_activity=1.5)

    def test_memory_latency_positive(self):
        with pytest.raises(ValueError):
            MemoryConfig(memory_latency_s=0.0)

    def test_leakage_multiplier_length_checked(self):
        with pytest.raises(ValueError):
            CMPConfig(island_leakage_multipliers=(1.0, 2.0))

    def test_leakage_multiplier_positive(self):
        with pytest.raises(ValueError):
            CMPConfig(island_leakage_multipliers=(1.0, 2.0, -1.0, 1.0))

    def test_uncore_fraction_bounds(self):
        with pytest.raises(ValueError):
            CMPConfig(uncore_fraction=1.0)

    def test_pole_count_enforced(self):
        with pytest.raises(ValueError):
            ControlConfig(desired_poles=(0.1 + 0j, 0.2 + 0j))


def test_replace_produces_new_value():
    faster = dataclasses.replace(
        DEFAULT_CONFIG, control=ControlConfig(pic_interval_s=0.25e-3)
    )
    assert faster.control.pics_per_gpm == 20
    assert DEFAULT_CONFIG.control.pics_per_gpm == 10
