"""Tests for ``repro.lintkit.dimensions`` — the unit/dimension checker.

Organized bottom-up: each DIM rule on minimal in-memory programs
(:func:`analyze_sources`), then the propagation machinery (cross-module
imports, dataclass fields, conservatism), then the engine/CLI/SARIF
integration, and finally the seeded-mutation fixture
``tests/fixtures/dim_mutation.py`` whose ``# expect: DIMxxx`` markers
must match the analysis output exactly.
"""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.lintkit import ALL_ANALYSES, analyze_sources, lint_paths
from repro.lintkit.cli import main
from repro.lintkit.dimensions import DIM_RULES
from repro.lintkit.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_payload

REPO_ROOT = Path(__file__).resolve().parents[1]
MUTATION_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "dim_mutation.py"

#: Import header shared by most single-module fixtures.
HEADER = "from repro.unit_types import GigaHz, Milliseconds, PowerFraction, Seconds, Volts, Watts\n"


def analyze(
    source: str,
    path: str = "src/repro/fixture_mod.py",
    header: str = HEADER,
):
    """Run the dimensions pass over one dedented in-memory module."""
    return analyze_sources({path: header + textwrap.dedent(source)})


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# DIM001 — incompatible arithmetic
# ---------------------------------------------------------------------------


class TestDim001Arithmetic:
    def test_watts_plus_gigahertz_fires(self):
        findings = analyze(
            """
            def f(p: Watts, freq: GigaHz) -> float:
                return p + freq
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_seconds_minus_milliseconds_fires(self):
        findings = analyze(
            """
            def f(a: Seconds, b: Milliseconds) -> float:
                return a - b
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_comparison_across_quantities_fires(self):
        findings = analyze(
            """
            def f(v: Volts, t: Seconds) -> bool:
                return v > t
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_same_unit_arithmetic_is_clean(self):
        findings = analyze(
            """
            def f(a: Seconds, b: Seconds) -> Seconds:
                return a + b
            """
        )
        assert findings == []

    def test_multiplication_is_unconstrained(self):
        # W * s is energy; derived quantities are out of scope by design.
        findings = analyze(
            """
            def f(p: Watts, t: Seconds) -> float:
                return p * t
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DIM002 — scale mismatch at a boundary
# ---------------------------------------------------------------------------


class TestDim002ScaleBoundary:
    def test_seconds_into_milliseconds_param_fires(self):
        findings = analyze(
            """
            def sink(timeout: Milliseconds) -> None:
                pass

            def caller(t: Seconds) -> None:
                sink(t)
            """
        )
        assert rule_ids(findings) == ["DIM002"]
        assert "timeout" in findings[0].message

    def test_keyword_argument_checked(self):
        findings = analyze(
            """
            def sink(timeout: Milliseconds) -> None:
                pass

            def caller(t: Seconds) -> None:
                sink(timeout=t)
            """
        )
        assert rule_ids(findings) == ["DIM002"]

    def test_return_boundary_checked(self):
        findings = analyze(
            """
            def f(t: Seconds) -> Milliseconds:
                return t
            """
        )
        assert rule_ids(findings) == ["DIM002"]

    def test_matching_scale_is_clean(self):
        findings = analyze(
            """
            def sink(timeout: Milliseconds) -> None:
                pass

            def caller(t: Milliseconds) -> None:
                sink(t)
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DIM003 — watts vs. power fraction
# ---------------------------------------------------------------------------


class TestDim003PowerCurrency:
    def test_watts_into_fraction_param_fires(self):
        findings = analyze(
            """
            def set_budget(budget: PowerFraction) -> None:
                pass

            def caller(p: Watts) -> None:
                set_budget(p)
            """
        )
        assert rule_ids(findings) == ["DIM003"]

    def test_fraction_into_watts_param_fires(self):
        findings = analyze(
            """
            def dissipate(power: Watts) -> None:
                pass

            def caller(share: PowerFraction) -> None:
                dissipate(share)
            """
        )
        assert rule_ids(findings) == ["DIM003"]


# ---------------------------------------------------------------------------
# DIM004 — wrong quantity at a boundary
# ---------------------------------------------------------------------------


class TestDim004QuantityBoundary:
    def test_volts_into_gigahertz_param_fires(self):
        findings = analyze(
            """
            def clock(freq: GigaHz) -> None:
                pass

            def caller(v: Volts) -> None:
                clock(v)
            """
        )
        assert rule_ids(findings) == ["DIM004"]

    def test_dataclass_field_boundary_checked(self):
        findings = analyze(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Reading:
                value: Volts

            def caller(t: Seconds) -> Reading:
                return Reading(value=t)
            """
        )
        assert rule_ids(findings) == ["DIM004"]


# ---------------------------------------------------------------------------
# DIM005 — manual scale conversions
# ---------------------------------------------------------------------------


class TestDim005ManualConversion:
    def test_multiply_by_thousand_fires(self):
        findings = analyze(
            """
            def f(t: Seconds) -> float:
                return t * 1000.0
            """
        )
        assert rule_ids(findings) == ["DIM005"]

    def test_divide_by_thousandth_fires(self):
        findings = analyze(
            """
            def f(t: Seconds) -> float:
                return t / 0.001
            """
        )
        assert rule_ids(findings) == ["DIM005"]

    def test_named_scale_constant_fires(self):
        findings = analyze(
            """
            from repro import units

            def f(t: Seconds) -> float:
                return t * units.NS_PER_S
            """
        )
        assert rule_ids(findings) == ["DIM005"]

    def test_units_helper_is_the_blessed_route(self):
        findings = analyze(
            """
            from repro import units

            def f(t: Seconds) -> float:
                return units.to_ns(t)
            """
        )
        assert findings == []

    def test_scale_on_dimensionless_value_is_clean(self):
        findings = analyze(
            """
            def f(count: float) -> float:
                return count * 1000.0
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Propagation machinery
# ---------------------------------------------------------------------------


class TestPropagation:
    def test_cross_module_call_boundary(self):
        findings = analyze_sources(
            {
                "src/repro/timerlib.py": textwrap.dedent(
                    """
                    from repro.unit_types import Milliseconds

                    __all__ = ["wait"]

                    def wait(timeout: Milliseconds) -> None:
                        pass
                    """
                ),
                "src/repro/caller.py": textwrap.dedent(
                    """
                    from repro.unit_types import Seconds

                    from repro.timerlib import wait

                    __all__ = ["go"]

                    def go(t: Seconds) -> None:
                        wait(t)
                    """
                ),
            }
        )
        assert rule_ids(findings) == ["DIM002"]
        assert findings[0].path == "src/repro/caller.py"

    def test_instance_attribute_lookup(self):
        findings = analyze(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Island:
                f_max: GigaHz

            def f(island: Island, v: Volts) -> float:
                return island.f_max + v
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_assignment_propagates_units(self):
        findings = analyze(
            """
            def f(t: Seconds, freq: GigaHz) -> float:
                elapsed = t
                return elapsed + freq
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_like_and_array_aliases_carry_units(self):
        findings = analyze(
            """
            from repro.unit_types import GigaHzLike, WattsArray

            def f(p: WattsArray, freq: GigaHzLike):
                return p + freq
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_direct_annotated_unit_spelling(self):
        findings = analyze(
            """
            from typing import Annotated

            from repro.unit_types import Unit

            def f(p: Annotated[float, Unit("W")], freq: Annotated[float, Unit("GHz")]):
                return p + freq
            """
        )
        assert rule_ids(findings) == ["DIM001"]

    def test_unannotated_code_stays_silent(self):
        # Conservatism: no finding unless BOTH sides carry a known unit.
        findings = analyze(
            """
            def f(t: Seconds, anything) -> float:
                return t + anything
            """
        )
        assert findings == []

    def test_units_module_itself_is_exempt(self):
        findings = analyze_sources(
            {
                "src/repro/units.py": textwrap.dedent(
                    """
                    from repro.unit_types import Milliseconds, Seconds

                    __all__ = ["ms"]

                    def ms(value: Milliseconds) -> Seconds:
                        return value * 0.001
                    """
                )
            }
        )
        assert findings == []

    def test_inline_suppression_honoured(self):
        findings = analyze(
            """
            def f(p: Watts, freq: GigaHz) -> float:
                return p + freq  # lint: ignore[DIM001] fixture: deliberate
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Engine + CLI integration
# ---------------------------------------------------------------------------

#: A module that violates DIM001 and UNIT001 on the same line.
MIXED_VIOLATIONS = textwrap.dedent(
    """
    from repro.unit_types import GigaHz, Seconds

    __all__ = ["bad"]

    def bad(t_s: Seconds, f_ghz: GigaHz) -> float:
        return (t_s + f_ghz) * 1e9{suffix}
    """
)


class TestEngineIntegration:
    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError, match="unknown analyses"):
            lint_paths([str(MUTATION_FIXTURE)], analyses=("bogus",))

    def test_all_analyses_constant(self):
        assert ALL_ANALYSES == ("rules", "dimensions", "effects")

    def test_mixed_rule_line_without_suppression(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(MIXED_VIOLATIONS.format(suffix=""))
        report = lint_paths([str(target)])
        assert sorted(rule_ids(report.findings)) == ["DIM001", "UNIT001"]

    def test_mixed_rule_inline_suppression(self, tmp_path):
        # One comment silences rules from both analyses on one line.
        target = tmp_path / "mod.py"
        target.write_text(
            MIXED_VIOLATIONS.format(
                suffix="  # lint: ignore[DIM001,UNIT001] fixture"
            )
        )
        report = lint_paths([str(target)])
        assert report.findings == ()
        assert report.suppressed == 2

    def test_analysis_selection_skips_dimensions(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(MIXED_VIOLATIONS.format(suffix=""))
        report = lint_paths([str(target)], analyses=("rules",))
        assert rule_ids(report.findings) == ["UNIT001"]
        report = lint_paths([str(target)], analyses=("dimensions",))
        assert rule_ids(report.findings) == ["DIM001"]

    def test_cli_analysis_flag(self, capsys):
        # The fixture's mistakes are DIM-only: rules-only runs stay clean.
        assert main([str(MUTATION_FIXTURE), "--analysis", "rules"]) == 0
        assert main([str(MUTATION_FIXTURE), "--analysis", "dimensions"]) == 1
        capsys.readouterr()

    def test_cli_list_rules_includes_dim_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id, _, _ in DIM_RULES:
            assert rule_id in out


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


class TestSarifOutput:
    def test_payload_shape(self):
        report = lint_paths([str(MUTATION_FIXTURE)], analyses=("dimensions",))
        payload = sarif_payload(report)
        assert payload["version"] == SARIF_VERSION
        assert payload["$schema"] == SARIF_SCHEMA
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro.lintkit"
        catalogue = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"DIM001", "DIM002", "DIM003", "DIM004", "DIM005"} <= catalogue
        assert {"UNIT001", "DET001", "E000"} <= catalogue
        assert len(run["results"]) == len(report.findings)
        result = run["results"][0]
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("dim_mutation.py")
        assert location["region"]["startLine"] == report.findings[0].line
        assert location["region"]["startColumn"] == report.findings[0].col + 1

    def test_cli_sarif_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint.sarif"
        code = main(
            [
                str(MUTATION_FIXTURE),
                "--analysis",
                "dimensions",
                "--format",
                "sarif",
                "--output",
                str(out_file),
            ]
        )
        assert code == 1  # findings still fail the run
        assert capsys.readouterr().out == ""
        payload = json.loads(out_file.read_text())
        assert payload["version"] == SARIF_VERSION
        assert [r["ruleId"] for r in payload["runs"][0]["results"]] == [
            "DIM001",
            "DIM002",
            "DIM003",
            "DIM005",
        ]


# ---------------------------------------------------------------------------
# The seeded-mutation fixture
# ---------------------------------------------------------------------------


class TestMutationFixture:
    def test_expected_findings_exactly(self):
        """The analysis flags every seeded mistake and nothing else."""
        expected = []
        for lineno, line in enumerate(
            MUTATION_FIXTURE.read_text().splitlines(), start=1
        ):
            marker = re.search(r"# expect: (DIM\d{3})", line)
            if marker:
                expected.append((lineno, marker.group(1)))
        assert len(expected) == 4, "fixture must seed exactly four mistakes"
        report = lint_paths([str(MUTATION_FIXTURE)], analyses=("dimensions",))
        found = [(f.line, f.rule_id) for f in report.findings]
        assert found == expected

    def test_fixture_is_otherwise_lint_clean(self):
        # The seeded mistakes are *dimension* mistakes only; the ordinary
        # rule catalogue must accept the file, so the fixture cannot rot
        # into testing something other than what it claims.
        report = lint_paths([str(MUTATION_FIXTURE)], analyses=("rules",))
        assert report.findings == ()


# ---------------------------------------------------------------------------
# Acceptance: the repository's own tree is dimensionally clean
# ---------------------------------------------------------------------------


class TestRepositoryTree:
    def test_src_tree_has_no_dimension_findings(self):
        report = lint_paths([REPO_ROOT / "src"], analyses=("dimensions",))
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"dimension findings in src/:\n{rendered}"

    def test_extras_lint_clean_without_baseline(self):
        # examples/ and benchmarks/ once carried 34 grandfathered
        # findings in lint-baseline-extras.json; that debt is paid, the
        # file is gone, and the extras must stay clean baseline-free.
        assert not (REPO_ROOT / "lint-baseline-extras.json").exists()
        report = lint_paths(
            [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"],
        )
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"findings in examples//benchmarks/:\n{rendered}"
