"""Cache simulator and trace-driven miss-rate calibration."""

import numpy as np
import pytest

from repro.cmpsim.cache import CacheHierarchy, SetAssociativeCache
from repro.workloads.benchmark import MemoryBehavior
from repro.workloads.parsec import parsec_benchmark
from repro.workloads.trace import AddressTraceGenerator, calibrate_miss_rates


class TestSetAssociativeCache:
    def cache(self, size=1024, assoc=2, block=64):
        return SetAssociativeCache(size, assoc, block)

    def test_cold_miss_then_hit(self):
        c = self.cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True
        assert c.access(0x1008) is True  # same block

    def test_distinct_blocks_miss(self):
        c = self.cache()
        c.access(0x0)
        assert c.access(0x40) is False  # next block

    def test_lru_eviction(self):
        # 2-way cache: three blocks mapping to the same set evict LRU.
        c = self.cache(size=256, assoc=2, block=64)  # 2 sets
        n_sets = c.n_sets
        way_stride = 64 * n_sets
        a, b, d = 0, way_stride, 2 * way_stride  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)       # a most recent
        c.access(d)       # evicts b (LRU)
        assert c.access(a) is True
        assert c.access(b) is False

    def test_stats_and_reset(self):
        c = self.cache()
        c.access(0x0)
        c.access(0x0)
        assert c.accesses == 2 and c.misses == 1
        c.reset_stats()
        assert c.accesses == 0 and c.misses == 0
        assert c.access(0x0) is True  # contents preserved

    def test_flush_invalidates(self):
        c = self.cache()
        c.access(0x0)
        c.flush()
        assert c.access(0x0) is False

    def test_working_set_fits_cache(self):
        c = self.cache(size=16 * 1024, assoc=2, block=64)
        addresses = np.arange(0, 8 * 1024, 8)  # 8 KB working set
        for a in addresses:
            c.access(int(a))
        c.reset_stats()
        for a in addresses:
            assert c.access(int(a)) is True

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 2, 64)  # size not multiple of block
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 2, 63)  # block not power of two
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 3, 64)  # blocks % assoc != 0
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1, 64)


class TestHierarchy:
    def test_levels_report_correctly(self):
        h = CacheHierarchy.from_configs(cores_sharing_l2=1)
        assert h.access(0x1234) == "memory"  # cold everywhere
        assert h.access(0x1234) == "l1"
        # Evict from tiny L1 by sweeping, then L2 still holds it.
        for a in range(0, 64 * 1024, 64):
            h.access(0x100000 + a)
        assert h.access(0x1234) == "l2"

    def test_table_i_geometry(self):
        h = CacheHierarchy.from_configs(cores_sharing_l2=2)
        assert h.l1.size_bytes == 16 * 1024
        assert h.l1.associativity == 2
        assert h.l2.size_bytes == 2 * 512 * 1024
        assert h.l2.associativity == 16

    def test_stats_aggregation(self):
        h = CacheHierarchy.from_configs(cores_sharing_l2=1)
        for a in range(0, 8 * 64, 64):
            h.access(a)
        stats = h.stats()
        assert stats.l1_accesses == 8
        assert stats.l1_misses == 8
        assert stats.l2_misses == 8
        assert stats.l1_miss_rate == 1.0


class TestTraceGenerator:
    BEHAVIOR = MemoryBehavior(
        working_set_bytes=4096,
        footprint_bytes=1 << 20,
        streaming_fraction=0.3,
        scatter_fraction=0.2,
    )

    def test_addresses_within_footprint(self):
        gen = AddressTraceGenerator(self.BEHAVIOR, np.random.default_rng(0))
        addrs = gen.addresses(10000)
        assert addrs.max() < self.BEHAVIOR.footprint_bytes
        assert addrs.dtype == np.uint64

    def test_streaming_component_sequential(self):
        behavior = MemoryBehavior(64, 1 << 20, 1.0, 0.0)
        gen = AddressTraceGenerator(behavior, np.random.default_rng(0))
        addrs = gen.addresses(100).astype(np.int64)
        steps = np.diff(addrs)
        assert np.all(steps[steps > 0] == 8)

    def test_requires_positive_count(self):
        gen = AddressTraceGenerator(self.BEHAVIOR, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gen.addresses(0)


class TestCalibration:
    @pytest.mark.slow
    def test_class_structure_reproduced(self):
        """Trace-driven miss rates keep memory-bound >> CPU-bound."""
        rng = np.random.default_rng(42)
        cpu = calibrate_miss_rates(
            parsec_benchmark("blackscholes"), rng, n_references=60_000
        )
        mem = calibrate_miss_rates(
            parsec_benchmark("canneal"), rng, n_references=60_000
        )
        assert mem.l2_mpki > 5 * max(cpu.l2_mpki, 0.01)
        assert mem.l1_mpki > cpu.l1_mpki

    @pytest.mark.slow
    def test_native_inputs_increase_misses(self):
        rng = np.random.default_rng(43)
        sim = calibrate_miss_rates(
            parsec_benchmark("vips", input_set="simlarge"), rng, n_references=60_000
        )
        native = calibrate_miss_rates(
            parsec_benchmark("vips", input_set="native"), rng, n_references=60_000
        )
        assert native.l2_mpki > sim.l2_mpki
