"""Workload recording and replay."""

import numpy as np
import pytest

from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.workloads.recorded import RecordedWorkload, ReplayInstance, record


class TestRecord:
    def test_shapes_and_names(self):
        rec = record(DEFAULT_CONFIG, n_ticks=30)
        assert rec.n_ticks == 30
        assert rec.n_cores == 8
        assert rec.benchmarks[0] == "blackscholes"
        assert np.all((rec.alpha > 0) & (rec.alpha <= 1))

    def test_matches_live_streams(self):
        """record(seed=s) captures exactly what a live run with seed s
        would have consumed."""
        rec = record(DEFAULT_CONFIG, n_ticks=20, seed=11)
        sim = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=11)
        live = [inst.advance() for inst in sim.instances]
        np.testing.assert_allclose(
            [s.alpha for s in live], rec.alpha[0], rtol=1e-12
        )
        np.testing.assert_allclose(
            [s.l2_mpki for s in live], rec.l2_mpki[0], rtol=1e-12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            record(DEFAULT_CONFIG, n_ticks=0)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        rec = record(DEFAULT_CONFIG, n_ticks=12)
        path = rec.save(tmp_path / "capture.npz")
        loaded = RecordedWorkload.load(path)
        assert loaded.benchmarks == rec.benchmarks
        np.testing.assert_array_equal(loaded.alpha, rec.alpha)
        np.testing.assert_array_equal(loaded.l1_mpki, rec.l1_mpki)


class TestReplayInstance:
    def test_replays_in_order_then_cycles(self):
        rec = record(DEFAULT_CONFIG, n_ticks=5)
        inst = ReplayInstance(rec, core=3)
        first_pass = [inst.advance().alpha for _ in range(5)]
        second_pass = [inst.advance().alpha for _ in range(5)]
        np.testing.assert_allclose(first_pass, rec.alpha[:, 3])
        np.testing.assert_allclose(second_pass, first_pass)

    def test_core_bounds(self):
        rec = record(DEFAULT_CONFIG, n_ticks=3)
        with pytest.raises(IndexError):
            ReplayInstance(rec, core=8)

    def test_retirement_accounting(self):
        rec = record(DEFAULT_CONFIG, n_ticks=3)
        inst = ReplayInstance(rec, core=0)
        inst.retire(5.0)
        assert inst.instructions_retired == 5.0
        with pytest.raises(ValueError):
            inst.retire(-1.0)


@pytest.mark.slow
class TestReplayThroughSimulation:
    def test_replay_reproduces_live_run(self):
        """Driving a simulation from a recording gives bit-identical
        results to the live run it captured."""
        n_gpm = 4
        ticks = n_gpm * DEFAULT_CONFIG.control.pics_per_gpm
        rec = record(DEFAULT_CONFIG, n_ticks=ticks, seed=7)
        live = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=7).run(n_gpm)
        replayed = Simulation(
            DEFAULT_CONFIG,
            NoManagementScheme(),
            seed=999,  # seed is irrelevant once instances are supplied
            instances=rec.instances(),
        ).run(n_gpm)
        np.testing.assert_allclose(
            replayed.telemetry["chip_power_frac"],
            live.telemetry["chip_power_frac"],
            rtol=1e-12,
        )
        assert replayed.total_instructions == pytest.approx(
            live.total_instructions, rel=1e-12
        )

    def test_same_workload_different_platform(self):
        """The point of replay: identical samples, different chip."""
        import dataclasses

        from repro.config import DVFSConfig

        ticks = 3 * DEFAULT_CONFIG.control.pics_per_gpm
        rec = record(DEFAULT_CONFIG, n_ticks=ticks, seed=7)
        quantized = dataclasses.replace(
            DEFAULT_CONFIG, dvfs=DVFSConfig(mode="quantized")
        )
        a = Simulation(
            DEFAULT_CONFIG, NoManagementScheme(), instances=rec.instances()
        ).run(3)
        b = Simulation(
            quantized, NoManagementScheme(), instances=rec.instances()
        ).run(3)
        # Same workload; platform difference is irrelevant at f_max, so
        # throughput matches — demonstrating the workloads really were
        # identical across configs.
        assert b.total_instructions == pytest.approx(
            a.total_instructions, rel=1e-9
        )

    def test_instance_count_validated(self):
        rec = record(DEFAULT_CONFIG, n_ticks=5)
        with pytest.raises(ValueError):
            Simulation(
                DEFAULT_CONFIG.with_islands(16, 4),
                NoManagementScheme(),
                instances=rec.instances(),  # 8 instances, 16 cores
            )
