"""Sweep utilities."""

import numpy as np
import pytest

from repro.analysis.sweeps import budget_sweep, scheme_sweep
from repro.baselines.no_management import NoManagementScheme
from repro.baselines.static_uniform import StaticUniformScheme
from repro.config import DEFAULT_CONFIG

pytestmark = pytest.mark.slow


class TestBudgetSweep:
    def test_points_and_ordering(self):
        result = budget_sweep(
            StaticUniformScheme,
            budgets=[0.75, 0.85],
            n_gpm_intervals=6,
        )
        assert len(result.points) == 2
        assert result.points[0].budget_fraction == 0.75
        # Tighter budget, more degradation.
        d = result.degradations()
        assert d[0] >= d[1] - 1e-3
        # Power follows the budget when it binds.
        p = result.mean_powers()
        assert p[0] < p[1] + 1e-9

    def test_table_renders(self):
        result = budget_sweep(
            NoManagementScheme, budgets=[0.9], n_gpm_intervals=3
        )
        table = result.as_table()
        assert "budget 0.90" in table
        assert "degradation" in table

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_sweep(NoManagementScheme, budgets=[])
        with pytest.raises(ValueError):
            budget_sweep(NoManagementScheme, budgets=[1.5])


class TestSchemeSweep:
    def test_labels_and_reference_pairing(self):
        result = scheme_sweep(
            {
                "none": NoManagementScheme,
                "static": StaticUniformScheme,
            },
            budget=0.8,
            n_gpm_intervals=6,
        )
        labels = [p.label for p in result.points]
        assert labels == ["none", "static"]
        by_label = {p.label: p for p in result.points}
        # The unmanaged scheme ignores the budget -> zero degradation.
        assert by_label["none"].degradation == pytest.approx(0.0, abs=1e-12)
        assert by_label["static"].degradation >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            scheme_sweep({}, budget=0.8)
        with pytest.raises(ValueError):
            scheme_sweep({"x": NoManagementScheme}, budget=0.0)

    def test_fresh_scheme_per_point(self):
        """Factories are called per point; sharing one stateful scheme
        across runs would leak controller state between sweeps."""
        calls = []

        def factory():
            calls.append(1)
            return NoManagementScheme()

        scheme_sweep({"a": factory, "b": factory}, budget=0.9,
                     n_gpm_intervals=2)
        assert len(calls) == 2


class TestCLISweep:
    def test_sweep_command(self, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "--scheme", "none", "--budgets", "0.8:0.9:0.1",
             "--intervals", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "budget 0.80" in out

    def test_bad_budget_spec(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--budgets", "nonsense"])
        assert code == 2
