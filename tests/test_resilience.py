"""Resilience layer: sensor guard, GPM guard, scheduled faults, chaos.

Unit-level tests drive each guard's state machine directly; integration
tests assert the two load-bearing contracts from docs/ROBUSTNESS.md:

* a guarded clean run is **bit-identical** to plain CPM (the guards are
  transparent until something misbehaves), and
* under every scheduled fault scenario the guarded scheme keeps window
  power within tolerance of the budget while the unguarded scheme
  demonstrably crashes or violates in at least one scenario.
"""

import numpy as np
import pytest

from repro.cmpsim.dvfs import DVFSTable
from repro.cmpsim.simulator import Simulation
from repro.cmpsim.telemetry import ResilienceLog, WindowStats
from repro.config import DEFAULT_CONFIG
from repro.control.pid import PIDGains
from repro.core.cpm import CPMScheme
from repro.faults import (
    FaultWindow,
    MissedGPMFault,
    ScheduledStuckSensor,
    StuckActuatorFault,
    TransientSensorDropout,
    inject,
)
from repro.gpm import (
    EnergyAwarePolicy,
    PerformanceAwarePolicy,
    ThermalAwarePolicy,
    UniformPolicy,
    VariationAwarePolicy,
)
from repro.gpm.guard import GPMGuard, GPMGuardConfig
from repro.pic.actuator import DVFSActuator
from repro.pic.controller import PerIslandController
from repro.pic.guard import (
    MODE_FAILSAFE,
    MODE_HOLD,
    MODE_NOMINAL,
    GuardedPerIslandController,
    SensorGuardConfig,
)
from repro.power.transducer import LinearTransducer
from repro.resilience import GuardedCPMScheme

SMALL = DEFAULT_CONFIG.with_islands(4, 2)
BUDGET = 0.5
GAINS = PIDGains(0.4, 0.15, 0.05)
TRANSDUCER = LinearTransducer(k0=0.35, k1=0.05)


def make_guarded_controller(**kwargs):
    kwargs.setdefault("log", ResilienceLog())
    return GuardedPerIslandController(
        gains=GAINS,
        transducer=TRANSDUCER,
        actuator=DVFSActuator(DVFSTable(), initial_frequency=1.2),
        sensor_smoothing=kwargs.pop("sensor_smoothing", 1.0),
        **kwargs,
    )


def assert_results_identical(a, b):
    for name in a.telemetry._SERIES:
        np.testing.assert_array_equal(
            a.telemetry[name], b.telemetry[name],
            err_msg=f"series {name!r} differs",
        )
    assert a.total_instructions == b.total_instructions


# ---------------------------------------------------------------------------
# Sensor guard state machine
# ---------------------------------------------------------------------------


class TestSensorGuardConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(util_min=1.0, util_max=0.5),
            dict(stuck_window=1),
            dict(stuck_tolerance=-1e-3),
            dict(failsafe_after=0),
            dict(rearm_after=0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SensorGuardConfig(**bad)


class TestSensorGuardStateMachine:
    def test_nan_reading_enters_hold_on_last_known_good(self):
        ctl = make_guarded_controller()
        ctl.invoke(0.2, 0.5)
        assert ctl.mode == MODE_NOMINAL
        inv = ctl.invoke(0.2, float("nan"))
        assert ctl.mode == MODE_HOLD
        assert inv.utilization == 0.5  # held input, not the NaN
        assert ctl.pid.integrator_frozen
        assert ctl.log.count_of("sensor_bad_nan") == 1
        events = ctl.log.events_of("sensor_fault_detected")
        assert len(events) == 1 and events[0].detail == "nan"

    def test_out_of_range_reading_detected(self):
        ctl = make_guarded_controller()
        ctl.invoke(0.2, 7.0)
        assert ctl.mode == MODE_HOLD
        assert ctl.log.count_of("sensor_bad_range") == 1

    def test_stuck_counter_detected_after_window_fills(self):
        guard = SensorGuardConfig(stuck_window=4)
        ctl = make_guarded_controller(guard=guard)
        for _ in range(3):
            ctl.invoke(0.2, 0.5)
        assert ctl.mode == MODE_NOMINAL
        ctl.invoke(0.2, 0.5)  # fourth identical sample fills the window
        assert ctl.mode == MODE_HOLD
        assert ctl.log.count_of("sensor_bad_stuck") == 1

    def test_dithering_readings_never_trip_stuck(self):
        guard = SensorGuardConfig(stuck_window=4)
        ctl = make_guarded_controller(guard=guard)
        for i in range(12):
            ctl.invoke(0.2, 0.5 + 0.001 * (i % 3))
        assert ctl.mode == MODE_NOMINAL

    def test_failsafe_after_streak_pins_floor(self):
        guard = SensorGuardConfig(failsafe_after=3)
        ctl = make_guarded_controller(guard=guard)
        ctl.invoke(0.2, 0.5)
        for _ in range(2):
            ctl.invoke(0.2, float("nan"))
        assert ctl.mode == MODE_HOLD
        inv = ctl.invoke(0.2, float("nan"))
        assert ctl.mode == MODE_FAILSAFE
        assert inv.applied_frequency == ctl.failsafe_frequency
        assert inv.applied_frequency == ctl.actuator.table.f_min
        assert inv.frequency_delta == 0.0
        assert len(ctl.log.events_of("failsafe_entered")) == 1

    def test_rearm_after_good_streak(self):
        guard = SensorGuardConfig(failsafe_after=2, rearm_after=3)
        ctl = make_guarded_controller(guard=guard)
        ctl.invoke(0.2, 0.5)
        for _ in range(2):
            ctl.invoke(0.2, float("nan"))
        assert ctl.mode == MODE_FAILSAFE
        # Two good samples: still degraded (streak incomplete).
        ctl.invoke(0.2, 0.51)
        ctl.invoke(0.2, 0.52)
        assert ctl.mode == MODE_FAILSAFE
        ctl.invoke(0.2, 0.53)
        assert ctl.mode == MODE_NOMINAL
        assert not ctl.pid.integrator_frozen
        assert len(ctl.log.events_of("sensor_rearmed")) == 1

    def test_bad_sample_resets_rearm_streak(self):
        guard = SensorGuardConfig(failsafe_after=2, rearm_after=2)
        ctl = make_guarded_controller(guard=guard)
        for _ in range(2):
            ctl.invoke(0.2, float("nan"))
        ctl.invoke(0.2, 0.5)
        ctl.invoke(0.2, float("nan"))  # interrupts the good streak
        ctl.invoke(0.2, 0.51)
        assert ctl.mode == MODE_FAILSAFE
        ctl.invoke(0.2, 0.52)
        assert ctl.mode == MODE_NOMINAL

    def test_reset_clears_guard_state(self):
        ctl = make_guarded_controller()
        ctl.invoke(0.2, float("nan"))
        assert ctl.mode == MODE_HOLD
        ctl.reset()
        assert ctl.mode == MODE_NOMINAL
        assert not ctl.pid.integrator_frozen
        # A fresh stuck window: old samples must not linger.
        assert len(ctl._recent) == 0

    def test_clean_readings_bit_identical_to_unguarded(self):
        plain = PerIslandController(
            gains=GAINS,
            transducer=TRANSDUCER,
            actuator=DVFSActuator(DVFSTable(), initial_frequency=1.2),
            sensor_smoothing=1.0,
        )
        guarded = make_guarded_controller()
        for i in range(40):
            util = 0.4 + 0.2 * np.sin(0.3 * i)
            a = plain.invoke(0.2, util)
            b = guarded.invoke(0.2, util)
            assert a == b


# ---------------------------------------------------------------------------
# GPM guard
# ---------------------------------------------------------------------------

ISL_MIN = np.array([0.05, 0.05])
ISL_MAX = np.array([0.45, 0.45])
F_FLOOR = 0.6


def make_window(power, setpoints):
    power = np.asarray(power, dtype=float)
    return WindowStats(
        island_power_frac=power,
        island_bips=np.full(power.size, 5.0),
        island_utilization=np.full(power.size, 0.7),
        island_setpoints=np.asarray(setpoints, dtype=float),
        island_energy_j=power * 85.0 * 5e-3,
        island_instructions=np.full(power.size, 5e9 * 5e-3),
        duration_s=5e-3,
    )


def make_guard(**kwargs):
    config = GPMGuardConfig(**kwargs.pop("config", {}))
    return GPMGuard(ISL_MIN, ISL_MAX, config=config, **kwargs)


class TestGPMGuardConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(violation_margin=0.0),
            dict(strikes_to_quarantine=0),
            dict(windows_to_restore=0),
            dict(reserve_headroom=-0.1),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            GPMGuardConfig(**bad)


class TestGPMGuard:
    FREQ_HIGH = np.array([2.0, 2.0])

    def violate(self, guard, times=2):
        """Feed ``times`` windows where island 0 ignores its cap."""
        sp = np.array([0.15, 0.25])
        for _ in range(times):
            window = make_window([0.44, 0.25], sp)
            sp = guard.review(
                sp, [window], BUDGET,
                island_frequency=self.FREQ_HIGH, f_floor=F_FLOOR,
            )
        return sp

    def test_transparent_on_healthy_telemetry(self):
        guard = make_guard()
        sp = np.array([0.2, 0.25])
        window = make_window([0.2, 0.25], sp)
        out = guard.review(
            sp, [window], BUDGET,
            island_frequency=self.FREQ_HIGH, f_floor=F_FLOOR,
        )
        np.testing.assert_array_equal(out, sp)
        assert not guard.quarantined.any()

    def test_transparent_without_telemetry(self):
        guard = make_guard()
        sp = np.array([0.2, 0.25])
        out = guard.review(sp, [], BUDGET)
        np.testing.assert_array_equal(out, sp)

    def test_quarantine_after_strikes(self):
        guard = make_guard()
        out = self.violate(guard, times=2)
        assert guard.quarantined[0] and not guard.quarantined[1]
        assert len(guard.log.events_of("island_quarantined")) == 1
        # The bad island is commanded to its floor and the enforced total
        # leaves room for its reserved (actual) draw.
        assert out[0] == ISL_MIN[0]
        reserved = 0.44 * 1.1  # measured x (1 + headroom), clipped to max
        assert out.sum() <= BUDGET - min(reserved, ISL_MAX[0]) + out[0] + 1e-9

    def test_single_strike_does_not_quarantine(self):
        guard = make_guard()
        self.violate(guard, times=1)
        assert not guard.quarantined.any()
        assert guard.log.count_of("cap_violation_window") == 1

    def test_islands_at_floor_never_strike(self):
        guard = make_guard()
        sp = np.array([0.06, 0.25])
        window = make_window([0.2, 0.25], sp)  # island 0 overdraws hugely
        at_floor = np.array([F_FLOOR, 2.0])
        for _ in range(3):
            guard.review(
                sp, [window], BUDGET,
                island_frequency=at_floor, f_floor=F_FLOOR,
            )
        assert not guard.quarantined.any()

    def test_restore_after_floor_obedience(self):
        guard = make_guard()
        self.violate(guard, times=2)
        assert guard.quarantined[0]
        sp = np.array([ISL_MIN[0], 0.25])
        window = make_window([0.1, 0.25], sp)
        at_floor = np.array([F_FLOOR, 2.0])
        for _ in range(2):  # windows_to_restore
            guard.review(
                sp, [window], BUDGET,
                island_frequency=at_floor, f_floor=F_FLOOR,
            )
        assert not guard.quarantined[0]
        assert len(guard.log.events_of("island_restored")) == 1

    def test_underuse_reclaim_caps_floor_island(self):
        guard = make_guard()
        # Island 0 pinned at the floor, drawing far below its set-point.
        sp = np.array([0.3, 0.15])
        window = make_window([0.08, 0.15], sp)
        at_floor = np.array([F_FLOOR, 2.0])
        out = guard.review(
            sp, [window], BUDGET,
            island_frequency=at_floor, f_floor=F_FLOOR,
        )
        assert guard.log.count_of("budget_reclaimed") == 1
        # Its set-point is capped near its measured draw...
        assert out[0] <= 0.08 * 1.1 + 1e-9
        # ...and the freed budget flows to the healthy island.
        assert out[1] > sp[1]

    def test_conservation_backstop_rescales(self):
        guard = make_guard()
        out = guard.review(np.array([0.4, 0.4]), [], BUDGET)
        assert out.sum() <= BUDGET + 1e-9
        assert len(guard.log.events_of("conservation_rescale")) == 1

    def test_self_constrained_never_grows_setpoints(self):
        guard = make_guard(self_constrained=True)
        self.violate(guard, times=2)
        assert guard.quarantined[0]
        sp = np.array([0.15, 0.2])
        window = make_window([0.44, 0.2], sp)
        out = guard.review(
            sp, [window], BUDGET,
            island_frequency=self.FREQ_HIGH, f_floor=F_FLOOR,
        )
        assert out[1] <= sp[1] + 1e-12  # shrink-only for healthy islands

    def test_shape_mismatch_rejected(self):
        guard = make_guard()
        with pytest.raises(ValueError):
            guard.review(np.array([0.1, 0.2, 0.3]), [], BUDGET)


# ---------------------------------------------------------------------------
# Scheduled faults and the wrapper
# ---------------------------------------------------------------------------


class TestFaultWindow:
    def test_half_open_interval(self):
        w = FaultWindow(10, 20)
        assert not w.active(9)
        assert w.active(10) and w.active(19)
        assert not w.active(20)
        assert w.duration == 10

    @pytest.mark.parametrize("bad", [(-1, 5), (5, 5), (8, 2)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            FaultWindow(*bad)


class TestFaultySchemeWrapper:
    def run_small(self, scheme, n_gpm=6):
        sim = Simulation(SMALL, scheme, budget_fraction=BUDGET, seed=9)
        return sim.run(n_gpm)

    def test_getattr_delegates_to_inner(self):
        inner = CPMScheme()
        wrapped = inject(inner, MissedGPMFault(FaultWindow(0, 10)))
        assert wrapped.policy is inner.policy
        assert wrapped.max_step_ghz == inner.max_step_ghz
        with pytest.raises(AttributeError):
            wrapped.does_not_exist

    def test_rebind_does_not_stack_faults(self):
        fault = StuckActuatorFault(0, FaultWindow(20, 40), frequency_ghz=99.0)
        wrapped = inject(CPMScheme(), fault)
        self.run_small(wrapped)
        second = self.run_small(wrapped)  # re-bind on a fresh simulation
        fresh = self.run_small(
            inject(CPMScheme(), StuckActuatorFault(
                0, FaultWindow(20, 40), frequency_ghz=99.0)),
        )
        assert_results_identical(second, fresh)

    def test_missed_gpm_suppresses_provisioning(self):
        class Probe(CPMScheme):
            gpm_ticks: list = []

            def on_gpm(self, sim):
                Probe.gpm_ticks.append(sim.tick)
                super().on_gpm(sim)

        Probe.gpm_ticks = []
        wrapped = inject(Probe(), MissedGPMFault(FaultWindow(20, 40)))
        self.run_small(wrapped)
        assert Probe.gpm_ticks  # GPM ran outside the window
        assert not any(20 <= t < 40 for t in Probe.gpm_ticks)

    def test_transient_dropout_crashes_unguarded(self):
        wrapped = inject(
            CPMScheme(), TransientSensorDropout(0, FaultWindow(20, 40))
        )
        with pytest.raises(Exception):
            self.run_small(wrapped)

    def test_transient_dropout_survived_by_guarded(self):
        base = GuardedCPMScheme()
        wrapped = inject(base, TransientSensorDropout(0, FaultWindow(20, 40)))
        self.run_small(wrapped)
        assert base.log.count_of("sensor_bad_nan") > 0
        assert len(base.log.events_of("sensor_fault_detected")) >= 1

    def test_stuck_sensor_holds_pre_window_reading(self):
        base = GuardedCPMScheme()
        wrapped = inject(base, ScheduledStuckSensor(0, FaultWindow(20, 40)))
        self.run_small(wrapped)
        assert base.log.count_of("sensor_bad_stuck") > 0


# ---------------------------------------------------------------------------
# Guarded scheme: clean-run transparency
# ---------------------------------------------------------------------------


class TestGuardedTransparency:
    @pytest.mark.parametrize(
        "policy",
        [PerformanceAwarePolicy, ThermalAwarePolicy, EnergyAwarePolicy,
         UniformPolicy, VariationAwarePolicy],
    )
    def test_clean_run_bit_identical_to_plain_cpm(self, policy):
        plain = Simulation(
            SMALL, CPMScheme(policy=policy()),
            budget_fraction=BUDGET, seed=11,
        ).run(8)
        scheme = GuardedCPMScheme(policy=policy())
        guarded = Simulation(
            SMALL, scheme, budget_fraction=BUDGET, seed=11
        ).run(8)
        assert_results_identical(plain, guarded)
        # Transparent means *no* resilience interventions fired.
        assert len(scheme.log.events) == 0

    def test_rerun_resets_the_log(self):
        scheme = GuardedCPMScheme()
        wrapped = inject(scheme, TransientSensorDropout(0, FaultWindow(20, 30)))
        Simulation(SMALL, wrapped, budget_fraction=BUDGET, seed=9).run(6)
        first = scheme.log.count_of("sensor_bad_nan")
        Simulation(SMALL, wrapped, budget_fraction=BUDGET, seed=9).run(6)
        assert scheme.log.count_of("sensor_bad_nan") == first  # not doubled


# ---------------------------------------------------------------------------
# Chaos harness acceptance
# ---------------------------------------------------------------------------

pytestmark_slow = pytest.mark.slow


@pytest.mark.slow
class TestChaosAcceptance:
    @pytest.fixture(scope="class")
    def outcomes(self):
        from repro.experiments.chaos import run_cases

        return run_cases(seed=12345, quick=True)

    def test_guarded_never_violates_the_budget(self, outcomes):
        guarded = [o for o in outcomes if o.guarded]
        assert guarded
        for o in guarded:
            assert not o.crashed, o.scenario
            assert o.violation_rate == 0.0, o.scenario

    def test_unguarded_demonstrably_fails_somewhere(self, outcomes):
        unguarded = [o for o in outcomes if not o.guarded]
        assert any(o.crashed or o.violation_rate > 0.0 for o in unguarded)

    def test_guarded_sensor_faults_recover_within_bounds(self, outcomes):
        for o in outcomes:
            if o.guarded and o.scenario in ("stuck-sensor", "sensor-dropout"):
                # Documented bound: detection <= 14 PIC ticks, re-arm
                # within rearm_after of the fault clearing; allow a few
                # windows of settling on top.
                assert o.recovery_ticks is not None, o.scenario
                assert o.recovery_ticks <= 40, o.scenario

    def test_guard_events_logged_for_fault_scenarios(self, outcomes):
        for o in outcomes:
            if not o.guarded or o.scenario == "missed-gpm":
                continue
            assert o.guard_counts, o.scenario


@pytest.mark.slow
class TestGuardedBudgetProperty:
    """Every fault scenario x every GPM policy keeps power within budget."""

    POLICIES = (PerformanceAwarePolicy, ThermalAwarePolicy, EnergyAwarePolicy,
                UniformPolicy, VariationAwarePolicy)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize(
        "scenario",
        ["stuck-sensor", "sensor-dropout", "stuck-actuator", "missed-gpm"],
    )
    def test_window_power_stays_bounded(self, scenario, policy):
        from repro.experiments.chaos import (
            BUDGET_TOLERANCE,
            DETECTION_GRACE_WINDOWS,
            _make_fault,
            _window_power,
        )

        window = FaultWindow(30, 60)
        scheme = inject(
            GuardedCPMScheme(policy=policy()), _make_fault(scenario, window)
        )
        result = Simulation(
            SMALL, scheme, budget_fraction=BUDGET, seed=12345
        ).run(9)
        pics = SMALL.control.pics_per_gpm
        onset_window = window.start // pics
        post = _window_power(result)[onset_window + DETECTION_GRACE_WINDOWS:]
        assert post.size
        assert np.all(np.isfinite(post))
        assert np.all(post <= BUDGET * (1.0 + BUDGET_TOLERANCE)), scenario
