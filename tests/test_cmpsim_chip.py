"""Chip model: normalization, actuation, per-interval evaluation."""

import numpy as np
import pytest

from repro.cmpsim.chip import Chip
from repro.config import CMPConfig, DEFAULT_CONFIG, DVFSConfig
from repro.workloads.mixes import MIX1


def make_chip(config: CMPConfig | None = None) -> Chip:
    config = config or DEFAULT_CONFIG
    from repro.workloads.mixes import mix_for_config

    return Chip(config, mix_for_config(config).specs())


def nominal_inputs(n_cores: int):
    return (
        np.full(n_cores, 0.8),   # alpha
        np.full(n_cores, 1.0),   # cpi_base
        np.full(n_cores, 10.0),  # l1_mpki
        np.full(n_cores, 2.0),   # l2_mpki
    )


class TestNormalization:
    def test_uncore_fraction_matches_config(self):
        chip = make_chip()
        assert chip.uncore_fraction == pytest.approx(
            DEFAULT_CONFIG.uncore_fraction
        )

    def test_max_power_is_actual_upper_bound(self):
        chip = make_chip()
        alpha, cpi, l1, l2 = nominal_inputs(8)
        result = chip.compute_interval(
            np.ones(8), cpi, np.zeros(8), np.zeros(8), dt=5e-4
        )
        assert result.chip_power_frac < 1.0 + 1e-9

    def test_island_bounds_order(self):
        chip = make_chip()
        lo, hi = chip.island_power_bounds()
        assert np.all(lo < hi)
        assert np.all(lo > 0)
        # All islands' peaks plus the uncore share cover the whole chip.
        assert hi.sum() + chip.uncore_fraction == pytest.approx(1.0)


class TestActuation:
    def test_set_frequency_clamps(self):
        chip = make_chip()
        applied = chip.set_island_frequency(0, 5.0)
        assert applied == 2.0
        applied = chip.set_island_frequency(0, 0.1)
        assert applied == 0.6

    def test_quantized_mode_snaps(self):
        import dataclasses

        cfg = dataclasses.replace(DEFAULT_CONFIG, dvfs=DVFSConfig(mode="quantized"))
        chip = make_chip(cfg)
        assert chip.set_island_frequency(0, 1.31) == pytest.approx(1.4)

    def test_core_frequencies_follow_islands(self):
        chip = make_chip()
        chip.set_island_frequency(2, 1.0)
        freqs = chip.core_frequencies()
        np.testing.assert_allclose(freqs[4:6], 1.0)
        np.testing.assert_allclose(freqs[:4], 2.0)

    def test_island_index_validated(self):
        chip = make_chip()
        with pytest.raises(IndexError):
            chip.set_island_frequency(4, 1.0)


class TestComputeInterval:
    def test_power_conservation(self):
        """Chip power equals the sum of island power plus the uncore."""
        chip = make_chip()
        result = chip.compute_interval(*nominal_inputs(8), dt=5e-4)
        assert result.chip_power_w == pytest.approx(
            result.island_power_w.sum() + chip.uncore_power_w
        )
        np.testing.assert_allclose(
            result.island_power_frac, result.island_power_w / chip.max_power_w
        )

    def test_island_aggregation_matches_cores(self):
        chip = make_chip()
        result = chip.compute_interval(*nominal_inputs(8), dt=5e-4)
        for i in range(4):
            members = chip.island_of_core == i
            assert result.island_power_w[i] == pytest.approx(
                result.core_power_w[members].sum()
            )

    def test_instructions_match_ips_dt(self):
        chip = make_chip()
        dt = 5e-4
        result = chip.compute_interval(*nominal_inputs(8), dt=dt)
        np.testing.assert_allclose(
            result.core_instructions, result.core_ips * dt, rtol=1e-12
        )

    def test_transition_overhead_reduces_instructions(self):
        chip = make_chip()
        inputs = nominal_inputs(8)
        clean = chip.compute_interval(*inputs, dt=5e-4)
        transitioned = np.array([True, False, False, False])
        taxed = chip.compute_interval(
            *inputs, dt=5e-4, transitioned_islands=transitioned
        )
        ratio = taxed.core_instructions[0] / clean.core_instructions[0]
        assert ratio == pytest.approx(1.0 - 0.005)
        # Untouched islands unaffected.
        assert taxed.core_instructions[-1] == pytest.approx(
            clean.core_instructions[-1]
        )

    def test_lower_frequency_lower_power_lower_bips(self):
        chip_hi = make_chip()
        chip_lo = make_chip()
        for i in range(4):
            chip_lo.set_island_frequency(i, 1.0)
        hi = chip_hi.compute_interval(*nominal_inputs(8), dt=5e-4)
        lo = chip_lo.compute_interval(*nominal_inputs(8), dt=5e-4)
        assert lo.chip_power_w < hi.chip_power_w
        assert lo.chip_bips < hi.chip_bips

    def test_utilization_monotone_in_frequency(self):
        chip_hi = make_chip()
        chip_lo = make_chip()
        for i in range(4):
            chip_lo.set_island_frequency(i, 0.8)
        hi = chip_hi.compute_interval(*nominal_inputs(8), dt=5e-4)
        lo = chip_lo.compute_interval(*nominal_inputs(8), dt=5e-4)
        assert np.all(lo.core_utilization < hi.core_utilization)

    def test_temperatures_warm_up(self):
        chip = make_chip()
        t0 = chip.thermal.temperatures.copy()
        for _ in range(50):
            result = chip.compute_interval(*nominal_inputs(8), dt=5e-4)
        assert np.all(result.core_temperature_c > t0)

    def test_leakage_variation_raises_island_power(self):
        import dataclasses

        cfg = dataclasses.replace(
            DEFAULT_CONFIG, island_leakage_multipliers=(1.0, 1.0, 1.0, 3.0)
        )
        chip = Chip(cfg, MIX1.specs())
        result = chip.compute_interval(*nominal_inputs(8), dt=5e-4)
        # Island 4 runs the same workload mix shape; its extra power is
        # leakage only, but must be visibly higher than a same-mix island.
        assert result.island_power_w[3] > result.island_power_w[0] * 0.9

    def test_input_validation(self):
        chip = make_chip()
        with pytest.raises(ValueError):
            chip.compute_interval(
                np.ones(4), np.ones(8), np.ones(8), np.ones(8), dt=5e-4
            )
        with pytest.raises(ValueError):
            chip.compute_interval(*nominal_inputs(8), dt=0.0)

    def test_spec_count_validated(self):
        with pytest.raises(ValueError):
            Chip(DEFAULT_CONFIG, MIX1.specs()[:4])
