"""Energy-aware provisioning: performance-floored power minimization."""

import numpy as np
import pytest

from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme
from repro.core.metrics import performance_degradation
from repro.gpm.energy_aware import EnergyAwarePolicy
from repro.gpm.policy import GPMContext

from test_gpm_policies import context, window  # shared fixtures/helpers

N = 4


class TestUnit:
    def test_equal_split_before_measurements(self):
        policy = EnergyAwarePolicy()
        out = policy.provision(context())
        np.testing.assert_allclose(out, 0.7 / N)

    def test_underspends_budget(self):
        policy = EnergyAwarePolicy(performance_floor=0.9)
        w = window([0.15, 0.15, 0.15, 0.15], [2.0, 0.5, 2.0, 0.5])
        ctx = context(
            windows=[w], frequency=np.full(N, 2.0), f_max=2.0
        )
        out = policy.provision(ctx)
        assert out.sum() < ctx.budget
        assert np.all(out >= ctx.island_min - 1e-12)

    def test_memory_bound_islands_trimmed_first(self):
        """Low-BIPS, low-utilization islands are the cheapest power."""
        policy = EnergyAwarePolicy(performance_floor=0.93)
        w = window([0.16, 0.16, 0.16, 0.16], [2.5, 0.3, 2.5, 0.3])
        # Utilization marks islands 1 and 3 as stall-heavy.
        w = type(w)(
            island_power_frac=w.island_power_frac,
            island_bips=w.island_bips,
            island_utilization=np.array([0.9, 0.4, 0.9, 0.4]),
            island_setpoints=w.island_setpoints,
            island_energy_j=w.island_energy_j,
            island_instructions=w.island_instructions,
            duration_s=w.duration_s,
        )
        ctx = context(windows=[w], frequency=np.full(N, 2.0), f_max=2.0)
        out = policy.provision(ctx)
        assert out[1] < out[0]
        assert out[3] < out[2]

    def test_stricter_floor_spends_more(self):
        w = window([0.16] * 4, [2.0, 0.5, 2.0, 0.5])
        ctx = context(windows=[w], frequency=np.full(N, 2.0), f_max=2.0)
        loose = EnergyAwarePolicy(performance_floor=0.85).provision(ctx)
        strict = EnergyAwarePolicy(performance_floor=0.99).provision(ctx)
        assert strict.sum() >= loose.sum() - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyAwarePolicy(performance_floor=0.0)
        with pytest.raises(ValueError):
            EnergyAwarePolicy(trim_step=1.0)
        with pytest.raises(ValueError):
            EnergyAwarePolicy(max_trims=0)


@pytest.mark.slow
class TestClosedLoop:
    def test_saves_power_within_performance_floor(self, nomgmt_run):
        scheme = CPMScheme(policy=EnergyAwarePolicy(performance_floor=0.95))
        result = Simulation(
            DEFAULT_CONFIG, scheme, budget_fraction=0.9
        ).run(12)
        # Saves real power vs the unmanaged run...
        assert result.mean_chip_power_frac < nomgmt_run.mean_chip_power_frac - 0.01
        # ...without busting the performance guarantee by much more than
        # the predictor's error margin.
        deg = performance_degradation(result, nomgmt_run)
        assert deg < 0.10

    def test_power_does_not_ratchet_down(self):
        """The de-throttled baseline prevents the death spiral where each
        window rebases on the previous window's throttled demand."""
        scheme = CPMScheme(policy=EnergyAwarePolicy(performance_floor=0.95))
        result = Simulation(
            DEFAULT_CONFIG, scheme, budget_fraction=0.9
        ).run(20)
        chip = result.telemetry["chip_power_frac"]
        early = chip[40:80].mean()
        late = chip[-40:].mean()
        assert late > 0.7 * early
