"""Hardened runner: timeouts, retry, quarantine, and cache durability.

The misbehaving schemes live at module level so their factories pickle
into worker processes.  Each is pathological in a different way: one
kills its process outright (crash), one never returns (timeout), one
raises a deterministic exception (error — never retried).
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme
from repro.runner import (
    RunFailure,
    RunRequest,
    cache_key,
    run_many,
    run_one,
)
from repro.runner import _cache_load, _cache_store, _retry_backoff_s

SMALL = DEFAULT_CONFIG.with_islands(4, 2)
N_GPM = 2


class CrashingScheme(CPMScheme):
    """Kills its worker process mid-run (simulates a segfault/OOM kill)."""

    name = "crashing"

    def on_gpm(self, sim):
        if sim.tick > 0:
            os._exit(17)
        super().on_gpm(sim)


class HangingScheme(CPMScheme):
    """Never finishes; only a supervisor deadline can stop it."""

    name = "hanging"

    def on_gpm(self, sim):
        if sim.tick > 0:
            time.sleep(600)
        super().on_gpm(sim)


class RaisingScheme(CPMScheme):
    """Raises a deterministic exception (retrying would only repeat it)."""

    name = "raising"

    def on_gpm(self, sim):
        if sim.tick > 0:
            raise ValueError("boom")
        super().on_gpm(sim)


def request(scheme_factory=CPMScheme, **overrides):
    defaults = dict(
        config=SMALL,
        scheme_factory=scheme_factory,
        budget_fraction=0.8,
        seed=7,
        n_gpm_intervals=N_GPM,
    )
    defaults.update(overrides)
    return RunRequest(**defaults)


def assert_results_identical(a, b):
    for name in a.telemetry._SERIES:
        np.testing.assert_array_equal(
            a.telemetry[name], b.telemetry[name],
            err_msg=f"series {name!r} differs",
        )
    assert a.total_instructions == b.total_instructions


class TestArgumentValidation:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_many([request()], on_error="ignore")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_many([request()], retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError):
            run_many([request()], timeout_s=0.0)

    def test_serial_timeout_warns_and_runs(self):
        with pytest.warns(RuntimeWarning, match="timeout_s requires"):
            results = run_many([request()], jobs=1, timeout_s=5.0)
        assert len(results) == 1 and results[0] is not None


class TestBackoff:
    def test_bounded_exponential(self):
        delays = [_retry_backoff_s(a) for a in range(8)]
        assert delays == sorted(delays)
        assert delays[0] > 0
        assert max(delays) <= 0.5


@pytest.mark.slow
class TestQuarantine:
    def test_mixed_sweep_returns_all_healthy_results(self):
        reqs = [
            request(seed=1),
            request(RaisingScheme, seed=2),
            request(seed=3),
            request(CrashingScheme, seed=4),
            request(HangingScheme, seed=5),
        ]
        failures: list[RunFailure] = []
        results = run_many(
            reqs, jobs=3, timeout_s=3.0, on_error="quarantine",
            failures=failures,
        )
        assert [r is not None for r in results] == [
            True, False, True, False, False
        ]
        # Healthy slots are bit-identical to running them alone.
        assert_results_identical(results[0], run_one(reqs[0]))
        assert_results_identical(results[2], run_one(reqs[2]))
        kinds = {f.index: f.kind for f in failures}
        assert kinds == {1: "error", 3: "crash", 4: "timeout"}
        crash = next(f for f in failures if f.kind == "crash")
        assert "17" in crash.message  # exit code surfaced
        error = next(f for f in failures if f.kind == "error")
        assert "boom" in error.message

    def test_crash_and_timeout_retried_error_not(self):
        failures: list[RunFailure] = []
        run_many(
            [request(CrashingScheme), request(RaisingScheme)],
            jobs=2, timeout_s=5.0, retries=1, on_error="quarantine",
            failures=failures,
        )
        attempts = {f.kind: f.attempts for f in failures}
        assert attempts["crash"] == 2  # retried once
        assert attempts["error"] == 1  # deterministic raise: no retry

    def test_on_error_raise_aborts(self):
        with pytest.raises(RuntimeError, match="crash"):
            run_many(
                [request(CrashingScheme), request(seed=8)],
                jobs=2, timeout_s=10.0, on_error="raise",
            )

    def test_serial_quarantine(self):
        failures: list[RunFailure] = []
        results = run_many(
            [request(RaisingScheme), request(seed=6)],
            jobs=1, on_error="quarantine", failures=failures,
        )
        assert results[0] is None and results[1] is not None
        assert failures[0].kind == "error" and failures[0].index == 0

    def test_supervised_healthy_sweep_bit_identical_to_serial(self):
        reqs = [request(seed=s) for s in (21, 22, 23)]
        serial = run_many(reqs, jobs=1)
        supervised = run_many(reqs, jobs=2, timeout_s=60.0)
        for a, b in zip(serial, supervised):
            assert_results_identical(a, b)


class TestCacheDurability:
    def test_store_then_load_round_trips(self, tmp_path):
        req = request(seed=31)
        result = run_one(req)
        key = cache_key(req)
        _cache_store(tmp_path, key, result)
        loaded = _cache_load(tmp_path, key)
        assert loaded is not None
        assert_results_identical(result, loaded)
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_failed_publish_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        req = request(seed=32)
        result = run_one(req)

        def deny_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", deny_replace)
        _cache_store(tmp_path, cache_key(req), result)  # must not raise
        # No entry and no temp litter (the shard directory may remain).
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []

    def test_torn_write_is_a_miss_not_a_crash(self, tmp_path):
        req = request(seed=33)
        key = cache_key(req)
        _cache_store(tmp_path, key, run_one(req))
        entry = next(p for p in tmp_path.rglob("*") if p.is_file())
        entry.write_bytes(entry.read_bytes()[:40])  # truncate mid-pickle
        assert _cache_load(tmp_path, key) is None
