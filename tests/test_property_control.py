"""Property-based tests on the control substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.analysis import response_metrics
from repro.control.identification import fit_system_gain, predict_power
from repro.control.lti import DiscreteTransferFunction
from repro.control.pid import DiscretePID, PIDGains
from repro.control.pole_placement import closed_loop, design_pid

# Strategy: poles strictly inside the unit circle, closed under
# conjugation (one real pole + a conjugate pair).
real_pole = st.floats(min_value=-0.8, max_value=0.8).map(lambda r: complex(r, 0))
conjugate_pair = st.tuples(
    st.floats(min_value=-0.7, max_value=0.7),
    st.floats(min_value=0.01, max_value=0.6),
).filter(lambda p: abs(complex(*p)) < 0.9)

plant_gains = st.floats(min_value=0.01, max_value=10.0)


class TestPolePlacementProperties:
    @given(gain=plant_gains, real=real_pole, pair=conjugate_pair)
    @settings(max_examples=60, deadline=None)
    def test_design_always_achieves_poles_and_stability(self, gain, real, pair):
        poles = (real, complex(*pair), complex(pair[0], -pair[1]))
        gains = design_pid(gain, poles)
        loop = closed_loop(gain, gains)
        assert loop.is_stable()
        # Compare characteristic polynomials (pole lists reorder under
        # floating-point noise when real parts nearly coincide).
        np.testing.assert_allclose(
            np.asarray(loop.den, dtype=complex), np.poly(poles), atol=1e-8
        )

    @given(gain=plant_gains, real=real_pole, pair=conjugate_pair)
    @settings(max_examples=30, deadline=None)
    def test_closed_loop_has_unit_dc_gain(self, gain, real, pair):
        """The integral action guarantees zero steady-state error for any
        stable design — the paper's PI/PID rationale."""
        poles = (real, complex(*pair), complex(pair[0], -pair[1]))
        gains = design_pid(gain, poles)
        assert closed_loop(gain, gains).dc_gain() == pytest.approx(1.0)


class TestPIDProperties:
    @given(
        kp=st.floats(0.0, 5.0),
        ki=st.floats(0.0, 5.0),
        kd=st.floats(0.0, 5.0),
        errors=st.lists(st.floats(-10, 10), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_stateful_equals_transfer_function(self, kp, ki, kd, errors):
        gains = PIDGains(kp, ki, kd)
        pid = DiscretePID(gains)
        direct = np.array([pid.step(e) for e in errors])
        simulated = DiscretePID(gains).transfer_function().simulate(errors)
        np.testing.assert_allclose(simulated, direct, atol=1e-6, rtol=1e-6)

    @given(
        limit=st.floats(0.1, 2.0),
        errors=st.lists(st.floats(-100, 100), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_output_always_within_limits(self, limit, errors):
        pid = DiscretePID(PIDGains(3.0, 2.0, 1.0), output_limits=(-limit, limit))
        for e in errors:
            assert abs(pid.step(e)) <= limit + 1e-12

    @given(scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, scale):
        """PID is linear: scaling the error sequence scales the output."""
        errors = [1.0, -0.5, 0.25, 2.0]
        a = DiscretePID(PIDGains(0.5, 0.3, 0.2))
        b = DiscretePID(PIDGains(0.5, 0.3, 0.2))
        out_a = [a.step(e) for e in errors]
        out_b = [b.step(e * scale) for e in errors]
        np.testing.assert_allclose(out_b, np.asarray(out_a) * scale, rtol=1e-9)


class TestIdentificationProperties:
    @given(
        gain=st.floats(-5.0, 5.0).filter(lambda g: abs(g) > 1e-3),
        deltas=st.lists(
            st.floats(-0.5, 0.5).filter(lambda d: abs(d) > 1e-6),
            min_size=2,
            max_size=50,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_fit_recovers_generating_gain(self, gain, deltas):
        df = np.asarray(deltas)
        fit = fit_system_gain(df, gain * df)
        assert fit.gain == pytest.approx(gain, rel=1e-6)

    @given(
        initial=st.floats(0.1, 1.0),
        gain=st.floats(0.01, 1.0),
        deltas=st.lists(st.floats(-0.2, 0.2), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_rollout_length_and_start(self, initial, gain, deltas):
        rollout = predict_power(initial, deltas, gain)
        assert rollout.shape == (len(deltas) + 1,)
        assert rollout[0] == initial


class TestMetricsProperties:
    @given(
        values=st.lists(st.floats(0.01, 10.0), min_size=2, max_size=60),
        reference=st.floats(0.1, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_metrics_are_well_formed(self, values, reference):
        m = response_metrics(values, reference)
        assert m.max_overshoot >= 0.0
        assert m.max_undershoot >= 0.0
        if m.settled:
            assert 0 <= m.settling_steps <= len(values)
            assert m.steady_state_error >= 0.0

    @given(offset=st.floats(-0.5, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_constant_series_statistics(self, offset):
        reference = 1.0
        m = response_metrics(np.full(20, reference + offset), reference,
                             tolerance=0.01)
        if abs(offset) <= 0.01:
            assert m.settling_steps == 0
        else:
            assert m.settling_steps is None
            if offset > 0:
                assert m.max_overshoot == pytest.approx(offset, rel=1e-6)
            else:
                assert m.max_undershoot == pytest.approx(-offset, rel=1e-6)


class TestLTIProperties:
    @given(pole=st.floats(-0.95, 0.95), gain=st.floats(0.1, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_first_order_step_converges_to_dc_gain(self, pole, gain):
        tf = DiscreteTransferFunction([gain], [1.0, -pole])
        response = tf.step_response(300)
        assert response[-1] == pytest.approx(tf.dc_gain(), rel=1e-3, abs=1e-6)

    @given(
        p1=st.floats(-0.9, 0.9),
        p2=st.floats(-0.9, 0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_series_composition_preserves_stability(self, p1, p2):
        a = DiscreteTransferFunction([1.0], [1.0, -p1])
        b = DiscreteTransferFunction([1.0], [1.0, -p2])
        assert (a * b).is_stable()
