"""Property-based tests on the power models and cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmpsim.cache import SetAssociativeCache
from repro.cmpsim.core import cpi_stack
from repro.config import MemoryConfig
from repro.power.clock_gating import LinearClockGating
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel

voltages = st.floats(0.8, 1.6)
frequencies = st.floats(0.5, 2.2)
fractions = st.floats(0.0, 1.0)
alphas = st.floats(0.05, 1.0)


class TestDynamicPowerProperties:
    MODEL = DynamicPowerModel(1.78, stall_activity=0.65)

    @given(v=voltages, f=frequencies, busy=fractions, alpha=alphas)
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_floor_and_peak(self, v, f, busy, alpha):
        p = self.MODEL.power(v, f, busy, alpha)
        peak = 1.78 * v**2 * f
        floor = peak * 0.1  # the clock-gating floor
        assert floor - 1e-9 <= p <= peak + 1e-9

    @given(v=voltages, f=frequencies, b1=fractions, b2=fractions, alpha=alphas)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_busy(self, v, f, b1, b2, alpha):
        lo, hi = sorted([b1, b2])
        # stall_activity < alpha can invert this; use alpha above stall.
        alpha = max(alpha, 0.7)
        p_lo = self.MODEL.power(v, f, lo, alpha)
        p_hi = self.MODEL.power(v, f, hi, alpha)
        assert p_hi >= p_lo - 1e-9

    @given(v=voltages, f1=frequencies, f2=frequencies, busy=fractions, alpha=alphas)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_frequency(self, v, f1, f2, busy, alpha):
        lo, hi = sorted([f1, f2])
        assert self.MODEL.power(v, hi, busy, alpha) >= self.MODEL.power(
            v, lo, busy, alpha
        ) - 1e-9

    @given(v=voltages, f=frequencies, busy=fractions, alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_breakdown_sums_to_power(self, v, f, busy, alpha):
        total = self.MODEL.power(v, f, busy, alpha)
        parts = self.MODEL.breakdown(v, f, busy, alpha)
        assert sum(parts.values()) == pytest.approx(total, rel=1e-9)


class TestLeakageProperties:
    MODEL = LeakagePowerModel(1.5, nominal_voltage=1.484)

    @given(v1=voltages, v2=voltages, t=st.floats(30, 110))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_voltage(self, v1, v2, t):
        lo, hi = sorted([v1, v2])
        assert self.MODEL.power(hi, t) >= self.MODEL.power(lo, t) - 1e-12

    @given(v=voltages, t1=st.floats(30, 110), t2=st.floats(30, 110))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_temperature(self, v, t1, t2):
        lo, hi = sorted([t1, t2])
        assert self.MODEL.power(v, hi) >= self.MODEL.power(v, lo) - 1e-12

    @given(v=voltages, t=st.floats(30, 110), m=st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_multiplier_is_exactly_linear(self, v, t, m):
        assert self.MODEL.power(v, t, m) == pytest.approx(
            m * self.MODEL.power(v, t, 1.0), rel=1e-12
        )


class TestGatingProperties:
    @given(floor=st.floats(0.0, 0.9), activity=fractions)
    @settings(max_examples=60, deadline=None)
    def test_output_in_floor_one_range(self, floor, activity):
        g = LinearClockGating(idle_floor=floor)
        out = g.effective_activity(activity)
        assert floor - 1e-12 <= out <= 1.0 + 1e-12


class TestCPIStackProperties:
    MEM = MemoryConfig()

    @given(f=frequencies, alpha=alphas,
           cpi=st.floats(0.5, 2.0),
           l1=st.floats(0.0, 60.0),
           l2=st.floats(0.0, 30.0))
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, f, alpha, cpi, l1, l2):
        r = cpi_stack(f, alpha, cpi, l1, l2, self.MEM)
        assert r.cpi >= cpi
        assert 0.0 < r.busy <= 1.0
        assert r.ips > 0

    @given(alpha=alphas, cpi=st.floats(0.5, 2.0),
           l1=st.floats(0.0, 60.0), l2=st.floats(0.01, 30.0),
           f1=frequencies, f2=frequencies)
    @settings(max_examples=60, deadline=None)
    def test_throughput_monotone_but_sublinear_in_f(self, alpha, cpi, l1, l2, f1, f2):
        lo, hi = sorted([f1, f2])
        if hi - lo < 1e-6:
            return
        r_lo = cpi_stack(lo, alpha, cpi, l1, l2, self.MEM)
        r_hi = cpi_stack(hi, alpha, cpi, l1, l2, self.MEM)
        assert r_hi.ips >= r_lo.ips
        # Strictly sublinear whenever there is any off-chip traffic.
        assert r_hi.ips < r_lo.ips * (hi / lo) + 1e-6


class TestCacheProperties:
    @given(
        addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_counter_consistency(self, addresses):
        cache = SetAssociativeCache(4096, 2, 64)
        for a in addresses:
            cache.access(a)
        assert cache.accesses == len(addresses)
        assert 0 <= cache.misses <= cache.accesses
        # Distinct blocks touched lower-bounds misses (compulsory misses).
        blocks = {a >> 6 for a in addresses}
        assert cache.misses >= min(len(blocks), 1)

    @given(
        addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_working_set_within_capacity_all_hits_second_pass(self, addresses):
        """Any reference stream fitting entirely in the cache hits on
        replay (LRU never evicts a line that still fits)."""
        cache = SetAssociativeCache(64 * 1024, 16, 64)  # 4 KB fits easily
        for a in addresses:
            cache.access(a)
        cache.reset_stats()
        for a in addresses:
            assert cache.access(a) is True

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_miss_rate_monotone_in_cache_size(self, seed):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 16, size=600)
        small = SetAssociativeCache(2048, 2, 64)
        large = SetAssociativeCache(32 * 1024, 2, 64)
        for a in addresses:
            small.access(int(a))
            large.access(int(a))
        assert large.misses <= small.misses
