"""Batched workload advancement is bit-identical to per-tick advancement."""

import numpy as np
import pytest

from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme
from repro.rng import SeedSequenceFactory
from repro.workloads.benchmark import make_instances
from repro.workloads.mixes import MIX1
from repro.workloads.phases import Phase, PhaseMachine
from repro.workloads.recorded import record

PHASES = (
    Phase(alpha=0.9, cpi_base=0.8, l1_mpki=5.0, l2_mpki=0.5),
    Phase(alpha=0.6, cpi_base=1.2, l1_mpki=30.0, l2_mpki=10.0),
    Phase(alpha=0.3, cpi_base=2.0, l1_mpki=50.0, l2_mpki=20.0),
)


def machine(seed, phases=PHASES):
    return PhaseMachine(
        phases=phases,
        mean_dwell_intervals=8.0,
        noise_sigma=0.02,
        noise_rho=0.8,
        rng=np.random.default_rng(seed),
    )


class TestPhaseMachineBlock:
    @pytest.mark.parametrize("seed", range(8))
    def test_block_matches_serial(self, seed):
        serial, batched = machine(seed), machine(seed)
        states = [serial.advance() for _ in range(120)]
        block = batched.advance_block(120)
        np.testing.assert_array_equal(
            block.phase_index, [PHASES.index(s.phase) for s in states]
        )
        np.testing.assert_array_equal(
            block.alpha, [s.alpha for s in states]
        )
        for name in ("cpi_base", "l1_mpki", "l2_mpki"):
            np.testing.assert_array_equal(
                getattr(block, name), [getattr(s.phase, name) for s in states]
            )

    def test_split_blocks_match_one_block(self):
        whole, split = machine(3), machine(3)
        block = whole.advance_block(90)
        parts = [split.advance_block(n) for n in (1, 29, 60)]
        np.testing.assert_array_equal(
            block.alpha, np.concatenate([p.alpha for p in parts])
        )
        np.testing.assert_array_equal(
            block.phase_index,
            np.concatenate([p.phase_index for p in parts]),
        )

    def test_block_then_serial_continues_stream(self):
        a, b = machine(5), machine(5)
        a.advance_block(40)
        [b.advance() for _ in range(40)]
        assert a.advance() == b.advance()

    def test_single_phase_machine(self):
        single = (PHASES[0],)
        serial, batched = machine(9, single), machine(9, single)
        states = [serial.advance() for _ in range(50)]
        block = batched.advance_block(50)
        assert set(block.phase_index) == {0}
        np.testing.assert_array_equal(block.alpha, [s.alpha for s in states])

    def test_validation(self):
        with pytest.raises(ValueError):
            machine(0).advance_block(0)

    def test_n_intervals(self):
        assert machine(0).advance_block(17).n_intervals == 17


class TestBenchmarkInstanceBlock:
    def test_delegates_to_machine(self):
        serial = make_instances(MIX1.specs(), SeedSequenceFactory(4))
        batched = make_instances(MIX1.specs(), SeedSequenceFactory(4))
        for s, b in zip(serial, batched):
            samples = [s.advance() for _ in range(60)]
            block = b.advance_block(60)
            for name in ("alpha", "cpi_base", "l1_mpki", "l2_mpki"):
                np.testing.assert_array_equal(
                    getattr(block, name),
                    [getattr(sample, name) for sample in samples],
                )


class TestReplayBlock:
    def test_wraps_like_serial(self):
        rec = record(DEFAULT_CONFIG, n_ticks=10, seed=2)
        for s, b in zip(rec.instances(), rec.instances()):
            samples = [s.advance() for _ in range(25)]  # wraps past n_ticks
            block = b.advance_block(25)
            np.testing.assert_array_equal(
                block.alpha, [sample.alpha for sample in samples]
            )
            np.testing.assert_array_equal(
                block.l2_mpki, [sample.l2_mpki for sample in samples]
            )


class TestSimulationBatching:
    @pytest.mark.parametrize("scheme_factory", [CPMScheme, NoManagementScheme])
    def test_batched_run_bit_identical(self, scheme_factory):
        serial = Simulation(
            DEFAULT_CONFIG, scheme_factory(), budget_fraction=0.8, seed=13
        ).run(6, batch_workloads=False)
        batched = Simulation(
            DEFAULT_CONFIG, scheme_factory(), budget_fraction=0.8, seed=13
        ).run(6, batch_workloads=True)
        for name in serial.telemetry._SERIES:
            np.testing.assert_array_equal(
                serial.telemetry[name],
                batched.telemetry[name],
                err_msg=f"series {name!r} differs",
            )
        assert serial.total_instructions == batched.total_instructions

    def test_batched_retires_identical_instruction_counts(self):
        serial = Simulation(DEFAULT_CONFIG, CPMScheme(), seed=13)
        batched = Simulation(DEFAULT_CONFIG, CPMScheme(), seed=13)
        serial.run(4, batch_workloads=False)
        batched.run(4, batch_workloads=True)
        for s, b in zip(serial.instances, batched.instances):
            assert s.instructions_retired == b.instructions_retired

    def test_auto_batching_matches_forced(self):
        auto = Simulation(DEFAULT_CONFIG, CPMScheme(), seed=1).run(4)
        forced = Simulation(DEFAULT_CONFIG, CPMScheme(), seed=1).run(
            4, batch_workloads=True
        )
        np.testing.assert_array_equal(
            auto.telemetry["chip_power_frac"],
            forced.telemetry["chip_power_frac"],
        )
