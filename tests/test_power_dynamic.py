"""Dynamic power model and clock gating."""

import numpy as np
import pytest

from repro.power.clock_gating import LinearClockGating
from repro.power.dynamic import STRUCTURES, DynamicPowerModel


class TestClockGating:
    def test_floor_and_ceiling(self):
        gating = LinearClockGating(idle_floor=0.1)
        assert gating.effective_activity(0.0) == pytest.approx(0.1)
        assert gating.effective_activity(1.0) == pytest.approx(1.0)

    def test_linear_between(self):
        gating = LinearClockGating(idle_floor=0.1)
        assert gating.effective_activity(0.5) == pytest.approx(0.55)

    def test_clips_out_of_range_activity(self):
        gating = LinearClockGating(idle_floor=0.1)
        assert gating.effective_activity(-0.5) == pytest.approx(0.1)
        assert gating.effective_activity(2.0) == pytest.approx(1.0)

    def test_vectorized(self):
        gating = LinearClockGating(idle_floor=0.2)
        out = gating.effective_activity(np.array([0.0, 1.0]))
        np.testing.assert_allclose(out, [0.2, 1.0])

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            LinearClockGating(idle_floor=1.0)


class TestStructures:
    def test_shares_sum_to_one(self):
        assert sum(s.capacitance_share for s in STRUCTURES) == pytest.approx(1.0)

    def test_clock_tree_is_largest(self):
        largest = max(STRUCTURES, key=lambda s: s.capacitance_share)
        assert largest.name == "clock_tree"


class TestDynamicPower:
    def model(self, stall=0.65):
        return DynamicPowerModel(1.78, stall_activity=stall)

    def test_cv2f_scaling(self):
        m = self.model()
        base = m.power(1.0, 1.0, busy=1.0, alpha=1.0)
        assert m.power(2.0, 1.0, 1.0, 1.0) == pytest.approx(4 * base)
        assert m.power(1.0, 2.0, 1.0, 1.0) == pytest.approx(2 * base)

    def test_full_activity_power_is_cv2f(self):
        m = self.model()
        assert m.power(1.5, 2.0, busy=1.0, alpha=1.0) == pytest.approx(
            1.78 * 1.5**2 * 2.0
        )

    def test_monotone_in_busy_and_alpha(self):
        m = self.model()
        assert m.power(1.2, 1.4, busy=0.9, alpha=0.8) > m.power(
            1.2, 1.4, busy=0.5, alpha=0.8
        )
        assert m.power(1.2, 1.4, busy=0.9, alpha=0.9) > m.power(
            1.2, 1.4, busy=0.9, alpha=0.6
        )

    def test_stalled_core_not_quiet(self):
        """With stall_activity > 0 a fully-stalled core burns real power."""
        m = self.model(stall=0.65)
        stalled = m.power(1.2, 1.4, busy=0.0, alpha=1.0)
        idle_model = DynamicPowerModel(1.78, stall_activity=0.0)
        gated = idle_model.power(1.2, 1.4, busy=0.0, alpha=1.0)
        assert stalled > 2.0 * gated

    def test_core_activity_blends_stall_activity(self):
        m = self.model(stall=0.5)
        assert m.core_activity(busy=1.0, alpha=0.8) == pytest.approx(0.8)
        assert m.core_activity(busy=0.0, alpha=0.8) == pytest.approx(0.5)
        assert m.core_activity(busy=0.5, alpha=0.8) == pytest.approx(0.65)

    def test_vectorized_over_cores(self):
        m = self.model()
        v = np.array([1.2, 1.4])
        f = np.array([1.0, 1.8])
        busy = np.array([0.3, 0.9])
        alpha = np.array([0.7, 0.9])
        out = m.power(v, f, busy, alpha)
        assert out.shape == (2,)
        for i in range(2):
            assert out[i] == pytest.approx(
                m.power(float(v[i]), float(f[i]), float(busy[i]), float(alpha[i]))
            )

    def test_breakdown_sums_to_total(self):
        m = self.model()
        total = m.power(1.3, 1.6, busy=0.7, alpha=0.85)
        breakdown = m.breakdown(1.3, 1.6, busy=0.7, alpha=0.85)
        assert sum(breakdown.values()) == pytest.approx(total)
        assert set(breakdown) == {s.name for s in STRUCTURES}

    def test_invalid_inputs(self):
        m = self.model()
        with pytest.raises(ValueError):
            m.power(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            m.power(1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            DynamicPowerModel(-1.0)
        with pytest.raises(ValueError):
            DynamicPowerModel(1.0, stall_activity=2.0)
