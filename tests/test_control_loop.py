"""The generic feedback loop (Figure 2), validated on a toy thermostat."""

import pytest

from repro.control.loop import FeedbackLoop
from repro.control.pid import DiscretePID, PIDGains


class Thermostat:
    """A first-order room: temperature relaxes to ambient + heater power."""

    def __init__(self):
        self.temperature = 15.0
        self.heater = 0.0

    def step(self):
        target = 15.0 + 2.0 * self.heater
        self.temperature += 0.5 * (target - self.temperature)


class HeaterActuator:
    def __init__(self, room: Thermostat):
        self.room = room

    def apply(self, command: float) -> None:
        self.room.heater = max(0.0, self.room.heater + command)


class TemperatureSensor:
    """Reads a voltage proportional to temperature (transducer converts)."""

    def __init__(self, room: Thermostat):
        self.room = room

    def read(self) -> float:
        return self.room.temperature / 10.0  # volts


def build_loop():
    room = Thermostat()
    loop = FeedbackLoop(
        plant=room,
        sensor=TemperatureSensor(room),
        transducer=lambda volts: volts * 10.0,  # volts -> Celsius
        controller=DiscretePID(PIDGains(kp=0.2, ki=0.1, kd=0.0)),
        actuator=HeaterActuator(room),
    )
    return room, loop


class TestFeedbackLoop:
    def test_converges_to_reference(self):
        room, loop = build_loop()
        records = loop.run([21.0] * 60)
        assert room.temperature == pytest.approx(21.0, abs=0.2)
        assert abs(records[-1].error) < 0.2

    def test_record_fields_consistent(self):
        _, loop = build_loop()
        record = loop.iterate(21.0)
        assert record.reference == 21.0
        assert record.transduced == pytest.approx(record.measurement * 10.0)
        assert record.error == pytest.approx(21.0 - record.transduced)

    def test_tracks_changing_reference(self):
        room, loop = build_loop()
        loop.run([20.0] * 50)
        loop.run([25.0] * 50)
        assert room.temperature == pytest.approx(25.0, abs=0.3)

    def test_protocol_conformance(self):
        """The PIC building blocks satisfy the loop protocols."""
        from repro.cmpsim.dvfs import DVFSTable
        from repro.control.loop import Actuator, Controller, Sensor
        from repro.pic.actuator import DVFSActuator
        from repro.pic.sensor import CallbackSensor

        assert isinstance(CallbackSensor(lambda: 0.5), Sensor)
        assert isinstance(DiscretePID(PIDGains(1, 1, 1)), Controller)
        assert isinstance(DVFSActuator(DVFSTable()), Actuator)
