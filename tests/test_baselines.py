"""Baseline schemes: no-management, MaxBIPS, static-uniform."""

import numpy as np
import pytest

from repro.baselines.maxbips import MaxBIPSScheme
from repro.baselines.no_management import NoManagementScheme
from repro.baselines.static_uniform import StaticUniformScheme
from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG

pytestmark = pytest.mark.slow


class TestNoManagement:
    def test_all_islands_at_max_frequency(self):
        result = Simulation(DEFAULT_CONFIG, NoManagementScheme()).run(2)
        freqs = result.telemetry["island_frequency_ghz"]
        np.testing.assert_allclose(freqs, 2.0)

    def test_power_reflects_demand(self):
        result = Simulation(DEFAULT_CONFIG, NoManagementScheme()).run(3)
        assert 0.6 < result.mean_chip_power_frac < 1.0


class TestMaxBIPS:
    def test_never_overshoots_binding_budget(self):
        sim = Simulation(DEFAULT_CONFIG, MaxBIPSScheme(), budget_fraction=0.8)
        result = sim.run(8)
        chip = result.telemetry["chip_power_frac"][10:]
        assert chip.max() <= 0.8 + 1e-9

    def test_undershoots_budget(self):
        """Quantized knobs + worst-case provisioning leave a gap."""
        sim = Simulation(DEFAULT_CONFIG, MaxBIPSScheme(), budget_fraction=0.8)
        result = sim.run(8)
        chip = result.telemetry["chip_power_frac"][10:]
        assert chip.mean() < 0.78

    def test_frequencies_stay_on_table(self):
        sim = Simulation(DEFAULT_CONFIG, MaxBIPSScheme(), budget_fraction=0.8)
        result = sim.run(4)
        freqs = result.telemetry["island_frequency_ghz"]
        table = np.array([f for f, _ in DEFAULT_CONFIG.dvfs.vf_table])
        for f in np.unique(freqs):
            assert np.any(np.isclose(table, f))

    def test_static_prediction_treats_islands_uniformly(self):
        scheme = MaxBIPSScheme(prediction="static")
        sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=0.8)
        sim.run(1)
        bips, power = scheme._prediction_table(sim)
        # Same core count per island -> identical table rows.
        np.testing.assert_allclose(bips[0], bips[1])
        np.testing.assert_allclose(power[0], power[1])

    def test_measured_prediction_differentiates(self):
        scheme = MaxBIPSScheme(prediction="measured")
        sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=0.8)
        sim.run(2)
        bips, _power = scheme._prediction_table(sim)
        # Mix-1 islands run different apps: measured BIPS rows differ.
        assert not np.allclose(bips[0], bips[3])

    def test_measured_beats_static(self):
        """The runtime-informed ablation loses less performance."""
        static = Simulation(
            DEFAULT_CONFIG, MaxBIPSScheme(prediction="static"),
            budget_fraction=0.8,
        ).run(8)
        measured = Simulation(
            DEFAULT_CONFIG, MaxBIPSScheme(prediction="measured"),
            budget_fraction=0.8,
        ).run(8)
        assert measured.total_instructions > static.total_instructions

    def test_dp_selection_matches_exhaustive(self):
        """The knapsack DP and the exhaustive search agree (within the
        DP's power-bin resolution) on a real prediction table."""
        scheme = MaxBIPSScheme(dp_bins=2000)
        sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=0.8)
        sim.run(1)
        bips, power = scheme._prediction_table(sim)
        budget = sim.distributable_budget
        exhaustive = scheme._select_exhaustive(bips, power, budget)
        dp = scheme._select_dp(bips, power, budget)
        value = lambda k: bips[np.arange(4), k].sum()
        cost = lambda k: power[np.arange(4), k].sum()
        assert cost(dp) <= budget + 1e-9
        assert value(dp) >= value(exhaustive) * 0.995

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxBIPSScheme(dp_bins=5)
        with pytest.raises(ValueError):
            MaxBIPSScheme(prediction="psychic")
        with pytest.raises(ValueError):
            MaxBIPSScheme(headroom_guard=2.0)


class TestStaticUniform:
    def test_near_equal_setpoints(self):
        """The uniform policy keeps the split (nearly) equal — only the
        manager's demand reclaim may shave a demand-limited island."""
        sim = Simulation(DEFAULT_CONFIG, StaticUniformScheme(), budget_fraction=0.8)
        result = sim.run(4)
        setpoints = result.telemetry["island_setpoint_frac"]
        equal = setpoints[0, 0]
        assert np.abs(setpoints / equal - 1.0).max() < 0.15
        # Distributed total never changes.
        np.testing.assert_allclose(
            setpoints.sum(axis=1), setpoints[0].sum(), rtol=1e-6
        )

    def test_pics_track_the_static_split(self):
        sim = Simulation(DEFAULT_CONFIG, StaticUniformScheme(), budget_fraction=0.8)
        result = sim.run(8)
        power = result.telemetry["island_power_frac"][40:]
        setpoint = result.telemetry["island_setpoint_frac"][0, 0]
        assert np.abs(power.mean(axis=0) - setpoint).max() < 0.02
