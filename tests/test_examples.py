"""Every example script runs to completion and prints its report."""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 100  # it reported something substantial
