"""Pole-placement design against the integrator plant (Eqs. 9-13)."""

import numpy as np
import pytest

from repro.control.pid import PIDGains
from repro.control.pole_placement import (
    closed_loop,
    design_pid,
    integrator_plant,
    pid_transfer_function,
    stability_gain_limit,
)

POLES = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)


class TestPlant:
    def test_integrator_pole_at_one(self):
        plant = integrator_plant(0.13)
        np.testing.assert_allclose(plant.poles(), [1.0], atol=1e-12)

    def test_zero_gain_rejected(self):
        with pytest.raises(ValueError):
            integrator_plant(0.0)


class TestDesign:
    @pytest.mark.parametrize("gain", [0.05, 0.13, 2.79])
    def test_achieves_requested_poles(self, gain):
        gains = design_pid(gain, POLES)
        achieved = np.sort_complex(closed_loop(gain, gains).poles())
        np.testing.assert_allclose(achieved, np.sort_complex(POLES), atol=1e-8)

    def test_gains_scale_inversely_with_plant_gain(self):
        g1 = design_pid(0.1, POLES)
        g2 = design_pid(0.2, POLES)
        assert g2.kp == pytest.approx(g1.kp / 2)
        assert g2.ki == pytest.approx(g1.ki / 2)
        assert g2.kd == pytest.approx(g1.kd / 2)

    def test_default_design_all_positive_gains(self):
        gains = design_pid(0.13, POLES)
        assert gains.kp > 0 and gains.ki > 0 and gains.kd > 0

    def test_unstable_request_rejected(self):
        with pytest.raises(ValueError):
            design_pid(0.13, (1.0 + 0j, 0.2 + 0j, 0.3 + 0j))

    def test_unconjugated_poles_rejected(self):
        with pytest.raises(ValueError):
            design_pid(0.13, (0.1 + 0.2j, 0.3 + 0j, 0.4 + 0j))

    def test_wrong_pole_count_rejected(self):
        with pytest.raises(ValueError):
            design_pid(0.13, (0.1 + 0j, 0.2 + 0j))

    def test_zero_steady_state_error(self):
        """The integral term guarantees unit DC gain of the closed loop."""
        gains = design_pid(0.13, POLES)
        assert closed_loop(0.13, gains).dc_gain() == pytest.approx(1.0)

    def test_step_response_settles(self):
        gains = design_pid(0.13, POLES)
        response = closed_loop(0.13, gains).step_response(40)
        assert response[-1] == pytest.approx(1.0, abs=1e-6)


class TestPIDTransferFunction:
    def test_consistent_with_pid_module(self):
        from repro.control.pid import DiscretePID

        gains = PIDGains(0.4, 0.4, 0.3)
        a = pid_transfer_function(gains)
        b = DiscretePID(gains).transfer_function()
        np.testing.assert_allclose(a.num, b.num, atol=1e-12)
        np.testing.assert_allclose(a.den, b.den, atol=1e-12)


class TestStabilityLimit:
    def test_limit_above_one(self):
        gains = design_pid(0.13, POLES)
        limit = stability_gain_limit(0.13, gains)
        assert limit > 1.2

    def test_loop_unstable_just_beyond_limit(self):
        gains = design_pid(0.13, POLES)
        limit = stability_gain_limit(0.13, gains)
        if limit < 10.0:  # a finite limit was found
            assert not closed_loop(1.05 * limit * 0.13, gains).is_stable()
            assert closed_loop(0.95 * limit * 0.13, gains).is_stable()

    def test_limit_is_gain_relative(self):
        """Doubling the plant gain with matching redesign keeps g-limit."""
        g1 = stability_gain_limit(0.1, design_pid(0.1, POLES))
        g2 = stability_gain_limit(0.2, design_pid(0.2, POLES))
        assert g1 == pytest.approx(g2, rel=1e-2)

    def test_unstable_design_rejected(self):
        bad = PIDGains(kp=1000.0, ki=1000.0, kd=1000.0)
        with pytest.raises(ValueError):
            stability_gain_limit(0.13, bad)

    def test_bad_gmax_rejected(self):
        gains = design_pid(0.13, POLES)
        with pytest.raises(ValueError):
            stability_gain_limit(0.13, gains, g_max=0.5)
