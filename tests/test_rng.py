"""Deterministic RNG management."""

import numpy as np
import pytest

from repro.rng import SeedSequenceFactory, derive, role_seed


def test_same_role_same_stream():
    a = derive(42, "workload/core0").random(8)
    b = derive(42, "workload/core0").random(8)
    np.testing.assert_array_equal(a, b)


def test_different_roles_different_streams():
    a = derive(42, "workload/core0").random(8)
    b = derive(42, "workload/core1").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = derive(1, "x").random(8)
    b = derive(2, "x").random(8)
    assert not np.array_equal(a, b)


def test_role_seed_stable_value():
    # Pin the derivation so refactors cannot silently change every
    # experiment's random streams.
    assert role_seed(42, "calibration/white-noise") == role_seed(
        42, "calibration/white-noise"
    )
    assert 0 <= role_seed(42, "anything") < 2**63


def test_factory_namespacing():
    root = SeedSequenceFactory(7)
    child = root.child("sim1")
    direct = root.generator("sim1/workload").random(4)
    namespaced = child.generator("workload").random(4)
    np.testing.assert_array_equal(direct, namespaced)


def test_factory_rejects_negative_seed():
    with pytest.raises(ValueError):
        SeedSequenceFactory(-1)


def test_nested_children():
    root = SeedSequenceFactory(7)
    grandchild = root.child("a").child("b")
    np.testing.assert_array_equal(
        grandchild.generator("x").random(3),
        root.generator("a/b/x").random(3),
    )
