"""Response robustness metrics: overshoot, settling, steady-state error."""

import numpy as np
import pytest

from repro.control.analysis import (
    ResponseMetrics,
    response_metrics,
    step_response,
    worst_case_metrics,
)
from repro.control.pole_placement import closed_loop, design_pid

POLES = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)


class TestResponseMetrics:
    def test_perfect_tracking(self):
        m = response_metrics(np.full(20, 5.0), reference=5.0)
        assert m.max_overshoot == 0.0
        assert m.max_undershoot == 0.0
        assert m.settling_steps == 0
        assert m.steady_state_error == pytest.approx(0.0)

    def test_overshoot_measured_relative(self):
        y = np.array([0.0, 1.3, 1.0, 1.0, 1.0, 1.0])
        m = response_metrics(y, reference=1.0)
        assert m.max_overshoot == pytest.approx(0.3)
        assert m.max_undershoot == pytest.approx(1.0)  # the initial zero

    def test_settling_time_finds_last_excursion(self):
        y = np.concatenate([[0.0, 1.5, 0.9], np.ones(10)])
        m = response_metrics(y, reference=1.0, tolerance=0.05)
        assert m.settling_steps == 3

    def test_never_settles(self):
        y = np.tile([1.5, 0.5], 10)
        m = response_metrics(y, reference=1.0, tolerance=0.05)
        assert m.settling_steps is None
        assert not m.settled
        assert np.isnan(m.steady_state_error)

    def test_steady_state_error_from_tail(self):
        y = np.concatenate([[0.0], np.full(19, 1.01)])
        m = response_metrics(y, reference=1.0, tolerance=0.05)
        assert m.steady_state_error == pytest.approx(0.01, rel=1e-6)

    def test_negative_reference_supported(self):
        y = np.full(10, -2.0)
        m = response_metrics(y, reference=-2.0)
        assert m.settling_steps == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            response_metrics([], 1.0)
        with pytest.raises(ValueError):
            response_metrics([1.0], 0.0)
        with pytest.raises(ValueError):
            response_metrics([1.0], 1.0, tolerance=1.5)


class TestStepResponse:
    def test_designed_loop_metrics(self):
        """The default design settles within ~6 invocations with zero SSE."""
        loop = closed_loop(0.13, design_pid(0.13, POLES))
        y = step_response(loop, n_steps=40)
        m = response_metrics(y, reference=1.0, tolerance=0.05)
        assert m.settled
        assert m.settling_steps <= 8
        assert m.steady_state_error < 1e-3

    def test_amplitude_scales(self):
        loop = closed_loop(0.13, design_pid(0.13, POLES))
        y1 = step_response(loop, n_steps=10, amplitude=1.0)
        y2 = step_response(loop, n_steps=10, amplitude=2.5)
        np.testing.assert_allclose(y2, 2.5 * y1, atol=1e-12)


class TestWorstCase:
    def test_takes_maxima(self):
        a = np.concatenate([[1.2], np.ones(9)])   # 20% overshoot
        b = np.concatenate([[0.0, 1.05], np.ones(8)])  # settles at 2
        agg = worst_case_metrics([a, b], [1.0, 1.0], tolerance=0.03)
        assert agg.max_overshoot == pytest.approx(0.2)
        assert agg.settling_steps == 2

    def test_unsettled_segment_dominates(self):
        a = np.ones(10)
        b = np.tile([1.5, 0.5], 5)
        agg = worst_case_metrics([a, b], [1.0, 1.0], tolerance=0.03)
        assert agg.settling_steps is None

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            worst_case_metrics([np.ones(5)], [1.0, 2.0])
        with pytest.raises(ValueError):
            worst_case_metrics([], [])


def test_metrics_dataclass_flags():
    settled = ResponseMetrics(0.0, 0.0, 3, 0.0)
    assert settled.settled
    unsettled = ResponseMetrics(0.5, 0.5, None, float("nan"))
    assert not unsettled.settled
