"""SARIF 2.1.0 conformance tests for lintkit's ``--format sarif`` output.

The full SARIF JSON schema is enormous; what GitHub code scanning (and
any conforming consumer) actually requires is the small core asserted
here: the log-file required properties (``version``, ``runs``), each
run's required ``tool.driver.name``, rule metadata shape, and each
result's ``ruleId`` / ``message.text`` / physical location with a
1-based region.  The checks run against single-analysis and
multi-analysis invocations over the seeded-mutation fixtures, so every
rule family (syntactic, DIM, EFF, E000) is exercised through the same
serializer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lintkit import lint_paths
from repro.lintkit.cli import main
from repro.lintkit.dimensions import DIM_RULES
from repro.lintkit.effects import EFF_RULES
from repro.lintkit.engine import ALL_ANALYSES, PARSE_ERROR_ID
from repro.lintkit.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_payload

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: SARIF 2.1.0 required properties, per object (the spec's "shall"s).
LOG_REQUIRED = ("version", "runs")
RUN_REQUIRED = ("tool",)
DRIVER_REQUIRED = ("name",)
RESULT_REQUIRED = ("message",)


def payload_for(paths, analyses=ALL_ANALYSES):
    report = lint_paths(paths, analyses=analyses)
    return sarif_payload(report), report


def validate_sarif(payload: dict) -> None:
    """Assert the required-property set of SARIF 2.1.0 holds."""
    for key in LOG_REQUIRED:
        assert key in payload, f"log missing required property {key!r}"
    assert payload["version"] == SARIF_VERSION
    assert payload["$schema"] == SARIF_SCHEMA
    assert isinstance(payload["runs"], list) and payload["runs"]
    for run in payload["runs"]:
        for key in RUN_REQUIRED:
            assert key in run, f"run missing required property {key!r}"
        driver = run["tool"]["driver"]
        for key in DRIVER_REQUIRED:
            assert key in driver, f"driver missing required {key!r}"
        rule_ids = set()
        for rule in driver.get("rules", ()):
            assert "id" in rule, "reportingDescriptor missing required 'id'"
            assert rule["shortDescription"]["text"]
            rule_ids.add(rule["id"])
        for result in run.get("results", ()):
            for key in RESULT_REQUIRED:
                assert key in result, f"result missing required {key!r}"
            assert result["message"]["text"]
            # ruleId is optional per spec but required by GitHub — and
            # must then resolve against the driver's catalogue.
            assert result["ruleId"] in rule_ids
            for location in result["locations"]:
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                region = physical["region"]
                # regions are 1-based; 0 would silently shift annotations
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1


class TestCatalogue:
    def test_driver_catalogue_covers_every_family(self):
        payload, _ = payload_for([FIXTURES / "dim_mutation.py"])
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert len(ids) == len(set(ids)), "duplicate rule ids in catalogue"
        for rule_id, _, _ in DIM_RULES + EFF_RULES:
            assert rule_id in ids
        assert PARSE_ERROR_ID in ids
        assert any(i.startswith("DET") for i in ids)

    def test_catalogue_descriptions_are_nonempty(self):
        payload, _ = payload_for([FIXTURES / "dim_mutation.py"])
        for rule in payload["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["fullDescription"]["text"].strip()


class TestSingleAnalysis:
    @pytest.mark.parametrize("analysis", ALL_ANALYSES)
    def test_each_analysis_payload_validates(self, analysis):
        paths = (
            [FIXTURES / "effects_mutation"]
            if analysis == "effects"
            else [FIXTURES / "dim_mutation.py"]
        )
        payload, report = payload_for(paths, analyses=(analysis,))
        validate_sarif(payload)
        results = payload["runs"][0]["results"]
        assert len(results) == len(report.findings)

    def test_effects_results_point_at_marker_lines(self):
        payload, report = payload_for(
            [FIXTURES / "effects_mutation"], analyses=("effects",)
        )
        validate_sarif(payload)
        regions = {
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
                r["locations"][0]["physicalLocation"]["region"]["startLine"],
                r["ruleId"],
            )
            for r in payload["runs"][0]["results"]
        }
        assert regions == {(f.path, f.line, f.rule_id) for f in report.findings}
        assert any(rule_id == "EFF002" for _, _, rule_id in regions)


class TestMultiAnalysis:
    def test_all_analyses_over_both_fixtures_validates(self):
        # One invocation, every pass: syntactic DET, DIM and EFF results
        # must coexist in one run and all resolve against the catalogue.
        payload, report = payload_for(
            [FIXTURES / "dim_mutation.py", FIXTURES / "effects_mutation"]
        )
        validate_sarif(payload)
        families = {r["ruleId"][:3] for r in payload["runs"][0]["results"]}
        assert {"DIM", "EFF", "DET"} <= families
        assert len(payload["runs"][0]["results"]) == len(report.findings)

    def test_parse_error_result_validates(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        payload, _ = payload_for([bad])
        validate_sarif(payload)
        assert [r["ruleId"] for r in payload["runs"][0]["results"]] == [
            PARSE_ERROR_ID
        ]

    def test_clean_tree_yields_empty_results_not_missing(self):
        payload, _ = payload_for([REPO_ROOT / "src" / "repro" / "units.py"])
        validate_sarif(payload)
        assert payload["runs"][0]["results"] == []


class TestCliRoundTrip:
    def test_cli_sarif_output_is_valid_json_and_conformant(self, tmp_path):
        out = tmp_path / "report.sarif"
        code = main(
            [
                str(FIXTURES / "effects_mutation"),
                "--analysis",
                "effects",
                "--no-baseline",
                "--format",
                "sarif",
                "--output",
                str(out),
            ]
        )
        assert code == 1  # findings present
        payload = json.loads(out.read_text())
        validate_sarif(payload)
        assert payload["runs"][0]["results"]
