"""Process-variation substrate."""

import numpy as np
import pytest

from repro.thermal.floorplan import grid_floorplan
from repro.variation.leakage_variation import (
    PAPER_ISLAND_MULTIPLIERS,
    island_multipliers_to_cores,
    uniform_multipliers,
)
from repro.variation.process import sample_variation_map


class TestLeakageVariation:
    def test_paper_multipliers(self):
        assert PAPER_ISLAND_MULTIPLIERS == (1.2, 1.5, 2.0, 1.0)

    def test_uniform(self):
        np.testing.assert_allclose(uniform_multipliers(8), np.ones(8))
        with pytest.raises(ValueError):
            uniform_multipliers(0)

    def test_expansion_to_cores(self):
        cores = island_multipliers_to_cores(PAPER_ISLAND_MULTIPLIERS, 2)
        np.testing.assert_allclose(
            cores, [1.2, 1.2, 1.5, 1.5, 2.0, 2.0, 1.0, 1.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            island_multipliers_to_cores([], 2)
        with pytest.raises(ValueError):
            island_multipliers_to_cores([1.0, -1.0], 2)
        with pytest.raises(ValueError):
            island_multipliers_to_cores([1.0], 0)


class TestVariationMap:
    def test_mean_near_one(self):
        fp = grid_floorplan(32)
        vmap = sample_variation_map(fp, np.random.default_rng(0), sigma=0.25)
        assert vmap.multipliers.shape == (32,)
        assert np.exp(np.log(vmap.multipliers).mean()) == pytest.approx(1.0)
        assert np.all(vmap.multipliers > 0)

    def test_spatial_correlation(self):
        """Neighbouring cores correlate more than distant ones."""
        fp = grid_floorplan(32)
        rng = np.random.default_rng(1)
        neighbor_diffs, distant_diffs = [], []
        for _ in range(40):
            field = np.log(
                sample_variation_map(fp, rng, sigma=0.3, correlation_length=3.0)
                .multipliers
            )
            neighbor_diffs.append(np.abs(field[0] - field[1]))
            distant_diffs.append(np.abs(field[0] - field[15]))
        assert np.mean(neighbor_diffs) < np.mean(distant_diffs)

    def test_island_means(self):
        fp = grid_floorplan(8)
        vmap = sample_variation_map(fp, np.random.default_rng(2))
        island_of_core = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        means = vmap.island_means(island_of_core)
        assert means.shape == (4,)
        assert means[0] == pytest.approx(vmap.multipliers[:2].mean())

    def test_zero_sigma_degenerates_to_uniform(self):
        fp = grid_floorplan(8)
        vmap = sample_variation_map(fp, np.random.default_rng(3), sigma=0.0)
        np.testing.assert_allclose(vmap.multipliers, 1.0, atol=1e-4)

    def test_validation(self):
        fp = grid_floorplan(4)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_variation_map(fp, rng, sigma=-0.1)
        with pytest.raises(ValueError):
            sample_variation_map(fp, rng, correlation_length=0.0)
