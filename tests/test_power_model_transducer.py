"""Composite core power model and the utilization transducer."""

import numpy as np
import pytest

from repro.config import CoreConfig
from repro.power.model import CorePowerModel
from repro.power.transducer import LinearTransducer, fit_transducer


class TestCorePowerModel:
    def test_total_is_dynamic_plus_static(self):
        m = CorePowerModel(nominal_voltage=1.484)
        b = m.breakdown(1.3, 1.6, busy=0.8, alpha=0.9, temperature_c=65.0)
        total = m.power(1.3, 1.6, busy=0.8, alpha=0.9, temperature_c=65.0)
        assert b.total_w == pytest.approx(total)
        assert b.dynamic_w > 0 and b.static_w > 0

    def test_max_power_is_upper_bound(self):
        m = CorePowerModel(nominal_voltage=1.484)
        peak = m.max_power(1.484, 2.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = m.power(
                1.484,
                2.0,
                busy=rng.random(),
                alpha=rng.random() * 0.99 + 0.01,
                temperature_c=m.leakage.nominal_temperature_c,
            )
            assert p <= peak + 1e-9

    def test_respects_core_config(self):
        big = CorePowerModel(CoreConfig(effective_capacitance=3.0))
        small = CorePowerModel(CoreConfig(effective_capacitance=1.0))
        assert big.power(1.2, 1.4, 1.0) > small.power(1.2, 1.4, 1.0)

    def test_structure_breakdown_exposed(self):
        m = CorePowerModel()
        parts = m.structure_breakdown(1.3, 1.6, busy=0.8)
        assert "clock_tree" in parts
        assert all(v >= 0 for v in parts.values())


class TestLinearTransducer:
    def test_callable_and_invertible(self):
        t = LinearTransducer(k0=0.3, k1=-0.05)
        assert t(0.5) == pytest.approx(0.1)
        assert t.invert(t(0.42)) == pytest.approx(0.42)

    def test_vectorized(self):
        t = LinearTransducer(k0=2.0, k1=1.0)
        np.testing.assert_allclose(t(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_degenerate_inversion(self):
        with pytest.raises(ZeroDivisionError):
            LinearTransducer(k0=0.0, k1=1.0).invert(0.5)


class TestFitTransducer:
    def test_exact_fit(self):
        u = np.linspace(0.1, 1.0, 30)
        p = 0.25 * u + 0.02
        t = fit_transducer(u, p)
        assert t.k0 == pytest.approx(0.25)
        assert t.k1 == pytest.approx(0.02)
        assert t.r_squared == pytest.approx(1.0)
        assert t.n_samples == 30

    def test_noisy_fit_r_squared(self):
        rng = np.random.default_rng(5)
        u = rng.random(500)
        p = 0.3 * u + 0.01 + rng.normal(scale=0.005, size=500)
        t = fit_transducer(u, p)
        assert t.k0 == pytest.approx(0.3, abs=0.01)
        assert 0.9 < t.r_squared <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_transducer([0.5], [0.1])
        with pytest.raises(ValueError):
            fit_transducer([0.5, 0.5], [0.1, 0.2])  # constant utilization
        with pytest.raises(ValueError):
            fit_transducer([0.1, 0.2], [0.1])


class TestModelTransducerConsistency:
    def test_power_linear_in_activity_at_fixed_point(self):
        """At a fixed (V, f, T), core power is exactly affine in the
        activity product — the physical basis of the Figure 6 fits."""
        m = CorePowerModel(nominal_voltage=1.484)
        busy = np.linspace(0.1, 1.0, 10)
        powers = np.array(
            [m.power(1.3, 1.6, b, alpha=1.0, temperature_c=60.0) for b in busy]
        )
        fit = np.polyfit(busy, powers, deg=1)
        reconstructed = np.polyval(fit, busy)
        np.testing.assert_allclose(reconstructed, powers, rtol=1e-10)
