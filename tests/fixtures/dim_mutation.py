"""Seeded unit-mistake fixture for the dimensional-analysis tests.

Every mistake below is marked with an ``# expect: DIMxxx`` comment on the
offending line; ``tests/test_lintkit_dimensions.py`` lints this file with
the ``dimensions`` analysis and asserts the findings match the markers
exactly — no more, no fewer.  This is the proof that the checker catches
real mistakes, not just that the clean tree stays silent.

The module is *not* part of the library (it lives under ``tests/``, which
the CI lint run does not cover), so the seeded bugs never show up in the
repository's own lint report.
"""

from __future__ import annotations

from repro.unit_types import GigaHz, Milliseconds, PowerFraction, Seconds, Watts

__all__ = ["misuse_budget", "schedule", "set_budget", "wait_ms"]


def wait_ms(timeout: Milliseconds) -> Milliseconds:
    """A sink that expects milliseconds (think: a hardware timer API)."""
    return timeout


def set_budget(budget: PowerFraction) -> PowerFraction:
    """A sink that expects a fraction of max chip power."""
    return budget


def schedule(interval_s: Seconds, clock_ghz: GigaHz, draw_w: Watts) -> float:
    nonsense = draw_w + clock_ghz  # expect: DIM001
    wait_ms(interval_s)  # expect: DIM002
    return float(nonsense)


def misuse_budget(power_w: Watts, interval_s: Seconds) -> float:
    set_budget(power_w)  # expect: DIM003
    return interval_s * 1000.0  # expect: DIM005
