"""Seeded effect-violation fixture for the effects-analysis tests.

A two-module mirror of the real runner/simulator shape: ``runner.py``
defines the worker entry points (``_execute``/``_supervised_worker``)
and ``simulator.py`` a ``Simulation`` class, so the effect analysis'
suffix-matched roots bind to this package exactly as they bind to the
real tree.  Every planted violation carries an ``# expect: EFFxxx``
marker; ``tests/test_lintkit_effects.py`` asserts the findings match
the markers exactly — no more, no fewer.

Not part of the library (CI's lint run does not cover ``tests/``), so
the seeded bugs never appear in the repository's own lint report.
"""

__all__: list[str] = []
