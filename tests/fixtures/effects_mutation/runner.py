"""Mirror worker entry points with planted violations (see __init__)."""

from __future__ import annotations

from .simulator import Simulation, retune

__all__ = ["run_many"]

#: Module-level result store mutated inside the worker — invisible to
#: sibling processes under fork-based parallelism.
_RESULTS = {}


def _execute(request: dict) -> float:
    retune(request["gain"])
    sim = Simulation(request["seed"])
    out = sim.run()
    _RESULTS[request["key"]] = out  # expect: EFF001
    return out


def _supervised_worker(queue) -> float:
    return _execute(queue.get())


def run_many(requests: list[dict]) -> list[float]:
    return [_execute(request) for request in requests]
