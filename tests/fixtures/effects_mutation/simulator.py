"""Mirror ``Simulation`` with planted effect violations (see __init__)."""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = ["Simulation", "helper_total", "make_noise", "retune"]

#: Module-level mutable tuning table: written by :func:`retune`, read by
#: ``Simulation.run`` — the classic cache-unsound hidden input.
_TUNING = {"gain": 1.0}


class Simulation:
    """Cache-keyed entry points: ``__init__`` + ``run``."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.scale = float(os.getenv("REPRO_SCALE", "1.0"))  # expect: EFF002

    def run(self) -> float:
        started = time.perf_counter()  # expect: EFF003
        gain = _TUNING["gain"]  # expect: EFF002
        return helper_total() * gain * self.scale + 0.0 * started


def retune(gain: float) -> None:
    """Mutates shared module state; the worker path reaches this."""
    _TUNING["gain"] = gain  # expect: EFF001


def helper_total() -> float:
    """Order-sensitive accumulation, three calls deep from the roots."""
    values = {1.0, 2.5, 0.25}
    total = 0.0
    for value in values:  # expect: EFF005
        total += value
    return total


def make_noise(seed: int, n: int) -> list[float]:
    """One generator advanced by a fresh consumer every iteration."""
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(n):
        samples.append(_sample(rng))  # expect: EFF004
    return samples


def _sample(rng: np.random.Generator) -> float:
    return float(rng.normal())
