"""Integration: every experiment runs (quick mode) and reproduces the
paper's qualitative claims.

Each test asserts the *shape* the paper reports (who wins, rough
magnitudes, invariants), not absolute numbers — EXPERIMENTS.md records
the quantitative comparison.
"""

import importlib

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS

pytestmark = pytest.mark.slow


def run_experiment(name: str, **kwargs):
    module = importlib.import_module(f"repro.experiments.{name}")
    return module.run(quick=True, **kwargs)


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_runs_and_renders(name):
    result = run_experiment(name)
    text = result.render()
    assert result.experiment
    assert len(text) > 50
    assert result.rows or result.series


class TestControllerDesign:
    def test_fig04_stability_facts(self):
        result = run_experiment("fig04_controller_design")
        rows = dict((r[0], r[1]) for r in result.rows)
        assert rows["stability gain limit g (paper: ~2.1)"] > 1.3
        # Quick mode truncates the step response; the error is still tiny.
        assert rows["analytic steady-state error"] == pytest.approx(0.0, abs=1e-2)


class TestModelAndTransducer:
    def test_fig05_prediction_error_within_paper_bound(self):
        result = run_experiment("fig05_model_validation")
        mean_row = [r for r in result.rows if r[0] == "mean"][0]
        assert mean_row[1] < 0.10  # paper: well within 10%

    def test_fig06_r_squared_near_paper(self):
        result = run_experiment("fig06_power_utilization")
        avg = [r for r in result.rows if r[0] == "average"][0]
        assert avg[3] > 0.90  # paper: 0.96


class TestTracking:
    def test_fig07_provisions_sum_to_budget(self):
        result = run_experiment("fig07_provisioning")
        total = result.series["sum of provisions"]
        np.testing.assert_allclose(total, total[0], atol=1e-9)

    def test_fig08_islands_track_targets(self):
        result = run_experiment("fig08_island_tracking")
        for row in result.rows:
            assert row[1] < 0.15  # mean relative tracking error

    def test_fig09_settling_and_overshoot(self):
        result = run_experiment("fig09_pic_tracking")
        rows = {r[0]: r for r in result.rows}
        overshoot = rows["max overshoot (fraction of target)"]
        assert overshoot[1] < 0.05  # median overshoot small

    def test_fig10_chip_power_near_budget(self):
        result = run_experiment("fig10_chip_tracking")
        rows = dict((r[0], r[1]) for r in result.rows)
        assert rows["mean chip power / budget"] == pytest.approx(1.0, abs=0.06)


class TestComparisons:
    def test_fig11_cpm_tracks_maxbips_undershoots(self):
        result = run_experiment("fig11_budget_curves")
        for budget, cpm_mean, cpm_max, mb_mean, mb_max in result.rows:
            assert mb_max <= budget + 1e-6  # MaxBIPS never overshoots
            assert mb_mean < cpm_mean + 1e-9  # and sits below CPM

    def test_fig12_degradation_monotone_in_budget(self):
        result = run_experiment("fig12_perf_degradation")
        degradations = [row[2] for row in result.rows]
        budgets = [row[0] for row in result.rows]
        order = np.argsort(budgets)
        ordered = np.asarray(degradations)[order]
        # Tighter budget, (weakly) more degradation.
        assert np.all(np.diff(ordered) <= 0.01)

    def test_fig13_cpm_beats_maxbips_everywhere(self):
        result = run_experiment("fig13_island_size")
        for _cpi, cpm, maxbips in result.rows:
            assert cpm < maxbips

    def test_fig14_invisible_at_full_budget(self):
        result = run_experiment("fig14_perf_time")
        rows = dict((r[0], r[1]) for r in result.rows)
        assert rows["average degradation"] < 0.02

    def test_fig15_cpm_beats_maxbips_at_scale(self):
        result = run_experiment("fig15_scalability")
        for _cores, _budget, cpm, maxbips in result.rows:
            assert cpm < maxbips
            assert cpm < 0.10  # paper: CPM stays near 4%

    def test_fig16_homogeneous_mix_degrades_less(self):
        result = run_experiment("fig16_mix_sensitivity")
        for _budget, mix1, mix2 in result.rows:
            assert mix2 <= mix1 + 0.005

    def test_fig17_fine_cadence_keeps_budget(self):
        result = run_experiment("fig17_interval_sensitivity")
        by_label = {}
        for _cpi, label, _deg, _track, above, _worst in result.rows:
            by_label.setdefault(label, []).append(above)
        fine = np.mean(by_label["(5ms, 0.5ms)"])
        coarse = np.mean(by_label["(5ms, 5ms)"])
        assert fine < coarse


class TestPolicies:
    def test_fig18_thermal_policy_never_violates(self):
        # The quick horizon is only 6 GPM windows; use a seed whose
        # provisioning drift crosses the share caps within that window
        # (the full-horizon run violates at any seed we checked).
        result = run_experiment("fig18_thermal", seed=1)
        rows = {r[0]: r for r in result.rows}
        violations = rows["constraint-violating interval fraction (any island)"]
        perf_violation, thermal_violation = violations[1], violations[2]
        assert thermal_violation == 0.0
        assert perf_violation > 0.0
        degradation = rows["perf degradation vs no-management"]
        assert degradation[2] >= degradation[1] - 0.005  # thermal costs more

    def test_fig19_leaky_islands_gain_efficiency(self):
        result = run_experiment("fig19_variation")
        by_island = {r[0]: r for r in result.rows if r[0].startswith("island")}
        # The leaky islands (1-3) improve power/throughput; the clean
        # island does not need to.
        leaky_gains = [by_island[f"island {i}"][3] for i in (1, 2, 3)]
        assert max(leaky_gains) > 0.05
        assert by_island["island 4"][3] < max(leaky_gains)


class TestTables:
    def test_tables_cover_all_three(self):
        result = run_experiment("tables")
        tables = {row[0].split(" ")[0] for row in result.rows}
        assert {"I", "II", "III"} <= {t.split("(")[0].strip() for t in tables}
