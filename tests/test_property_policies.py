"""Property-based tests on provisioning policies and the manager."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmpsim.telemetry import WindowStats
from repro.gpm.manager import GlobalPowerManager
from repro.gpm.performance_aware import PerformanceAwarePolicy
from repro.gpm.policy import GPMContext, UniformPolicy, clamp_and_redistribute
from repro.gpm.thermal_aware import ThermalAwarePolicy

N = 4


def make_window(power, bips):
    power = np.asarray(power, dtype=float)
    bips = np.asarray(bips, dtype=float)
    return WindowStats(
        island_power_frac=power,
        island_bips=bips,
        island_utilization=np.full(N, 0.7),
        island_setpoints=power.copy(),
        island_energy_j=power * 85.0 * 5e-3,
        island_instructions=bips * 1e9 * 5e-3,
        duration_s=5e-3,
    )


def make_context(windows, budget=0.7):
    return GPMContext(
        budget=budget,
        n_islands=N,
        windows=windows,
        island_min=np.full(N, 0.02),
        island_max=np.full(N, 0.25),
        adjacent_pairs=frozenset({(0, 1), (2, 3)}),
        island_leakage=np.ones(N),
    )


island_values = st.lists(
    st.floats(0.03, 0.24), min_size=N, max_size=N
)
bips_values = st.lists(st.floats(0.1, 5.0), min_size=N, max_size=N)


class TestClampRedistributeProperties:
    @given(
        shares=st.lists(st.floats(0.0, 1.0), min_size=N, max_size=N),
        total=st.floats(0.1, 0.9),
    )
    @settings(max_examples=80, deadline=None)
    def test_result_within_bounds_and_total(self, shares, total):
        lo = np.full(N, 0.02)
        hi = np.full(N, 0.25)
        out = clamp_and_redistribute(np.asarray(shares), total, lo, hi)
        assert np.all(out >= lo - 1e-9)
        assert np.all(out <= hi + 1e-9)
        feasible = lo.sum() <= total <= hi.sum()
        if feasible:
            assert out.sum() == pytest.approx(total, abs=1e-6)


class TestPerformanceAwareProperties:
    @given(
        p1=island_values, b1=bips_values, p2=island_values, b2=bips_values,
        mode=st.sampled_from(["eq6", "proportional"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_conservation(self, p1, b1, p2, b2, mode):
        """Eq. 6's invariant: provisions always sum to the budget."""
        policy = PerformanceAwarePolicy(mode=mode)
        ctx = make_context([make_window(p1, b1), make_window(p2, b2)])
        out = policy.provision(ctx)
        assert out.sum() == pytest.approx(ctx.budget, rel=1e-9)
        assert np.all(out > 0)

    @given(
        p1=island_values, b1=bips_values, p2=island_values, b2=bips_values,
    )
    @settings(max_examples=40, deadline=None)
    def test_phi_bounds_limit_ratio(self, p1, b1, p2, b2):
        policy = PerformanceAwarePolicy(phi_bounds=(0.5, 2.0), smoothing=1.0,
                                        mode="eq6")
        ctx = make_context([make_window(p1, b1), make_window(p2, b2)])
        out = policy.provision(ctx)
        # With phi in [0.5, 2], no island can get more than 4x another.
        assert out.max() / out.min() <= 4.0 + 1e-9


class TestManagerProperties:
    @given(
        raw=st.lists(st.floats(0.0, 0.5), min_size=N, max_size=N),
        budget=st.floats(0.2, 0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_always_feasible(self, raw, budget):
        class Fixed:
            name = "fixed"

            def provision(self, ctx):
                return np.asarray(raw)

        ctx = make_context([], budget=budget)
        out = GlobalPowerManager(Fixed()).provision(ctx)
        assert out.sum() <= budget + 1e-6
        assert np.all(out >= ctx.island_min - 1e-9)
        assert np.all(out <= ctx.island_max + 1e-9)


class TestThermalAwareProperties:
    @given(
        request=st.lists(st.floats(0.05, 0.30), min_size=N, max_size=N),
        rounds=st.integers(3, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaks_never_exceed_limits(self, request, rounds):
        """However greedy the base policy, an over-cap streak never runs
        longer than the configured limit."""

        class Fixed:
            name = "fixed"

            def provision(self, ctx):
                return np.asarray(request)

        policy = ThermalAwarePolicy(
            base=Fixed(),
            pair_share_cap=0.45,
            pair_consecutive_limit=2,
            single_share_cap=0.35,
            single_consecutive_limit=2,
        )
        ctx = make_context([])
        pair_cap = 0.45 * ctx.budget
        single_cap = 0.35 * ctx.budget
        pair_streak = {(0, 1): 0, (2, 3): 0}
        single_streak = np.zeros(N, dtype=int)
        for _ in range(rounds):
            out = policy.provision(ctx)
            assert out.sum() <= ctx.budget + 1e-6
            for pair in pair_streak:
                a, b = pair
                if out[a] + out[b] > pair_cap + 1e-9:
                    pair_streak[pair] += 1
                else:
                    pair_streak[pair] = 0
                assert pair_streak[pair] <= 2
            over = out > single_cap + 1e-9
            single_streak = np.where(over, single_streak + 1, 0)
            assert single_streak.max() <= 2


class TestUniformPolicyProperties:
    @given(budget=st.floats(0.1, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_exact_equal_split(self, budget):
        ctx = make_context([], budget=budget)
        out = UniformPolicy().provision(ctx)
        np.testing.assert_allclose(out, budget / N)
