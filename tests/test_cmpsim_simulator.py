"""Simulation driver: cadence, telemetry, window accounting, schemes."""

import numpy as np
import pytest

from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import PowerScheme, Simulation
from repro.config import DEFAULT_CONFIG
from repro.workloads.mixes import MIX2


class RecordingScheme:
    """Scheme that records its callback cadence."""

    name = "recording"

    def __init__(self):
        self.gpm_ticks: list[int] = []
        self.pic_ticks: list[int] = []

    def bind(self, sim):
        self.bound = sim

    def on_gpm(self, sim):
        self.gpm_ticks.append(sim.tick)

    def on_pic(self, sim):
        self.pic_ticks.append(sim.tick)


class TestCadence:
    def test_gpm_every_tenth_pic(self):
        scheme = RecordingScheme()
        sim = Simulation(DEFAULT_CONFIG, scheme, budget_fraction=0.8)
        sim.run(3)
        assert scheme.gpm_ticks == [0, 10, 20]
        assert scheme.pic_ticks == list(range(30))

    def test_scheme_protocol(self):
        assert isinstance(RecordingScheme(), PowerScheme)
        assert isinstance(NoManagementScheme(), PowerScheme)

    def test_run_requires_positive_horizon(self):
        sim = Simulation(DEFAULT_CONFIG, RecordingScheme())
        with pytest.raises(ValueError):
            sim.run(0)


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=1).run(3)
        b = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=1).run(3)
        np.testing.assert_array_equal(
            a.telemetry["chip_power_frac"], b.telemetry["chip_power_frac"]
        )
        assert a.total_instructions == b.total_instructions

    def test_different_seed_different_run(self):
        a = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=1).run(3)
        b = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=2).run(3)
        assert not np.array_equal(
            a.telemetry["chip_power_frac"], b.telemetry["chip_power_frac"]
        )

    def test_workloads_independent_of_scheme(self):
        """Same seed gives identical workload streams under any scheme —
        the property that makes paired performance comparisons exact."""

        class HalfSpeed(RecordingScheme):
            def bind(self, sim):
                for i in range(sim.config.n_islands):
                    sim.chip.set_island_frequency(i, 1.0)

        a = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=3)
        ra = a.run(2)
        b = Simulation(DEFAULT_CONFIG, HalfSpeed(), seed=3)
        rb = b.run(2)
        # Phases differ in effect but derive from the same streams: the
        # per-core utilization differs, yet both runs drew identical
        # workload randomness - check via retirement ratio ≈ IPS ratio.
        assert rb.total_instructions < ra.total_instructions


class TestWindows:
    def test_window_count_and_duration(self):
        sim = Simulation(DEFAULT_CONFIG, NoManagementScheme())
        result = sim.run(4)
        windows = result.telemetry.windows
        assert len(windows) == 4
        for w in windows:
            assert w.duration_s == pytest.approx(5e-3)

    def test_window_energy_consistent_with_power(self):
        sim = Simulation(DEFAULT_CONFIG, NoManagementScheme())
        result = sim.run(2)
        w = result.telemetry.windows[0]
        mean_power_w = w.island_energy_j / w.duration_s
        chip = sim.chip
        np.testing.assert_allclose(
            mean_power_w / chip.max_power_w, w.island_power_frac, rtol=1e-9
        )

    def test_window_instructions_sum_to_total(self):
        sim = Simulation(DEFAULT_CONFIG, NoManagementScheme())
        result = sim.run(3)
        total = sum(w.island_instructions.sum() for w in result.telemetry.windows)
        assert total == pytest.approx(result.total_instructions, rel=1e-9)


class TestTelemetry:
    def test_series_shapes(self):
        result = Simulation(DEFAULT_CONFIG, NoManagementScheme()).run(2)
        t = result.telemetry
        assert t["chip_power_frac"].shape == (20,)
        assert t["island_power_frac"].shape == (20, 4)
        assert t["core_temperature_c"].shape == (20, 8)
        assert t.gpm_tick_indices().tolist() == [0, 10]

    def test_unknown_series_rejected(self):
        result = Simulation(DEFAULT_CONFIG, NoManagementScheme()).run(1)
        with pytest.raises(KeyError):
            result.telemetry["nonexistent"]

    def test_mix_shape_validated(self):
        cfg = DEFAULT_CONFIG.with_islands(16, 4)
        # MIX2 has 8 cores; mix_for_config regroups, so force mismatch via
        # a mix that cannot be regrouped to the config... regrouping always
        # succeeds, so instead check the mix actually used matches config.
        sim = Simulation(cfg, NoManagementScheme(), mix=MIX2)
        assert sim.mix.n_cores == 16
        assert sim.mix.n_islands == 4

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Simulation(DEFAULT_CONFIG, NoManagementScheme(), budget_fraction=0.0)
        with pytest.raises(ValueError):
            Simulation(DEFAULT_CONFIG, NoManagementScheme(), budget_fraction=1.5)

    def test_result_summaries(self):
        result = Simulation(DEFAULT_CONFIG, NoManagementScheme()).run(2)
        assert 0.5 < result.mean_chip_power_frac < 1.0
        assert result.mean_chip_bips > 0
        assert result.duration_s == pytest.approx(10e-3)
        assert result.scheme_name == "no-management"
