"""Randomized end-to-end invariants of the full CPM stack (hypothesis).

These are the contract a downstream user relies on regardless of budget,
seed or platform shape: the managed chip never runs away above its
budget, telemetry stays physical, and the run is reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme

pytestmark = pytest.mark.slow


class TestManagedRunInvariants:
    @given(
        budget=st.floats(0.7, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_budget_never_wildly_exceeded(self, budget, seed):
        sim = Simulation(
            DEFAULT_CONFIG, CPMScheme(), budget_fraction=budget, seed=seed
        )
        result = sim.run(6)
        chip = result.telemetry["chip_power_frac"]
        # After the start-up transient (two GPM windows), never more than
        # 10% above budget; the physical ceiling holds always.
        assert chip[20:].max() <= min(budget * 1.10, 1.0) + 1e-9
        assert chip.max() <= 1.0 + 1e-9
        assert np.isfinite(chip).all()

    @given(
        budget=st.floats(0.72, 0.95),
        seed=st.integers(0, 2**16),
        shape=st.sampled_from([(8, 4), (8, 8), (16, 4)]),
    )
    @settings(max_examples=8, deadline=None)
    def test_telemetry_physical_across_shapes(self, budget, seed, shape):
        config = DEFAULT_CONFIG.with_islands(*shape)
        sim = Simulation(
            config, CPMScheme(), budget_fraction=budget, seed=seed
        )
        result = sim.run(4)
        t = result.telemetry
        freqs = t["island_frequency_ghz"]
        assert freqs.min() >= 0.6 - 1e-9
        assert freqs.max() <= 2.0 + 1e-9
        assert (t["island_power_frac"] > 0).all()
        assert (t["core_temperature_c"] > config.thermal.ambient_c - 1).all()
        ticks = t.gpm_tick_indices()
        setpoints = t["island_setpoint_frac"][ticks]
        distributable = budget - config.uncore_fraction
        assert (setpoints.sum(axis=1) <= distributable + 1e-6).all()

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=6, deadline=None)
    def test_bitwise_reproducibility(self, seed):
        def run():
            sim = Simulation(
                DEFAULT_CONFIG, CPMScheme(), budget_fraction=0.8, seed=seed
            )
            return sim.run(3)

        a, b = run(), run()
        np.testing.assert_array_equal(
            a.telemetry["chip_power_frac"], b.telemetry["chip_power_frac"]
        )
        assert a.total_instructions == b.total_instructions
