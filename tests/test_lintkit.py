"""Tests for ``repro.lintkit`` — the AST-based invariant checker.

Each rule is exercised with inline fixture snippets, positive (the rule
must fire) and negative (clean or exempt code must stay silent).  The
engine-level behaviours — inline suppressions, the movement-tolerant
baseline, parse-error reporting — and the CLI's exit codes / JSON output
are covered at the bottom.  The final test lints the actual repository
tree, which is the acceptance criterion for the whole subsystem.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lintkit import Baseline, Finding, all_rules, lint_paths, lint_source
from repro.lintkit.cli import main
from repro.lintkit.engine import PARSE_ERROR_ID
from repro.lintkit.rules.api_rules import DeclaredAllRule, StaleAllRule
from repro.lintkit.rules.config_rules import FrozenConfigRule, MutableDefaultRule
from repro.lintkit.rules.control_rules import SilentExceptRule, UnboundedPIDRule
from repro.lintkit.rules.determinism import (
    RandomModuleImportRule,
    RngConstructionRule,
    WallClockRule,
)
from repro.lintkit.rules.robustness_rules import SwallowedExceptionRule
from repro.lintkit.rules.units_rules import MagicUnitLiteralRule
from repro.lintkit.suppress import parse_comment

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_rule(rule, source: str, path: str = "mod.py") -> list[Finding]:
    """Lint a dedented snippet with exactly one rule."""
    return lint_source(textwrap.dedent(source), path=path, rules=[rule])


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# DET001 — numpy.random outside rng.py
# ---------------------------------------------------------------------------


class TestRngConstructionRule:
    def test_default_rng_via_alias_fires(self):
        findings = run_rule(
            RngConstructionRule(),
            """
            import numpy as np

            gen = np.random.default_rng(0)
            """,
        )
        assert rule_ids(findings) == ["DET001"]
        assert "repro.rng" in findings[0].message

    def test_legacy_global_seed_fires(self):
        findings = run_rule(
            RngConstructionRule(),
            """
            import numpy

            numpy.random.seed(1234)
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_from_import_alias_resolved(self):
        findings = run_rule(
            RngConstructionRule(),
            """
            from numpy import random as nprand

            gen = nprand.default_rng(7)
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_rng_module_is_exempt(self):
        findings = run_rule(
            RngConstructionRule(),
            """
            import numpy as np

            gen = np.random.default_rng(0)
            """,
            path="src/repro/rng.py",
        )
        assert findings == []

    def test_passed_in_generator_is_clean(self):
        findings = run_rule(
            RngConstructionRule(),
            """
            def draw(rng):
                return rng.normal(0.0, 1.0)
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DET002 — stdlib random banned
# ---------------------------------------------------------------------------


class TestRandomModuleImportRule:
    def test_plain_import_fires(self):
        findings = run_rule(RandomModuleImportRule(), "import random\n")
        assert rule_ids(findings) == ["DET002"]

    def test_from_import_fires(self):
        findings = run_rule(
            RandomModuleImportRule(), "from random import choice\n"
        )
        assert rule_ids(findings) == ["DET002"]

    def test_numpy_random_import_is_not_stdlib_random(self):
        findings = run_rule(RandomModuleImportRule(), "import numpy.random\n")
        assert findings == []

    def test_relative_random_module_is_clean(self):
        # `from .random import x` refers to a local module, not the stdlib.
        findings = run_rule(
            RandomModuleImportRule(), "from .random import draws\n"
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DET003 — wall-clock reads
# ---------------------------------------------------------------------------


class TestWallClockRule:
    def test_time_time_fires(self):
        findings = run_rule(
            WallClockRule(),
            """
            import time

            stamp = time.time()
            """,
        )
        assert rule_ids(findings) == ["DET003"]

    def test_datetime_now_via_from_import_fires(self):
        findings = run_rule(
            WallClockRule(),
            """
            from datetime import datetime

            stamp = datetime.now()
            """,
        )
        assert rule_ids(findings) == ["DET003"]

    def test_perf_counter_fires(self):
        findings = run_rule(
            WallClockRule(),
            """
            import time

            t0 = time.perf_counter()
            """,
        )
        assert rule_ids(findings) == ["DET003"]

    def test_time_sleep_is_clean(self):
        findings = run_rule(
            WallClockRule(),
            """
            import time

            time.sleep(0.1)
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# UNIT001 — magic conversion literals
# ---------------------------------------------------------------------------


class TestMagicUnitLiteralRule:
    @pytest.mark.parametrize("literal", ["1e9", "1e-3", "1e-6", "1e-9"])
    def test_scientific_conversion_literal_fires(self, literal):
        findings = run_rule(MagicUnitLiteralRule(), f"x = value * {literal}\n")
        assert rule_ids(findings) == ["UNIT001"]
        assert literal in findings[0].message

    def test_decimal_notation_is_clean(self):
        # 0.001 == 1e-3 but is written as an ordinary number, not a
        # conversion-factor idiom.
        findings = run_rule(MagicUnitLiteralRule(), "x = 0.001\n")
        assert findings == []

    def test_non_magic_exponent_is_clean(self):
        findings = run_rule(MagicUnitLiteralRule(), "x = 2e9\n")
        assert findings == []

    def test_units_module_is_exempt(self):
        findings = run_rule(
            MagicUnitLiteralRule(),
            "GHZ_TO_HZ = 1e9\n",
            path="src/repro/units.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# CFG001 — config dataclasses must be frozen
# ---------------------------------------------------------------------------


class TestFrozenConfigRule:
    def test_unfrozen_dataclass_in_config_module_fires(self):
        findings = run_rule(
            FrozenConfigRule(),
            """
            from dataclasses import dataclass

            @dataclass
            class Anything:
                cores: int = 8
            """,
            path="src/repro/config.py",
        )
        assert rule_ids(findings) == ["CFG001"]

    def test_config_suffixed_class_fires_anywhere(self):
        findings = run_rule(
            FrozenConfigRule(),
            """
            from dataclasses import dataclass

            @dataclass
            class SweepSpec:
                budgets: tuple = ()
            """,
            path="src/repro/analysis/other.py",
        )
        assert rule_ids(findings) == ["CFG001"]

    def test_experiments_package_fires(self):
        findings = run_rule(
            FrozenConfigRule(),
            """
            from dataclasses import dataclass

            @dataclass
            class Holder:
                rows: list
            """,
            path="src/repro/experiments/fig99.py",
        )
        assert rule_ids(findings) == ["CFG001"]

    def test_frozen_dataclass_is_clean(self):
        findings = run_rule(
            FrozenConfigRule(),
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ChipConfig:
                cores: int = 8
            """,
            path="src/repro/config.py",
        )
        assert findings == []

    def test_mutable_state_holder_elsewhere_is_clean(self):
        # Plain-named dataclasses outside config/experiments may be mutable.
        findings = run_rule(
            FrozenConfigRule(),
            """
            from dataclasses import dataclass, field

            @dataclass
            class Telemetry:
                samples: list = field(default_factory=list)
            """,
            path="src/repro/cmpsim/telemetry.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# CFG002 — mutable default arguments
# ---------------------------------------------------------------------------


class TestMutableDefaultRule:
    def test_list_literal_default_fires(self):
        findings = run_rule(MutableDefaultRule(), "def f(x=[]):\n    return x\n")
        assert rule_ids(findings) == ["CFG002"]

    def test_keyword_only_dict_default_fires(self):
        findings = run_rule(
            MutableDefaultRule(), "def f(*, cache={}):\n    return cache\n"
        )
        assert rule_ids(findings) == ["CFG002"]

    def test_mutable_constructor_call_default_fires(self):
        findings = run_rule(
            MutableDefaultRule(), "def f(x=dict()):\n    return x\n"
        )
        assert rule_ids(findings) == ["CFG002"]

    def test_none_and_tuple_defaults_are_clean(self):
        findings = run_rule(
            MutableDefaultRule(),
            "def f(x=None, y=(), z=1.0):\n    return x, y, z\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# CTL001 — PID needs explicit saturation bounds
# ---------------------------------------------------------------------------


class TestUnboundedPIDRule:
    def test_missing_output_limits_fires(self):
        findings = run_rule(UnboundedPIDRule(), "pid = DiscretePID(gains)\n")
        assert rule_ids(findings) == ["CTL001"]
        assert "output_limits" in findings[0].message

    def test_explicit_none_limits_fires(self):
        findings = run_rule(
            UnboundedPIDRule(), "pid = DiscretePID(gains, output_limits=None)\n"
        )
        assert rule_ids(findings) == ["CTL001"]

    def test_keyword_limits_are_clean(self):
        findings = run_rule(
            UnboundedPIDRule(),
            "pid = DiscretePID(gains, output_limits=(-0.4, 0.4))\n",
        )
        assert findings == []

    def test_positional_limits_are_clean(self):
        findings = run_rule(
            UnboundedPIDRule(), "pid = DiscretePID(gains, (-0.4, 0.4))\n"
        )
        assert findings == []


# ---------------------------------------------------------------------------
# CTL002 — bare / silently-swallowed excepts
# ---------------------------------------------------------------------------


class TestSilentExceptRule:
    def test_bare_except_fires(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except:
                recover()
            """,
        )
        assert rule_ids(findings) == ["CTL002"]

    def test_swallowed_broad_except_fires(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except Exception:
                pass
            """,
        )
        assert rule_ids(findings) == ["CTL002"]

    def test_handled_broad_except_is_clean(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except Exception:
                log.warning("step failed")
                raise
            """,
        )
        assert findings == []

    def test_specific_except_with_pass_is_clean(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except ValueError:
                pass
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# ROB001 — broad handlers must surface the exception
# ---------------------------------------------------------------------------


class TestSwallowedExceptionRule:
    def test_broad_handler_discarding_exception_fires(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except Exception:
                value = fallback()
            """,
        )
        assert rule_ids(findings) == ["ROB001"]

    def test_bound_but_unused_exception_fires(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except Exception as exc:
                value = fallback()
            """,
        )
        assert rule_ids(findings) == ["ROB001"]

    def test_broad_tuple_handler_fires(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except (ValueError, Exception):
                value = fallback()
            """,
        )
        assert rule_ids(findings) == ["ROB001"]

    def test_reraise_is_clean(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except Exception:
                cleanup()
                raise
            """,
        )
        assert findings == []

    def test_using_bound_exception_is_clean(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except Exception as exc:
                failures.append(str(exc))
            """,
        )
        assert findings == []

    def test_narrow_handler_is_clean(self):
        findings = run_rule(
            SwallowedExceptionRule(),
            """
            try:
                step()
            except ValueError:
                value = fallback()
            """,
        )
        assert findings == []

    def test_ctl002_cases_not_double_reported(self):
        # Bare excepts and empty broad bodies belong to CTL002.
        for snippet in (
            "try:\n    step()\nexcept:\n    value = 1\n",
            "try:\n    step()\nexcept Exception:\n    pass\n",
        ):
            assert run_rule(SwallowedExceptionRule(), snippet) == []

    def test_inline_suppression_silences(self):
        findings = lint_source(
            "try:\n"
            "    step()\n"
            "except Exception:  # lint: ignore[ROB001] - deliberate\n"
            "    value = fallback()\n",
            path="mod.py",
            rules=[SwallowedExceptionRule()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# API001 / API002 — __all__ hygiene
# ---------------------------------------------------------------------------


class TestDeclaredAllRule:
    def test_public_module_without_all_fires_with_suggestion(self):
        findings = run_rule(
            DeclaredAllRule(),
            """
            def beta():
                return 2

            def alpha():
                return 1
            """,
        )
        assert rule_ids(findings) == ["API001"]
        # Suggestion lists the public names, sorted.
        assert '__all__ = ["alpha", "beta"]' in findings[0].message

    def test_module_with_all_is_clean(self):
        findings = run_rule(
            DeclaredAllRule(),
            """
            __all__ = ["alpha"]

            def alpha():
                return 1
            """,
        )
        assert findings == []

    def test_private_only_module_is_clean(self):
        findings = run_rule(
            DeclaredAllRule(), "def _helper():\n    return 1\n"
        )
        assert findings == []

    def test_dunder_main_is_exempt(self):
        findings = run_rule(
            DeclaredAllRule(),
            "def main():\n    return 0\n",
            path="src/repro/lintkit/__main__.py",
        )
        assert findings == []


class TestStaleAllRule:
    def test_unknown_name_fires(self):
        findings = run_rule(
            StaleAllRule(),
            """
            __all__ = ["gone"]

            def here():
                return 1
            """,
        )
        messages = [f.message for f in findings]
        assert rule_ids(findings) == ["API002", "API002"]
        assert any("gone" in m for m in messages)  # unknown
        assert any("here" in m for m in messages)  # missing

    def test_non_literal_all_fires(self):
        findings = run_rule(
            StaleAllRule(),
            """
            _names = ["a"]
            __all__ = list(_names)
            """,
        )
        assert rule_ids(findings) == ["API002"]
        assert "statically" in findings[0].message

    def test_reexports_required_in_package_init(self):
        findings = run_rule(
            StaleAllRule(),
            """
            from .core import Chip

            __all__ = []
            """,
            path="src/repro/cmpsim/__init__.py",
        )
        assert rule_ids(findings) == ["API002"]
        assert "Chip" in findings[0].message

    def test_imports_in_leaf_module_not_required(self):
        findings = run_rule(
            StaleAllRule(),
            """
            import numpy as np

            __all__ = ["solve"]

            def solve():
                return np.zeros(3)
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_matching_rule_id_suppresses(self):
        findings = lint_source(
            "x = value * 1e9  # lint: ignore[UNIT001] display-only\n",
            rules=[MagicUnitLiteralRule()],
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint_source(
            "x = value * 1e9  # lint: ignore[DET001]\n",
            rules=[MagicUnitLiteralRule()],
        )
        assert rule_ids(findings) == ["UNIT001"]

    def test_bare_ignore_suppresses_every_rule_on_the_line(self):
        findings = lint_source(
            "def f(x=[], y=1e9):  # lint: ignore\n    return x, y\n",
            rules=[MutableDefaultRule(), MagicUnitLiteralRule()],
        )
        assert findings == []

    def test_suppression_only_covers_its_own_line(self):
        src = (
            "a = 1e9  # lint: ignore[UNIT001]\n"
            "b = 1e9\n"
        )
        findings = lint_source(src, rules=[MagicUnitLiteralRule()])
        assert [(f.rule_id, f.line) for f in findings] == [("UNIT001", 2)]

    def test_ignore_text_inside_string_does_not_suppress(self):
        src = 'msg = "# lint: ignore[UNIT001]"\nx = 1e9\n'
        findings = lint_source(src, rules=[MagicUnitLiteralRule()])
        assert rule_ids(findings) == ["UNIT001"]

    def test_parse_comment_multiple_ids(self):
        assert parse_comment("# lint: ignore[UNIT001, det001]") == {
            "UNIT001",
            "DET001",
        }
        assert parse_comment("# just a comment") is None


# ---------------------------------------------------------------------------
# Baseline mechanism
# ---------------------------------------------------------------------------


def _finding(line: int, source_line: str = "x = 1e9") -> Finding:
    return Finding(
        path="src/mod.py",
        line=line,
        col=4,
        rule_id="UNIT001",
        message="magic literal",
        source_line=source_line,
    )


class TestBaseline:
    def test_partition_absorbs_grandfathered_counts(self):
        baseline = Baseline.from_findings([_finding(3)])
        new, old = baseline.partition([_finding(3)])
        assert (new, len(old)) == ([], 1)

    def test_extra_identical_finding_is_new(self):
        # The same violation appearing one more time than tolerated fails.
        baseline = Baseline.from_findings([_finding(3)])
        new, old = baseline.partition([_finding(3), _finding(9)])
        assert (len(new), len(old)) == (1, 1)

    def test_key_is_movement_tolerant(self):
        # A finding that moved lines (code inserted above) still matches.
        baseline = Baseline.from_findings([_finding(3)])
        new, old = baseline.partition([_finding(42)])
        assert (new, len(old)) == ([], 1)

    def test_different_source_line_is_new(self):
        baseline = Baseline.from_findings([_finding(3)])
        new, _ = baseline.partition([_finding(3, source_line="y = 1e9")])
        assert len(new) == 1

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(3), _finding(8)])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert json.loads(path.read_text())["version"] == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_invalid_counts_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1, "findings": {"k": 0}}')
        with pytest.raises(ValueError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# Engine: files, parse errors
# ---------------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_becomes_e000_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([bad])
        assert rule_ids(report.findings) == [PARSE_ERROR_ID]
        assert not report.ok

    def test_pycache_is_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import random\n")
        (tmp_path / "_scratch.py").write_text("VALUE = 1\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 1
        assert report.ok

    def test_full_catalogue_runs_on_clean_source(self):
        src = textwrap.dedent(
            """
            '''A clean module.'''

            __all__ = ["double"]

            def double(x):
                return 2 * x
            """
        )
        assert lint_source(src, rules=all_rules()) == []


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON output, --update-baseline
# ---------------------------------------------------------------------------


VIOLATION_SRC = (
    "import numpy as np\n"
    "\n"
    "_gen = np.random.default_rng(0)\n"
)
CLEAN_SRC = (
    '__all__ = ["f"]\n'
    "\n"
    "def f():\n"
    "    return 1\n"
)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SRC)
        code = main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s) in 1 file(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION_SRC)
        code = main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path / "nowhere"), "--no-baseline"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SRC)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"findings": {"k": -3}}')
        code = main([str(tmp_path), "--baseline", str(baseline)])
        assert code == 2
        assert "invalid baseline" in capsys.readouterr().err

    def test_json_output_shape(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION_SRC)
        code = main([str(tmp_path), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["count"] == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["line"] == 3
        assert set(finding) == {"path", "line", "col", "rule", "message"}

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION_SRC)
        baseline = tmp_path / "baseline.json"

        code = main(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert baseline.exists()

        # Grandfathered: same tree now lints clean.
        code = main([str(tmp_path), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

        # A second, new violation still fails.
        (tmp_path / "worse.py").write_text(VIOLATION_SRC.replace("0", "1"))
        code = main([str(tmp_path), "--baseline", str(baseline)])
        assert code == 1

    def test_list_rules_covers_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out


# ---------------------------------------------------------------------------
# Acceptance: the repository's own tree is clean
# ---------------------------------------------------------------------------


class TestRepositoryTree:
    def test_src_tree_has_no_findings(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        report = lint_paths([REPO_ROOT / "src"], baseline=baseline)
        assert report.files_checked > 50
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"lintkit findings in src/:\n{rendered}"

    def test_committed_baseline_is_empty(self):
        # The whole tree was brought into compliance; the baseline should
        # carry no grandfathered debt.  If a future change legitimately
        # needs one, delete this test alongside justifying the entry.
        assert len(Baseline.load(REPO_ROOT / "lint-baseline.json")) == 0
