"""PIC tier: actuator semantics and the per-island controller loop."""

import numpy as np
import pytest

from repro.cmpsim.dvfs import DVFSTable
from repro.control.pid import PIDGains
from repro.control.pole_placement import design_pid
from repro.pic.actuator import DVFSActuator
from repro.pic.controller import PerIslandController
from repro.pic.sensor import CallbackSensor
from repro.power.transducer import LinearTransducer

POLES = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)


class TestDVFSActuator:
    def test_starts_at_top(self):
        act = DVFSActuator(DVFSTable())
        assert act.frequency == 2.0

    def test_delta_application(self):
        act = DVFSActuator(DVFSTable(), initial_frequency=1.4)
        assert act.apply_delta(-0.2) == pytest.approx(1.2)
        assert act.apply_delta(0.05) == pytest.approx(1.25)

    def test_clamping_and_saturation_flags(self):
        act = DVFSActuator(DVFSTable(), initial_frequency=1.9)
        assert act.apply_delta(0.5) == 2.0
        assert act.last_saturation == 1
        act.apply(0.1)
        assert act.frequency == 0.6
        assert act.last_saturation == -1
        act.apply(1.3)
        assert act.last_saturation == 0

    def test_quantized_mode(self):
        act = DVFSActuator(DVFSTable(), quantized=True, initial_frequency=1.3)
        assert act.frequency in (1.2, 1.4)
        applied = act.apply(1.33)
        assert applied == pytest.approx(1.4)

    def test_reset(self):
        act = DVFSActuator(DVFSTable())
        act.apply(0.8)
        act.reset()
        assert act.frequency == 2.0
        assert act.last_saturation == 0
        act.reset(1.4)
        assert act.frequency == 1.4


class TestCallbackSensor:
    def test_reads_source(self):
        values = iter([0.3, 0.7])
        sensor = CallbackSensor(lambda: next(values))
        assert sensor.read() == pytest.approx(0.3)
        assert sensor.read() == pytest.approx(0.7)


class FakeIsland:
    """Island power model for controller loop tests.

    Power responds to frequency through a known gain; utilization is the
    (noisy) inverse of the transducer so sensing is consistent.
    """

    def __init__(self, transducer: LinearTransducer, gain: float):
        self.transducer = transducer
        self.gain = gain
        self.frequency = 1.3
        self.power = 0.12

    def apply_frequency(self, f: float) -> None:
        delta = f - self.frequency
        self.frequency = f
        self.power = float(np.clip(self.power + self.gain * delta, 0.01, 0.3))

    def utilization(self) -> float:
        return self.transducer.invert(self.power)


class TestPerIslandController:
    GAIN = 0.13
    TRANSDUCER = LinearTransducer(k0=0.32, k1=-0.06)

    def controller(self, **kwargs):
        gains = design_pid(self.GAIN, POLES)
        return PerIslandController(
            gains=gains,
            transducer=self.TRANSDUCER,
            actuator=DVFSActuator(DVFSTable(), initial_frequency=1.3),
            sensor_smoothing=kwargs.pop("sensor_smoothing", 1.0),
            **kwargs,
        )

    def run_loop(self, controller, island, setpoint, steps=30):
        invocations = []
        for _ in range(steps):
            inv = controller.invoke(setpoint, island.utilization())
            island.apply_frequency(inv.applied_frequency)
            invocations.append(inv)
        return invocations

    def test_tracks_setpoint(self):
        island = FakeIsland(self.TRANSDUCER, self.GAIN)
        controller = self.controller()
        self.run_loop(controller, island, setpoint=0.16)
        assert island.power == pytest.approx(0.16, abs=0.002)

    def test_settles_within_paper_bounds(self):
        """5-6 invocations to settle, like the paper's PIC."""
        island = FakeIsland(self.TRANSDUCER, self.GAIN)
        controller = self.controller()
        invocations = self.run_loop(controller, island, setpoint=0.16, steps=12)
        errors = [abs(inv.error) / 0.16 for inv in invocations]
        assert all(e < 0.03 for e in errors[6:])

    def test_tracks_downward(self):
        island = FakeIsland(self.TRANSDUCER, self.GAIN)
        island.power = 0.2
        island.frequency = 1.9
        controller = self.controller()
        controller.actuator.reset(1.9)
        self.run_loop(controller, island, setpoint=0.10)
        assert island.power == pytest.approx(0.10, abs=0.003)

    def test_saturation_at_ladder_bottom(self):
        """An unreachable set-point parks the island at f_min without
        winding up, and recovery is immediate."""
        island = FakeIsland(self.TRANSDUCER, self.GAIN)
        controller = self.controller()
        self.run_loop(controller, island, setpoint=0.0001, steps=20)
        assert controller.frequency == pytest.approx(0.6)
        # Raise the set-point: must move off the floor within a few steps.
        invs = self.run_loop(controller, island, setpoint=0.15, steps=6)
        assert invs[-1].applied_frequency > 0.7

    def test_invocation_record_consistency(self):
        controller = self.controller()
        inv = controller.invoke(0.15, 0.6)
        assert inv.setpoint == 0.15
        assert inv.utilization == 0.6
        assert inv.sensed_power == pytest.approx(self.TRANSDUCER(0.6))
        assert inv.error == pytest.approx(0.15 - self.TRANSDUCER(0.6))

    def test_sensor_smoothing_filters(self):
        controller = self.controller(sensor_smoothing=0.5)
        controller.invoke(0.15, 0.8)
        inv = controller.invoke(0.15, 0.0)
        # Smoothed utilization is 0.4, not 0.
        assert inv.sensed_power == pytest.approx(self.TRANSDUCER(0.4))

    def test_reset_clears_everything(self):
        controller = self.controller(sensor_smoothing=0.5)
        controller.invoke(0.15, 0.8)
        controller.reset(1.0)
        assert controller.frequency == 1.0
        inv = controller.invoke(0.15, 0.6)
        assert inv.sensed_power == pytest.approx(self.TRANSDUCER(0.6))

    def test_validation(self):
        with pytest.raises(ValueError):
            self.controller(max_step_ghz=0.0)
        with pytest.raises(ValueError):
            PerIslandController(
                gains=PIDGains(1, 1, 1),
                transducer=self.TRANSDUCER,
                actuator=DVFSActuator(DVFSTable()),
                sensor_smoothing=0.0,
            )
