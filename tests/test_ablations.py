"""Ablation experiments: the design-choice findings hold in quick mode."""

import pytest

from repro.experiments.ablations import (
    run_energy_floor,
    run_gpm_policy,
    run_maxbips_prediction,
    run_pid_terms,
    run_quantization,
    run_transducer,
)

pytestmark = pytest.mark.slow


class TestPIDTerms:
    def test_all_variants_track(self):
        result = run_pid_terms(quick=True)
        assert len(result.rows) == 3
        for _name, err, _noise, _power in result.rows:
            assert err < 0.08  # every variant keeps the chip near budget


class TestQuantization:
    def test_quantized_tracking_no_tighter_than_continuous(self):
        result = run_quantization(quick=True)
        by_mode = {row[0]: row[1] for row in result.rows}
        assert by_mode["quantized"] >= by_mode["continuous"] - 0.01


class TestTransducer:
    def test_sensing_error_reported(self):
        result = run_transducer(quick=True)
        by_kind = {row[0]: row[1] for row in result.rows}
        assert by_kind["per-island"] < 0.05
        assert by_kind["global"] < 0.08


class TestGPMPolicy:
    def test_all_policies_run_and_track(self):
        result = run_gpm_policy(quick=True)
        names = [row[0] for row in result.rows]
        assert len(names) == 3
        for _name, deg, power in result.rows:
            assert deg < 0.15
            assert 0.5 < power < 0.9


class TestMaxBIPSPrediction:
    def test_static_loses_more_than_measured(self):
        result = run_maxbips_prediction(quick=True)
        by_kind = {row[0]: row[1] for row in result.rows}
        assert by_kind["static"] > by_kind["measured"]

    def test_both_variants_stay_under_budget(self):
        result = run_maxbips_prediction(quick=True)
        for _kind, _deg, _mean, max_power in result.rows:
            assert max_power <= 0.8 + 1e-6


class TestEnergyFloor:
    def test_looser_floor_saves_more_power(self):
        result = run_energy_floor(quick=True)
        floors = [row[0] for row in result.rows]
        saved = [row[2] for row in result.rows]
        assert floors == sorted(floors, reverse=True)
        assert saved == sorted(saved)  # monotone: lower floor, more saved

    def test_power_saved_exceeds_perf_cost(self):
        """The policy's point: each saved watt costs less than a
        proportional amount of throughput."""
        result = run_energy_floor(quick=True)
        for _floor, _power, saved, degradation in result.rows:
            if saved > 0.02:
                assert saved > degradation
