"""Property-based tests on serialization and recorded workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_CONFIG
from repro.workloads.recorded import RecordedWorkload


def make_recording(n_ticks: int, n_cores: int, seed: int) -> RecordedWorkload:
    rng = np.random.default_rng(seed)
    return RecordedWorkload(
        benchmarks=tuple(f"bench{i}" for i in range(n_cores)),
        alpha=rng.uniform(0.1, 1.0, (n_ticks, n_cores)),
        cpi_base=rng.uniform(0.6, 1.5, (n_ticks, n_cores)),
        l1_mpki=rng.uniform(0.0, 50.0, (n_ticks, n_cores)),
        l2_mpki=rng.uniform(0.0, 25.0, (n_ticks, n_cores)),
    )


class TestRecordingProperties:
    @given(
        n_ticks=st.integers(1, 40),
        n_cores=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_save_load_roundtrip(self, n_ticks, n_cores, seed, tmp_path_factory):
        rec = make_recording(n_ticks, n_cores, seed)
        path = tmp_path_factory.mktemp("rec") / "capture.npz"
        loaded = RecordedWorkload.load(rec.save(path))
        assert loaded.benchmarks == rec.benchmarks
        for field in ("alpha", "cpi_base", "l1_mpki", "l2_mpki"):
            np.testing.assert_array_equal(
                getattr(loaded, field), getattr(rec, field)
            )

    @given(
        n_ticks=st.integers(1, 20),
        seed=st.integers(0, 2**16),
        n_advances=st.integers(1, 60),
    )
    @settings(max_examples=30, deadline=None)
    def test_replay_cycles_deterministically(self, n_ticks, seed, n_advances):
        rec = make_recording(n_ticks, 2, seed)
        inst = rec.instances()[1]
        samples = [inst.advance() for _ in range(n_advances)]
        for t, sample in enumerate(samples):
            assert sample.alpha == pytest.approx(
                float(rec.alpha[t % n_ticks, 1])
            )

    def test_shape_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RecordedWorkload(
                benchmarks=("a",),
                alpha=rng.random((5, 2)),  # 2 cores but 1 name
                cpi_base=rng.random((5, 2)),
                l1_mpki=rng.random((5, 2)),
                l2_mpki=rng.random((5, 2)),
            )
        with pytest.raises(ValueError):
            RecordedWorkload(
                benchmarks=("a", "b"),
                alpha=rng.random((5, 2)),
                cpi_base=rng.random((4, 2)),  # mismatched ticks
                l1_mpki=rng.random((5, 2)),
                l2_mpki=rng.random((5, 2)),
            )


class TestCSVFlattening:
    @given(
        n=st.integers(1, 30),
        m=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_flatten_preserves_values(self, n, m, seed):
        from repro.io import _flatten_columns

        rng = np.random.default_rng(seed)
        arrays = {
            "scalar": rng.random(n),
            "vector": rng.random((n, m)),
        }
        names, table = _flatten_columns(arrays)
        assert table.shape == (n, 1 + m)
        assert names[0] == "scalar"
        col = names.index("vector[0]")
        np.testing.assert_allclose(table[:, col], arrays["vector"][:, 0])
