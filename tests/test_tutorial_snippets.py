"""docs/TUTORIAL.md's snippets execute and their claims hold."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def excitation_run():
    from repro import DEFAULT_CONFIG, Simulation
    from repro.core.calibration import WhiteNoiseDVFSScheme

    sim = Simulation(
        DEFAULT_CONFIG, WhiteNoiseDVFSScheme(seed=1), budget_fraction=1.0,
        seed=1,
    )
    return sim.run(10)


@pytest.fixture(scope="module")
def identified_gain(excitation_run):
    from repro.control import fit_system_gain

    freq = excitation_run.telemetry["island_frequency_ghz"]
    power = excitation_run.telemetry["island_power_frac"]
    return fit_system_gain(
        np.diff(freq, axis=0).ravel(), np.diff(power, axis=0).ravel()
    )


def test_step1_free_run(nomgmt_run):
    assert 0.7 < nomgmt_run.mean_chip_power_frac < 0.95


def test_step2_identification(identified_gain):
    assert 0.05 < identified_gain.gain < 0.3
    assert identified_gain.r_squared > 0.6


def test_step3_design(identified_gain):
    from repro.control import design_pid, stability_gain_limit
    from repro.control.pole_placement import closed_loop

    poles = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)
    gains = design_pid(identified_gain.gain, poles)
    loop = closed_loop(identified_gain.gain, gains)
    assert loop.is_stable()
    assert abs(loop.dc_gain() - 1.0) < 1e-9
    assert stability_gain_limit(identified_gain.gain, gains) > 1.3


def test_step4_transducer(excitation_run):
    from repro.power import fit_transducer

    transducer = fit_transducer(
        excitation_run.telemetry["island_utilization"][:, 0],
        excitation_run.telemetry["island_power_frac"][:, 0],
    )
    assert transducer.r_squared > 0.9
    assert transducer(0.8) > transducer(0.4)


def test_step5_controller(excitation_run, identified_gain):
    from repro.cmpsim import DVFSTable
    from repro.control import design_pid
    from repro.pic import DVFSActuator, PerIslandController
    from repro.power import fit_transducer

    poles = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)
    gains = design_pid(identified_gain.gain, poles)
    transducer = fit_transducer(
        excitation_run.telemetry["island_utilization"][:, 0],
        excitation_run.telemetry["island_power_frac"][:, 0],
    )
    controller = PerIslandController(
        gains=gains,
        transducer=transducer,
        actuator=DVFSActuator(DVFSTable(), initial_frequency=1.6),
    )
    invocation = controller.invoke(setpoint=0.17, utilization=0.75)
    assert invocation.sensed_power == pytest.approx(transducer(0.75))
    assert 0.6 <= invocation.applied_frequency <= 2.0


def test_step6_full_scheme(cpm_run_80):
    chip = cpm_run_80.telemetry["chip_power_frac"][50:]
    assert abs(chip.mean() - 0.8) < 0.04
