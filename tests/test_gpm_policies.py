"""GPM tier: context helpers, policies, the manager's invariants."""

import numpy as np
import pytest

from repro.cmpsim.telemetry import WindowStats
from repro.gpm.manager import GlobalPowerManager
from repro.gpm.performance_aware import PerformanceAwarePolicy
from repro.gpm.policy import GPMContext, UniformPolicy, clamp_and_redistribute
from repro.gpm.thermal_aware import ThermalAwarePolicy
from repro.gpm.variation_aware import VariationAwarePolicy

N = 4
BUDGET = 0.7


def window(power, bips, setpoints=None, duration=5e-3):
    power = np.asarray(power, dtype=float)
    bips = np.asarray(bips, dtype=float)
    if setpoints is None:
        setpoints = power.copy()
    return WindowStats(
        island_power_frac=power,
        island_bips=bips,
        island_utilization=np.full(N, 0.7),
        island_setpoints=np.asarray(setpoints, dtype=float),
        island_energy_j=power * 85.0 * duration,
        island_instructions=bips * 1e9 * duration,
        duration_s=duration,
    )


def context(windows=(), budget=BUDGET, frequency=None, f_max=2.0):
    return GPMContext(
        budget=budget,
        n_islands=N,
        windows=list(windows),
        island_min=np.full(N, 0.02),
        island_max=np.full(N, 0.24),
        adjacent_pairs=frozenset({(0, 1), (2, 3)}),
        island_leakage=np.ones(N),
        island_frequency=frequency,
        f_max=f_max,
    )


class TestClampAndRedistribute:
    LO = np.full(4, 0.05)
    HI = np.full(4, 0.30)

    def test_preserves_feasible_total(self):
        shares = np.array([0.1, 0.2, 0.15, 0.25])
        out = clamp_and_redistribute(shares, 0.7, self.LO, self.HI)
        assert out.sum() == pytest.approx(0.7)

    def test_moves_excess_off_capped_islands(self):
        shares = np.array([0.5, 0.1, 0.05, 0.05])
        out = clamp_and_redistribute(shares, 0.7, self.LO, self.HI)
        assert out[0] == pytest.approx(0.30)
        assert out.sum() == pytest.approx(0.7)
        assert np.all(out >= self.LO - 1e-12)

    def test_infeasible_totals_return_boundary(self):
        shares = np.full(4, 0.2)
        np.testing.assert_allclose(
            clamp_and_redistribute(shares, 0.05, self.LO, self.HI), self.LO
        )
        np.testing.assert_allclose(
            clamp_and_redistribute(shares, 5.0, self.LO, self.HI), self.HI
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            clamp_and_redistribute(np.ones(4), 1.0, self.HI, self.LO)
        with pytest.raises(ValueError):
            clamp_and_redistribute(np.ones(3), 1.0, self.LO, self.HI)


class TestUniformPolicy:
    def test_equal_split(self):
        out = UniformPolicy().provision(context())
        np.testing.assert_allclose(out, BUDGET / N)


class TestPerformanceAware:
    def test_equal_until_two_windows(self):
        policy = PerformanceAwarePolicy()
        out = policy.provision(context(windows=[window([0.17] * 4, [2.0] * 4)]))
        np.testing.assert_allclose(out, BUDGET / N)

    def test_sums_to_budget(self):
        policy = PerformanceAwarePolicy()
        windows = [
            window([0.17, 0.18, 0.16, 0.19], [2.0, 0.5, 2.1, 0.6]),
            window([0.19, 0.16, 0.17, 0.18], [2.2, 0.5, 2.1, 0.6]),
        ]
        out = policy.provision(context(windows=windows))
        assert out.sum() == pytest.approx(BUDGET)

    def test_power_converters_gain_share(self):
        """An island whose BIPS tracked its power rise scores phi > 1 and
        gains budget; one whose BIPS ignored the same rise loses it."""
        policy = PerformanceAwarePolicy(smoothing=1.0)
        prev = window([0.15, 0.15, 0.17, 0.17], [2.0, 0.5, 2.0, 0.5])
        # Islands 0,1 both got +20% power; island 0 converted it fully,
        # island 1 not at all.
        now = window(
            [0.18, 0.18, 0.17, 0.17], [2.0 * 1.2**0.5, 0.5, 2.0, 0.5]
        )
        out = policy.provision(context(windows=[prev, now]))
        assert out[0] > out[1]

    def test_eq6_mode_reverts_to_equal_at_steady_state(self):
        policy = PerformanceAwarePolicy(mode="eq6", smoothing=1.0)
        steady = window([0.17] * 4, [2.0, 0.5, 2.0, 0.5])
        out = policy.provision(context(windows=[steady, steady]))
        np.testing.assert_allclose(out, BUDGET / N, rtol=1e-9)

    def test_proportional_mode_keeps_differentiation(self):
        policy = PerformanceAwarePolicy(mode="proportional", smoothing=1.0)
        prev = window([0.15, 0.15, 0.17, 0.17], [2.0, 0.5, 2.0, 0.5])
        now = window([0.18, 0.18, 0.17, 0.17], [2.4, 0.5, 2.0, 0.5])
        first = policy.provision(context(windows=[prev, now]))
        # Steady phase afterwards: shares persist instead of re-equalizing.
        steady = window(first.copy(), [2.4, 0.5, 2.0, 0.5], setpoints=first)
        second = policy.provision(context(windows=[now, steady]))
        assert second[0] > BUDGET / N

    def test_phi_clamped_against_noise_spikes(self):
        policy = PerformanceAwarePolicy(smoothing=1.0, phi_bounds=(0.5, 2.0))
        prev = window([0.17] * 4, [2.0, 2.0, 2.0, 2.0])
        # Absurd BIPS spike on island 3 with unchanged power.
        now = window([0.17] * 4, [2.0, 2.0, 2.0, 200.0])
        out = policy.provision(context(windows=[prev, now]))
        # phi capped at 2: island 3 gets at most 2/(1+1+1+2) of the budget.
        assert out[3] <= BUDGET * 2.0 / 5.0 + 1e-9

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PerformanceAwarePolicy(mode="magic")
        with pytest.raises(ValueError):
            PerformanceAwarePolicy(phi_bounds=(1.5, 2.0))
        with pytest.raises(ValueError):
            PerformanceAwarePolicy(smoothing=0.0)

    def test_reset_clears_state(self):
        policy = PerformanceAwarePolicy()
        windows = [
            window([0.15, 0.18, 0.17, 0.17], [2.0, 0.5, 2.0, 0.5]),
            window([0.18, 0.15, 0.17, 0.17], [2.4, 0.4, 2.0, 0.5]),
        ]
        policy.provision(context(windows=windows))
        policy.reset()
        out = policy.provision(context(windows=[windows[0]]))
        np.testing.assert_allclose(out, BUDGET / N)


class TestManager:
    def test_clamps_to_island_bounds(self):
        class Greedy:
            name = "greedy"

            def provision(self, ctx):
                return np.array([0.6, 0.05, 0.02, 0.03])

        manager = GlobalPowerManager(Greedy())
        out = manager.provision(context())
        assert out[0] <= 0.24 + 1e-12
        assert out.sum() == pytest.approx(BUDGET)

    def test_never_exceeds_budget(self):
        class OverAsker:
            name = "over"

            def provision(self, ctx):
                return np.full(N, 0.5)

        out = GlobalPowerManager(OverAsker()).provision(context())
        assert out.sum() <= BUDGET + 1e-9

    def test_underspending_policies_preserved(self):
        class Frugal:
            name = "frugal"

            def provision(self, ctx):
                return np.full(N, 0.05)

        out = GlobalPowerManager(Frugal()).provision(context())
        assert out.sum() == pytest.approx(0.2)

    def test_invalid_policy_output_rejected(self):
        class Broken:
            name = "broken"

            def provision(self, ctx):
                return np.array([0.1, np.nan, 0.1, 0.1])

        with pytest.raises(ValueError):
            GlobalPowerManager(Broken()).provision(context())

    def test_wrong_shape_rejected(self):
        class Short:
            name = "short"

            def provision(self, ctx):
                return np.array([0.1, 0.1])

        with pytest.raises(ValueError):
            GlobalPowerManager(Short()).provision(context())

    def test_demand_reclaim(self):
        """An island pinned at f_max consuming under its set-point has its
        surplus reclaimed for the others."""
        manager = GlobalPowerManager(UniformPolicy())
        w = window(
            power=[0.10, 0.18, 0.18, 0.18],
            bips=[0.5, 2.0, 2.0, 2.0],
            setpoints=[0.175, 0.175, 0.175, 0.175],
        )
        ctx = context(
            windows=[w],
            frequency=np.array([2.0, 1.5, 1.5, 1.5]),
        )
        out = manager.provision(ctx)
        assert out[0] <= 0.10 * 1.05 + 1e-9
        assert out[1] > BUDGET / N  # the surplus went somewhere useful
        assert out.sum() == pytest.approx(BUDGET)

    def test_no_reclaim_when_tracking(self):
        """Islands below f_max are being actively capped, not demand-limited."""
        manager = GlobalPowerManager(UniformPolicy())
        w = window(
            power=[0.10, 0.18, 0.18, 0.18],
            bips=[0.5, 2.0, 2.0, 2.0],
            setpoints=[0.175, 0.175, 0.175, 0.175],
        )
        ctx = context(windows=[w], frequency=np.array([1.2, 1.5, 1.5, 1.5]))
        out = manager.provision(ctx)
        np.testing.assert_allclose(out, BUDGET / N)


class TestThermalAware:
    def policy(self, **kwargs):
        defaults = dict(
            base=UniformPolicy(),
            pair_share_cap=0.45,
            pair_consecutive_limit=2,
            single_share_cap=0.30,
            single_consecutive_limit=2,
        )
        defaults.update(kwargs)
        return ThermalAwarePolicy(**defaults)

    def test_passthrough_when_compliant(self):
        policy = self.policy()
        out = policy.provision(context())
        np.testing.assert_allclose(out, BUDGET / N)

    def test_pair_streak_enforced(self):
        class Hot:
            name = "hot"

            def provision(self, ctx):
                return np.array([0.20, 0.20, 0.15, 0.15])

        policy = self.policy(base=Hot())
        ctx = context(budget=BUDGET)
        pair_cap = 0.45 * BUDGET
        grants = [policy.provision(ctx) for _ in range(6)]
        # First `limit` grants may exceed the cap; afterwards never again
        # more than `limit` consecutive times.
        over = [g[0] + g[1] > pair_cap + 1e-9 for g in grants]
        longest = max(
            len(run) for run in "".join("x" if o else "." for o in over).split(".")
        )
        assert longest <= 2

    def test_single_cap_enforced_and_redistributed(self):
        class Spiky:
            name = "spiky"

            def provision(self, ctx):
                return np.array([0.40, 0.10, 0.10, 0.10])

        policy = self.policy(base=Spiky())
        ctx = context()
        single_cap = 0.30 * BUDGET
        for _ in range(2):
            policy.provision(ctx)
        out = policy.provision(ctx)  # third consecutive: clamp
        assert out[0] <= single_cap + 1e-9
        # Trimmed power redistributed within bounds.
        assert out.sum() <= BUDGET + 1e-9
        assert out.sum() > 0.5

    def test_explicit_pairs_override(self):
        policy = self.policy(adjacent_pairs=frozenset({(1, 2)}))
        ctx = context()
        assert policy.constraints(ctx).adjacent_pairs == frozenset({(1, 2)})

    def test_self_constrained_flag(self):
        assert ThermalAwarePolicy().self_constrained is True


class TestVariationAware:
    def test_stays_within_budget(self):
        policy = VariationAwarePolicy()
        windows = [window([0.17] * 4, [2.0, 0.5, 2.0, 0.5])]
        for _ in range(10):
            out = policy.provision(context(windows=windows))
            assert out.sum() <= BUDGET + 1e-9
            assert np.all(out >= 0.02 - 1e-12)

    def test_explores_after_warmup(self):
        policy = VariationAwarePolicy(step_fraction=0.1)
        w1 = window([0.17] * 4, [2.0] * 4)
        policy.provision(context(windows=[w1]))
        out2 = policy.provision(context(windows=[w1, w1]))
        # After two EPI observations the levels move off the equal split.
        assert not np.allclose(out2, BUDGET / N)

    def test_reset(self):
        policy = VariationAwarePolicy()
        w = window([0.17] * 4, [2.0] * 4)
        policy.provision(context(windows=[w]))
        policy.reset()
        out = policy.provision(context(windows=[]))
        np.testing.assert_allclose(out, BUDGET / N)

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationAwarePolicy(step_fraction=0.0)
        with pytest.raises(ValueError):
            VariationAwarePolicy(hold_intervals=-1)
        with pytest.raises(ValueError):
            VariationAwarePolicy(epi_smoothing=1.5)
