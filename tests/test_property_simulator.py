"""Property-based tests on chip/simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmpsim.chip import Chip
from repro.cmpsim.dvfs import DVFSTable
from repro.config import DEFAULT_CONFIG
from repro.workloads.mixes import mix_for_config

CHIP_CACHE = {}


def get_chip(n_cores: int, n_islands: int) -> Chip:
    key = (n_cores, n_islands)
    if key not in CHIP_CACHE:
        config = DEFAULT_CONFIG.with_islands(n_cores, n_islands)
        CHIP_CACHE[key] = (
            config,
            mix_for_config(config).specs(),
        )
    config, specs = CHIP_CACHE[key]
    return Chip(config, specs)


shapes = st.sampled_from([(4, 2), (8, 4), (8, 8), (16, 4)])
workload_arrays = st.tuples(
    st.floats(0.1, 1.0),   # alpha
    st.floats(0.6, 1.5),   # cpi_base
    st.floats(0.0, 50.0),  # l1_mpki
    st.floats(0.0, 25.0),  # l2_mpki
)


class TestChipInvariants:
    @given(
        shape=shapes,
        wl=workload_arrays,
        freqs=st.lists(st.floats(0.6, 2.0), min_size=8, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_conservation_and_bounds(self, shape, wl, freqs):
        n_cores, n_islands = shape
        chip = get_chip(n_cores, n_islands)
        for i in range(n_islands):
            chip.set_island_frequency(i, freqs[i % len(freqs)])
        alpha, cpi, l1, l2 = wl
        result = chip.compute_interval(
            np.full(n_cores, alpha),
            np.full(n_cores, cpi),
            np.full(n_cores, l1),
            np.full(n_cores, l2),
            dt=5e-4,
        )
        # Conservation: chip = sum(islands) + uncore.
        assert result.chip_power_w == pytest.approx(
            result.island_power_w.sum() + chip.uncore_power_w, rel=1e-9
        )
        # Normalization bound: never above the chip's max power.
        assert result.chip_power_frac <= 1.0 + 1e-9
        # All quantities physical.
        assert np.all(result.core_power_w > 0)
        assert np.all(result.core_ips > 0)
        assert np.all(result.core_instructions >= 0)
        assert np.all((result.core_busy > 0) & (result.core_busy <= 1))

    @given(shape=shapes, wl=workload_arrays)
    @settings(max_examples=20, deadline=None)
    def test_frequency_monotonicity(self, shape, wl):
        """Chip-wide: higher uniform frequency, more power and more BIPS."""
        n_cores, n_islands = shape
        alpha, cpi, l1, l2 = wl
        args = (
            np.full(n_cores, alpha),
            np.full(n_cores, cpi),
            np.full(n_cores, l1),
            np.full(n_cores, l2),
        )
        lo_chip = get_chip(n_cores, n_islands)
        hi_chip = get_chip(n_cores, n_islands)
        for i in range(n_islands):
            lo_chip.set_island_frequency(i, 1.0)
            hi_chip.set_island_frequency(i, 1.8)
        lo = lo_chip.compute_interval(*args, dt=5e-4)
        hi = hi_chip.compute_interval(*args, dt=5e-4)
        assert hi.chip_power_w > lo.chip_power_w
        assert hi.chip_bips >= lo.chip_bips


class TestDVFSTableProperties:
    @given(f=st.floats(-1.0, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_clamp_then_voltage_always_valid(self, f):
        table = DVFSTable()
        clamped = table.clamp(f)
        v = table.voltage_at(clamped)
        assert table.voltages[0] <= v <= table.voltages[-1]

    @given(f=st.floats(0.6, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_quantize_is_nearest_table_point(self, f):
        table = DVFSTable()
        q = table.quantize(f)
        distances = np.abs(table.frequencies - f)
        assert abs(q - f) == pytest.approx(float(distances.min()))

    @given(f=st.floats(0.6, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_quantize_down_never_above(self, f):
        table = DVFSTable()
        assert table.quantize_down(f) <= f + 1e-12

    @given(f1=st.floats(0.6, 2.0), f2=st.floats(0.6, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_voltage_monotone(self, f1, f2):
        table = DVFSTable()
        lo, hi = sorted([f1, f2])
        assert table.voltage_at(hi) >= table.voltage_at(lo) - 1e-12


class TestMixProperties:
    @given(
        n_islands=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=10, deadline=None)
    def test_regrouping_preserves_multiset_of_apps(self, n_islands):
        from repro.workloads.mixes import MIX1

        config = DEFAULT_CONFIG.with_islands(8, n_islands)
        mix = mix_for_config(config, MIX1)
        assert mix.n_cores == 8
        assert mix.n_islands == n_islands
        flat = sorted(name for island in mix.islands for name in island)
        base = sorted(name for island in MIX1.islands for name in island)
        assert flat == base
