"""CPMScheme end-to-end behaviour and the evaluation metrics."""

import numpy as np
import pytest

from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme, run_cpm
from repro.core.metrics import (
    budget_from_percent,
    chip_tracking_metrics,
    island_tracking_metrics,
    performance_degradation,
    performance_degradation_series,
    reference_power,
)
from repro.gpm.policy import UniformPolicy

pytestmark = pytest.mark.slow


class TestCPMScheme:
    def test_tracks_chip_budget(self, cpm_run_80):
        chip = cpm_run_80.telemetry["chip_power_frac"][30:]
        assert chip.mean() == pytest.approx(0.8, abs=0.03)

    def test_never_wildly_overshoots(self, cpm_run_80):
        chip = cpm_run_80.telemetry["chip_power_frac"][30:]
        assert chip.max() < 0.8 * 1.08

    def test_setpoints_sum_to_distributable_budget(self, cpm_run_80):
        ticks = cpm_run_80.telemetry.gpm_tick_indices()
        setpoints = cpm_run_80.telemetry["island_setpoint_frac"][ticks]
        expected = 0.8 - DEFAULT_CONFIG.uncore_fraction
        np.testing.assert_allclose(setpoints.sum(axis=1), expected, atol=1e-9)

    def test_sensed_power_close_to_actual(self, cpm_run_80):
        sensed = cpm_run_80.telemetry["island_sensed_frac"][30:]
        actual = cpm_run_80.telemetry["island_power_frac"][30:]
        assert np.abs(sensed - actual).mean() < 0.02

    def test_high_budget_runs_at_full_speed(self):
        res = run_cpm(DEFAULT_CONFIG, budget_fraction=1.0, n_gpm_intervals=6)
        freqs = res.telemetry["island_frequency_ghz"][30:]
        assert freqs.mean() > 1.9

    def test_custom_policy_injected(self):
        res = run_cpm(
            DEFAULT_CONFIG,
            policy=UniformPolicy(),
            budget_fraction=0.8,
            n_gpm_intervals=4,
        )
        ticks = res.telemetry.gpm_tick_indices()
        setpoints = res.telemetry["island_setpoint_frac"][ticks[2:]]
        # Uniform policy with demand reclaim still near-equal at 80%.
        assert setpoints.std() < 0.02

    def test_scheme_requires_bind_for_calibration(self):
        scheme = CPMScheme()
        with pytest.raises(RuntimeError):
            _ = scheme.calibration

    def test_quantized_mode_supported(self):
        import dataclasses

        from repro.config import DVFSConfig

        cfg = dataclasses.replace(DEFAULT_CONFIG, dvfs=DVFSConfig(mode="quantized"))
        res = run_cpm(cfg, budget_fraction=0.8, n_gpm_intervals=5)
        freqs = res.telemetry["island_frequency_ghz"]
        table = np.array([f for f, _ in cfg.dvfs.vf_table])
        for f in np.unique(freqs):
            assert np.any(np.isclose(table, f))


class TestMetrics:
    def test_degradation_zero_against_self(self, nomgmt_run):
        assert performance_degradation(nomgmt_run, nomgmt_run) == 0.0

    def test_managed_run_degrades(self, cpm_run_80, nomgmt_run):
        deg = performance_degradation(cpm_run_80, nomgmt_run)
        assert 0.0 < deg < 0.15

    def test_degradation_series_shape(self, cpm_run_80, nomgmt_run):
        series = performance_degradation_series(cpm_run_80, nomgmt_run)
        assert series.shape == (12,)
        assert np.all(series < 0.3)

    def test_chip_tracking_metrics(self, cpm_run_80):
        m = chip_tracking_metrics(cpm_run_80, tolerance=0.05, skip_intervals=30)
        assert m.max_overshoot < 0.10

    def test_island_tracking_metrics(self, cpm_run_80):
        m = island_tracking_metrics(cpm_run_80, tolerance=0.05, skip_windows=3)
        assert m.max_overshoot < 0.6

    def test_reference_power_memoized_and_sane(self):
        a = reference_power(DEFAULT_CONFIG)
        b = reference_power(DEFAULT_CONFIG)
        assert a == b
        assert 0.6 < a < 1.0

    def test_budget_from_percent(self):
        b = budget_from_percent(0.8, DEFAULT_CONFIG)
        assert b == pytest.approx(0.8 * reference_power(DEFAULT_CONFIG))
        with pytest.raises(ValueError):
            budget_from_percent(2.0, DEFAULT_CONFIG)

    def test_metrics_validation(self, cpm_run_80):
        with pytest.raises(ValueError):
            chip_tracking_metrics(cpm_run_80, skip_intervals=10_000)


class TestPairedComparison:
    def test_same_seed_pairing_is_exact(self):
        """Two no-management runs with the same seed retire identical
        instruction counts — the basis for paired degradation numbers."""
        from repro.baselines.no_management import NoManagementScheme

        a = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=5).run(3)
        b = Simulation(DEFAULT_CONFIG, NoManagementScheme(), seed=5).run(3)
        assert a.total_instructions == b.total_instructions
