"""System identification of the island power model (Equation 8)."""

import numpy as np
import pytest

from repro.control.identification import (
    fit_system_gain,
    predict_power,
    prediction_error,
)


class TestGainFit:
    def test_recovers_exact_gain(self):
        rng = np.random.default_rng(1)
        df = rng.normal(size=200)
        fit = fit_system_gain(df, 2.79 * df)
        assert fit.gain == pytest.approx(2.79)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n_samples == 200

    def test_noisy_fit_unbiased(self):
        rng = np.random.default_rng(2)
        df = rng.normal(size=5000)
        dp = 0.5 * df + rng.normal(scale=0.05, size=5000)
        fit = fit_system_gain(df, dp)
        assert fit.gain == pytest.approx(0.5, abs=0.01)
        assert 0.9 < fit.r_squared <= 1.0

    def test_through_origin(self):
        """A constant offset must not leak into the gain estimate."""
        df = np.array([1.0, -1.0, 2.0, -2.0])
        dp = 3.0 * df
        assert fit_system_gain(df, dp).gain == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_system_gain([1.0], [1.0])  # too few samples
        with pytest.raises(ValueError):
            fit_system_gain([0.0, 0.0], [1.0, 2.0])  # no excitation
        with pytest.raises(ValueError):
            fit_system_gain([1.0, 2.0], [1.0])  # mismatched shapes


class TestPrediction:
    def test_rollout_integrates(self):
        df = np.array([0.1, -0.2, 0.3])
        rollout = predict_power(1.0, df, gain=2.0)
        np.testing.assert_allclose(rollout, [1.0, 1.2, 0.8, 1.4], atol=1e-12)

    def test_one_step_error_zero_for_exact_model(self):
        rng = np.random.default_rng(3)
        df = rng.normal(scale=0.1, size=50)
        power = predict_power(1.0, df, gain=0.5)
        assert prediction_error(power, df, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_one_step_error_grows_with_gain_mismatch(self):
        rng = np.random.default_rng(4)
        df = rng.normal(scale=0.1, size=200)
        power = predict_power(1.0, df, gain=0.5)
        small = prediction_error(power, df, 0.45)
        large = prediction_error(power, df, 0.1)
        assert large > small > 0.0

    def test_error_requires_aligned_lengths(self):
        with pytest.raises(ValueError):
            prediction_error([1.0, 1.1], [0.1, 0.1], 1.0)

    def test_error_rejects_zero_power(self):
        with pytest.raises(ValueError):
            prediction_error([1.0, 0.0], [0.1], 1.0)
