"""The offline calibration pipeline (system ID + transducers + PID)."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.calibration import (
    WhiteNoiseDVFSScheme,
    _homogeneous_mix,
    calibrate,
    default_calibration,
)
from repro.cmpsim.simulator import Simulation

pytestmark = pytest.mark.slow


class TestWhiteNoiseScheme:
    def test_exercises_the_ladder(self):
        sim = Simulation(
            DEFAULT_CONFIG, WhiteNoiseDVFSScheme(seed=1), budget_fraction=1.0
        )
        result = sim.run(6)
        freqs = result.telemetry["island_frequency_ghz"]
        assert freqs.std() > 0.05
        assert freqs.min() >= 0.6 - 1e-9
        assert freqs.max() <= 2.0 + 1e-9

    def test_centered_in_operating_envelope(self):
        sim = Simulation(
            DEFAULT_CONFIG, WhiteNoiseDVFSScheme(seed=1), budget_fraction=1.0
        )
        result = sim.run(8)
        freqs = result.telemetry["island_frequency_ghz"]
        assert 1.4 < freqs.mean() < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WhiteNoiseDVFSScheme(step_sigma_ghz=0.0)
        with pytest.raises(ValueError):
            WhiteNoiseDVFSScheme(reversion=1.0)


class TestHomogeneousMix:
    def test_every_core_runs_the_benchmark(self):
        mix = _homogeneous_mix(DEFAULT_CONFIG, "canneal")
        assert mix.n_cores == 8
        assert all(
            name == "canneal" for island in mix.islands for name in island
        )


class TestCalibration:
    def test_full_pipeline(self, calibration):
        cal = calibration
        # System gain: positive, in the fraction-per-GHz ballpark.
        assert 0.05 < cal.system_gain < 0.3
        # Every PARSEC benchmark identified with a usable fit.
        assert len(cal.per_benchmark_gains) == 8
        for fit in cal.per_benchmark_gains.values():
            assert fit.gain > 0
            assert fit.r_squared > 0.5
        # Held-out validation (paper Figure 5: well within 10%).
        assert cal.holdout == "bodytrack"
        assert cal.validation_error < 0.10
        # Figure 6: strong linear fits, average R^2 near the paper's 0.96.
        assert cal.mean_transducer_r_squared > 0.9
        # Stability margin comfortably above the design point.
        assert cal.stability_limit > 1.3

    def test_pid_design_stable(self, calibration):
        from repro.control.pole_placement import closed_loop

        assert closed_loop(
            calibration.system_gain, calibration.pid_gains
        ).is_stable()

    def test_island_transducers_per_island(self, calibration):
        assert len(calibration.island_transducers) == 4
        for t in calibration.island_transducers:
            assert t.k0 > 0  # more utilization, more power

    def test_holdout_excluded_from_design_gain(self, calibration):
        design = [
            fit.gain
            for name, fit in calibration.per_benchmark_gains.items()
            if name != calibration.holdout
        ]
        assert calibration.system_gain == pytest.approx(np.mean(design))

    def test_memoization(self):
        a = default_calibration(DEFAULT_CONFIG)
        b = default_calibration(DEFAULT_CONFIG)
        assert a is b

    def test_determinism_across_fresh_runs(self):
        a = calibrate(DEFAULT_CONFIG, n_gpm=4, seed=99)
        b = calibrate(DEFAULT_CONFIG, n_gpm=4, seed=99)
        assert a.system_gain == b.system_gain
        assert a.pid_gains == b.pid_gains

    def test_unknown_holdout_rejected(self):
        with pytest.raises(ValueError):
            calibrate(DEFAULT_CONFIG, holdout="doom", n_gpm=4)
