"""Parallel runner: ordering, bit-identity, and the on-disk result cache."""

import pickle

import numpy as np
import pytest

from repro.baselines.maxbips import MaxBIPSScheme
from repro.baselines.no_management import NoManagementScheme
from repro.cmpsim.simulator import Simulation
from repro.config import DEFAULT_CONFIG
from repro.core.cpm import CPMScheme
from repro.runner import (
    RunRequest,
    cache_key,
    describe_scheme,
    resolve_cache_dir,
    resolve_jobs,
    run_many,
    run_one,
    seed_stream,
)

N_GPM = 3


def request(**overrides):
    defaults = dict(
        config=DEFAULT_CONFIG,
        scheme_factory=CPMScheme,
        budget_fraction=0.8,
        seed=7,
        n_gpm_intervals=N_GPM,
    )
    defaults.update(overrides)
    return RunRequest(**defaults)


def assert_results_identical(a, b):
    for name in a.telemetry._SERIES:
        np.testing.assert_array_equal(
            a.telemetry[name], b.telemetry[name],
            err_msg=f"series {name!r} differs",
        )
    assert a.total_instructions == b.total_instructions


class TestRunRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            request(budget_fraction=0.0)
        with pytest.raises(ValueError):
            request(budget_fraction=1.2)
        with pytest.raises(ValueError):
            request(n_gpm_intervals=0)

    def test_requests_pickle(self):
        restored = pickle.loads(pickle.dumps(request()))
        assert restored.budget_fraction == 0.8
        assert restored.scheme_factory is CPMScheme


class TestRunOne:
    def test_matches_direct_simulation(self):
        direct = Simulation(
            DEFAULT_CONFIG, CPMScheme(), budget_fraction=0.8, seed=7
        ).run(N_GPM)
        assert_results_identical(run_one(request()), direct)


class TestRunMany:
    def test_parallel_bit_identical_to_serial_and_ordered(self):
        requests = [request(budget_fraction=b) for b in (0.75, 0.85, 0.95)]
        serial = run_many(requests, jobs=1)
        parallel = run_many(requests, jobs=2)
        for s, p in zip(serial, parallel):
            assert_results_identical(s, p)
        # Results come back in request order regardless of worker timing.
        powers = [r.mean_chip_power_frac for r in parallel]
        assert powers == sorted(powers)

    def test_mixed_schemes_keep_order(self):
        requests = [
            request(scheme_factory=f)
            for f in (CPMScheme, MaxBIPSScheme, NoManagementScheme)
        ]
        names = [r.scheme_name for r in run_many(requests, jobs=2)]
        assert names == ["cpm", "maxbips", "no-management"]

    def test_unpicklable_factory_falls_back_to_serial(self):
        requests = [
            request(scheme_factory=lambda: CPMScheme(), budget_fraction=b)
            for b in (0.8, 0.9)
        ]
        with pytest.warns(RuntimeWarning, match="serial"):
            results = run_many(requests, jobs=2)
        assert len(results) == 2

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestCacheKey:
    def test_stable_across_equal_requests(self):
        assert cache_key(request()) == cache_key(request())

    @pytest.mark.parametrize(
        "change",
        [
            dict(budget_fraction=0.9),
            dict(seed=8),
            dict(n_gpm_intervals=N_GPM + 1),
            dict(scheme_factory=MaxBIPSScheme),
            dict(config=DEFAULT_CONFIG.with_islands(16, 4)),
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert cache_key(request(**change)) != cache_key(request())

    def test_scheme_params_enter_the_key(self):
        loose = describe_scheme(lambda: CPMScheme(max_step_ghz=1.0))
        tight = describe_scheme(lambda: CPMScheme(max_step_ghz=0.5))
        assert loose != tight


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        first = run_one(request(), cache_dir=tmp_path)
        entries = list(tmp_path.rglob("*.pkl"))
        assert len(entries) == 1
        second = run_one(request(), cache_dir=tmp_path)
        assert_results_identical(first, second)

    def test_different_requests_do_not_collide(self, tmp_path):
        run_one(request(), cache_dir=tmp_path)
        other = run_one(request(budget_fraction=0.9), cache_dir=tmp_path)
        assert len(list(tmp_path.rglob("*.pkl"))) == 2
        assert other.mean_chip_power_frac != pytest.approx(
            run_one(request(), cache_dir=tmp_path).mean_chip_power_frac
        )

    def test_corrupt_entry_recomputed_not_crashed(self, tmp_path):
        expected = run_one(request(), cache_dir=tmp_path)
        (entry,) = tmp_path.rglob("*.pkl")
        entry.write_bytes(b"not a pickle")
        recovered = run_one(request(), cache_dir=tmp_path)
        assert_results_identical(expected, recovered)
        # The corrupt file was replaced by a fresh entry.
        (entry,) = tmp_path.rglob("*.pkl")
        with open(entry, "rb") as fh:
            payload = pickle.load(fh)
        assert payload["key"] == cache_key(request())

    def test_cache_used_by_run_many_workers(self, tmp_path):
        requests = [request(budget_fraction=b) for b in (0.8, 0.9)]
        warm = run_many(requests, jobs=2, cache_dir=tmp_path)
        assert len(list(tmp_path.rglob("*.pkl"))) == 2
        cached = run_many(requests, jobs=2, cache_dir=tmp_path)
        for w, c in zip(warm, cached):
            assert_results_identical(w, c)

    def test_resolve_cache_dir(self, tmp_path, monkeypatch):
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir(tmp_path) == tmp_path
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir("auto") == tmp_path / "env"
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_cache_dir("auto") is None


class TestSeedStream:
    def test_deterministic_and_distinct(self):
        a = seed_stream(7, 5)
        assert a == seed_stream(7, 5)
        assert len(set(a)) == 5
        assert a != seed_stream(8, 5)
        assert seed_stream(7, 5, role="other") != a
