"""repro — reproduction of "CPM in CMPs: Coordinated Power Management in
Chip-Multiprocessors" (Mishra, Srikantaiah, Kandemir, Das; SC 2010).

A two-tier, feedback-control power manager for chip multiprocessors whose
cores are grouped into voltage/frequency islands, together with every
substrate it needs: an interval-based CMP simulator, Wattch/HotLeakage-
style power models, synthetic PARSEC/SPEC workloads, a lumped-RC thermal
network, process-variation modelling, and the MaxBIPS baseline.

Quick start::

    from repro import DEFAULT_CONFIG, run_cpm

    result = run_cpm(DEFAULT_CONFIG, budget_fraction=0.8, n_gpm_intervals=20)
    print(result.mean_chip_power_frac)   # tracks ~0.8
"""

from .config import (
    CMPConfig,
    ControlConfig,
    CoreConfig,
    DEFAULT_CONFIG,
    DVFSConfig,
    MemoryConfig,
    ThermalConfig,
)
from .rng import DEFAULT_SEED, SeedSequenceFactory

# Control substrate.
from .control import (
    DiscretePID,
    DiscreteTransferFunction,
    PIDGains,
    ResponseMetrics,
    design_pid,
    response_metrics,
    stability_gain_limit,
)

# Simulator.
from .cmpsim import Chip, DVFSTable, Simulation, SimulationResult

# Workloads.
from .workloads import MIX1, MIX2, MIX3, Mix, parsec_benchmark, spec_benchmark

# Two-tier CPM and its tiers.
from .core import (
    Calibration,
    CPMScheme,
    calibrate,
    chip_tracking_metrics,
    default_calibration,
    island_tracking_metrics,
    performance_degradation,
    run_cpm,
)
from .gpm import (
    EnergyAwarePolicy,
    GlobalPowerManager,
    PerformanceAwarePolicy,
    ThermalAwarePolicy,
    UniformPolicy,
    VariationAwarePolicy,
)
from .pic import PerIslandController

# Baselines.
from .baselines import MaxBIPSScheme, NoManagementScheme, StaticUniformScheme

__version__ = "1.0.0"

__all__ = [
    "CMPConfig",
    "CPMScheme",
    "Calibration",
    "Chip",
    "ControlConfig",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "DEFAULT_SEED",
    "DVFSConfig",
    "DVFSTable",
    "DiscretePID",
    "DiscreteTransferFunction",
    "EnergyAwarePolicy",
    "GlobalPowerManager",
    "MIX1",
    "MIX2",
    "MIX3",
    "MaxBIPSScheme",
    "MemoryConfig",
    "Mix",
    "NoManagementScheme",
    "PIDGains",
    "PerIslandController",
    "PerformanceAwarePolicy",
    "ResponseMetrics",
    "SeedSequenceFactory",
    "Simulation",
    "SimulationResult",
    "StaticUniformScheme",
    "ThermalAwarePolicy",
    "ThermalConfig",
    "UniformPolicy",
    "VariationAwarePolicy",
    "calibrate",
    "chip_tracking_metrics",
    "default_calibration",
    "design_pid",
    "island_tracking_metrics",
    "parsec_benchmark",
    "performance_degradation",
    "response_metrics",
    "run_cpm",
    "spec_benchmark",
    "stability_gain_limit",
]
