"""Fault injection for robustness studies.

The paper's headline robustness claim is analytic: the closed loop stays
stable for any true system gain up to ``g`` times the design gain
(Eq. 13).  Real deployments face messier failures — sensors that stick,
transducers that drift, actuators that quantize or lag.  This module
provides composable fault wrappers that corrupt a CPM scheme's sensing
and actuation paths *without touching the controllers*, so the stability
and graceful-degradation claims can be exercised end to end (see
``tests/test_fault_injection.py``).

Faults wrap a :class:`~repro.core.cpm.CPMScheme` (or any scheme exposing
``controllers``) and are applied at ``bind`` time::

    scheme = CPMScheme()
    faulty = inject(scheme, BiasedTransducer(bias=+0.01), StuckSensor(...))
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .power.transducer import LinearTransducer
from .rng import SeedSequenceFactory

__all__ = [
    "BiasedTransducer",
    "Fault",
    "FaultySchemeWrapper",
    "GainError",
    "LaggedActuator",
    "NoisySensor",
    "StuckSensor",
    "inject",
]


class Fault:
    """Base class: a mutation applied to a bound scheme's controllers."""

    def apply(self, scheme, sim) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class GainError(Fault):
    """The plant's true gain differs from the identified one.

    Implemented by scaling every PID's gains *down* by ``multiplier`` —
    equivalent, from the loop's perspective, to the true plant gain being
    ``multiplier`` times the design gain (the quantity Eq. 13 bounds).
    """

    multiplier: float

    def __post_init__(self):
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            controller.pid.gains = controller.pid.gains.scaled(self.multiplier)


@dataclass
class BiasedTransducer(Fault):
    """Systematic sensing offset: every island's sensed power is shifted
    by ``bias`` (fraction of max chip power).  Models calibration drift;
    the integral term cannot remove it because the loop regulates the
    *sensed* value."""

    bias: float

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            old = controller.transducer
            controller.transducer = LinearTransducer(
                k0=old.k0, k1=old.k1 + self.bias, r_squared=old.r_squared
            )


@dataclass
class NoisySensor(Fault):
    """Additive white noise on the utilization reading."""

    sigma: float
    seed: int = 0

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def apply(self, scheme, sim) -> None:
        rng = SeedSequenceFactory(self.seed).generator("faults/noisy-sensor")

        for controller in scheme.controllers:
            original = controller.invoke

            def invoke(setpoint, utilization, _orig=original):
                noisy = utilization + float(rng.normal(0.0, self.sigma))
                return _orig(setpoint, max(noisy, 0.0))

            controller.invoke = invoke


@dataclass
class StuckSensor(Fault):
    """One island's utilization reading freezes at its first value after
    ``stick_after`` invocations — the classic dead-counter failure."""

    island: int
    stick_after: int = 20

    def __post_init__(self):
        if self.island < 0:
            raise ValueError("island must be non-negative")
        if self.stick_after < 0:
            raise ValueError("stick_after must be non-negative")

    def apply(self, scheme, sim) -> None:
        if self.island >= len(scheme.controllers):
            raise ValueError(
                f"island {self.island} out of range "
                f"({len(scheme.controllers)} controllers)"
            )
        controller = scheme.controllers[self.island]
        original = controller.invoke
        state = {"count": 0, "stuck_value": None}

        def invoke(setpoint, utilization, _orig=original):
            state["count"] += 1
            if state["count"] > self.stick_after:
                if state["stuck_value"] is None:
                    state["stuck_value"] = utilization
                utilization = state["stuck_value"]
            return _orig(setpoint, utilization)

        controller.invoke = invoke


@dataclass
class LaggedActuator(Fault):
    """Frequency commands take effect one PIC interval late (an extra
    sample of loop delay on top of the inherent one)."""

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            actuator = controller.actuator
            original = actuator.apply
            pending = {"value": actuator.frequency}

            def apply_lagged(frequency, _orig=original, _p=pending):
                delayed = _p["value"]
                _p["value"] = frequency
                return _orig(delayed)

            actuator.apply = apply_lagged


class FaultySchemeWrapper:
    """A scheme decorator that applies faults after the inner bind."""

    def __init__(self, inner, faults: list[Fault]):
        self.inner = inner
        self.faults = list(faults)
        self.name = f"{inner.name}+faults"

    def bind(self, sim) -> None:
        self.inner.bind(sim)
        for fault in self.faults:
            fault.apply(self.inner, sim)

    def on_gpm(self, sim) -> None:
        self.inner.on_gpm(sim)

    def on_pic(self, sim) -> None:
        self.inner.on_pic(sim)


def inject(scheme, *faults: Fault) -> FaultySchemeWrapper:
    """Wrap ``scheme`` so ``faults`` are applied when it binds."""
    if not faults:
        raise ValueError("need at least one fault")
    return FaultySchemeWrapper(scheme, list(faults))
