"""Fault injection for robustness studies.

The paper's headline robustness claim is analytic: the closed loop stays
stable for any true system gain up to ``g`` times the design gain
(Eq. 13).  Real deployments face messier failures — sensors that stick,
transducers that drift, actuators that quantize or lag.  This module
provides composable fault wrappers that corrupt a CPM scheme's sensing
and actuation paths *without touching the controllers*, so the stability
and graceful-degradation claims can be exercised end to end (see
``tests/test_fault_injection.py``).

Faults wrap a :class:`~repro.core.cpm.CPMScheme` (or any scheme exposing
``controllers``) and are applied at ``bind`` time::

    scheme = CPMScheme()
    faulty = inject(scheme, BiasedTransducer(bias=+0.01), StuckSensor(...))

Two fault families coexist:

* **bind-time faults** (the originals) corrupt the paths for the whole
  run — gain error, calibration bias, sensor noise;
* **scheduled faults** carry a :class:`FaultWindow` and activate/clear at
  scripted simulator ticks — transient sensor dropout, stuck-at
  actuator, missed GPM invocations.  These drive the chaos harness
  (``repro chaos``): a fault that *clears* is what lets recovery latency
  be measured.

The wrappers read ``sim.tick`` at call time, never a wall clock, so
faulty runs stay bit-identical across ``jobs=N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .power.transducer import LinearTransducer
from .rng import SeedSequenceFactory

__all__ = [
    "BiasedTransducer",
    "Fault",
    "FaultWindow",
    "FaultySchemeWrapper",
    "GainError",
    "LaggedActuator",
    "MissedGPMFault",
    "NoisySensor",
    "ScheduledStuckSensor",
    "StuckActuatorFault",
    "StuckSensor",
    "TransientSensorDropout",
    "inject",
]


class Fault:
    """Base class: a mutation applied to a bound scheme's controllers."""

    def apply(self, scheme, sim) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def suppresses_gpm(self, sim) -> bool:
        """Whether the GPM invocation at the current tick should be lost.

        Overridden by :class:`MissedGPMFault`; everything else returns
        False.  Queried by :class:`FaultySchemeWrapper` on every GPM
        tick.
        """
        del sim
        return False


@dataclass(frozen=True)
class FaultWindow:
    """Half-open tick interval ``[start, end)`` during which a fault is live.

    Ticks are PIC intervals (``sim.tick``); multiply GPM intervals by
    ``pics_per_gpm`` to schedule against the supervisor tier.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.end <= self.start:
            raise ValueError("end must be after start")

    def active(self, tick: int) -> bool:
        return self.start <= tick < self.end

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class GainError(Fault):
    """The plant's true gain differs from the identified one.

    Implemented by scaling every PID's gains *down* by ``multiplier`` —
    equivalent, from the loop's perspective, to the true plant gain being
    ``multiplier`` times the design gain (the quantity Eq. 13 bounds).
    """

    multiplier: float

    def __post_init__(self):
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            controller.pid.gains = controller.pid.gains.scaled(self.multiplier)


@dataclass
class BiasedTransducer(Fault):
    """Systematic sensing offset: every island's sensed power is shifted
    by ``bias`` (fraction of max chip power).  Models calibration drift;
    the integral term cannot remove it because the loop regulates the
    *sensed* value."""

    bias: float

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            old = controller.transducer
            controller.transducer = LinearTransducer(
                k0=old.k0, k1=old.k1 + self.bias, r_squared=old.r_squared
            )


@dataclass
class NoisySensor(Fault):
    """Additive white noise on the utilization reading."""

    sigma: float
    seed: int = 0

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def apply(self, scheme, sim) -> None:
        rng = SeedSequenceFactory(self.seed).generator("faults/noisy-sensor")

        for controller in scheme.controllers:
            original = controller.invoke

            def invoke(setpoint, utilization, _orig=original):  # lint: ignore[EFF004] one noise stream shared across controllers is the modelled fault: draws must interleave in invocation order
                noisy = utilization + float(rng.normal(0.0, self.sigma))
                return _orig(setpoint, max(noisy, 0.0))

            controller.invoke = invoke


@dataclass
class StuckSensor(Fault):
    """One island's utilization reading freezes at its first value after
    ``stick_after`` invocations — the classic dead-counter failure."""

    island: int
    stick_after: int = 20

    def __post_init__(self):
        if self.island < 0:
            raise ValueError("island must be non-negative")
        if self.stick_after < 0:
            raise ValueError("stick_after must be non-negative")

    def apply(self, scheme, sim) -> None:
        if self.island >= len(scheme.controllers):
            raise ValueError(
                f"island {self.island} out of range "
                f"({len(scheme.controllers)} controllers)"
            )
        controller = scheme.controllers[self.island]
        original = controller.invoke
        state = {"count": 0, "stuck_value": None}

        def invoke(setpoint, utilization, _orig=original):
            state["count"] += 1
            if state["count"] > self.stick_after:
                if state["stuck_value"] is None:
                    state["stuck_value"] = utilization
                utilization = state["stuck_value"]
            return _orig(setpoint, utilization)

        controller.invoke = invoke


def _controller_of(scheme, island: int):
    if island >= len(scheme.controllers):
        raise ValueError(
            f"island {island} out of range ({len(scheme.controllers)} controllers)"
        )
    return scheme.controllers[island]


@dataclass
class TransientSensorDropout(Fault):
    """One island's utilization reads NaN while the window is active.

    The nastiest sensor failure: without a guard the NaN flows through
    the EWMA smoother and poisons the PID state for the *rest of the
    run*, not just the dropout — the fault clears but the controller
    never does.
    """

    island: int
    window: FaultWindow

    def apply(self, scheme, sim) -> None:
        controller = _controller_of(scheme, self.island)
        original = controller.invoke

        def invoke(setpoint, utilization, _orig=original, _sim=sim):
            if self.window.active(_sim.tick):
                utilization = float("nan")
            return _orig(setpoint, utilization)

        controller.invoke = invoke


@dataclass
class ScheduledStuckSensor(Fault):
    """One island's utilization freezes at its last pre-fault value while
    the window is active, then unsticks — the recoverable variant of
    :class:`StuckSensor`."""

    island: int
    window: FaultWindow

    def apply(self, scheme, sim) -> None:
        controller = _controller_of(scheme, self.island)
        original = controller.invoke
        state: dict = {"held": None}

        def invoke(setpoint, utilization, _orig=original, _sim=sim):
            if self.window.active(_sim.tick):
                if state["held"] is None:
                    state["held"] = utilization
                utilization = state["held"]
            else:
                state["held"] = None
            return _orig(setpoint, utilization)

        controller.invoke = invoke


@dataclass
class StuckActuatorFault(Fault):
    """One island's DVFS knob ignores commands while the window is active.

    The knob wedges at ``frequency_ghz`` (default: whatever it was when
    the fault struck) — commands from the PID *and* from the sensor
    guard's fail-safe clamp are both lost, exactly like a wedged voltage
    regulator.  Only the GPM tier can contain this one, by provisioning
    around the island; wedging at the top of the ladder is the scenario
    that forces a quarantine.
    """

    island: int
    window: FaultWindow
    #: Frequency the knob wedges at; ``None`` holds the pre-fault value.
    frequency_ghz: float | None = None

    def apply(self, scheme, sim) -> None:
        actuator = _controller_of(scheme, self.island).actuator
        original = actuator.apply

        def apply_stuck(frequency, _orig=original, _sim=sim, _act=actuator):
            if self.window.active(_sim.tick):
                wedged = (
                    _act.frequency
                    if self.frequency_ghz is None
                    else self.frequency_ghz
                )
                return _orig(wedged)
            return _orig(frequency)

        actuator.apply = apply_stuck


@dataclass
class MissedGPMFault(Fault):
    """GPM invocations are lost while the window is active.

    Models a hung or preempted supervisor: the islands keep tracking
    stale set-points until the GPM comes back.  Applied by
    :class:`FaultySchemeWrapper` (nothing on the scheme is mutated).
    """

    window: FaultWindow

    def apply(self, scheme, sim) -> None:
        del scheme, sim  # enforced via suppresses_gpm, not mutation

    def suppresses_gpm(self, sim) -> bool:
        return self.window.active(sim.tick)


@dataclass
class LaggedActuator(Fault):
    """Frequency commands take effect one PIC interval late (an extra
    sample of loop delay on top of the inherent one)."""

    def apply(self, scheme, sim) -> None:
        for controller in scheme.controllers:
            actuator = controller.actuator
            original = actuator.apply
            pending = {"value": actuator.frequency}

            def apply_lagged(frequency, _orig=original, _p=pending):
                delayed = _p["value"]
                _p["value"] = frequency
                return _orig(delayed)

            actuator.apply = apply_lagged


class FaultySchemeWrapper:
    """A scheme decorator that applies faults after the inner bind.

    Unknown attributes delegate to the inner scheme, so telemetry access
    like ``wrapper.log`` or ``wrapper.controllers`` works unchanged.
    Re-binding is safe: faults are only re-applied to controllers that
    have not already been mutated, so a scheme that keeps its controller
    objects across binds never gets a fault stacked twice.
    """

    #: Marker attribute set on every controller a fault pass has touched.
    _MARK = "_faults_applied"

    def __init__(self, inner, faults: list[Fault]):
        self.inner = inner
        self.faults = list(faults)
        self.name = f"{inner.name}+faults"

    def __getattr__(self, name):
        # Bypass normal lookup for our own storage to avoid recursion
        # while unpickling (inner is absent until __dict__ is restored).
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def bind(self, sim) -> None:
        self.inner.bind(sim)
        controllers = getattr(self.inner, "controllers", None) or []
        if any(getattr(c, self._MARK, False) for c in controllers):
            # Re-bind with surviving controller objects: the fault
            # wrappers from the previous bind are still in place, and
            # applying them again would stack (double noise, double lag).
            return
        for fault in self.faults:
            fault.apply(self.inner, sim)
        for controller in controllers:
            setattr(controller, self._MARK, True)

    def on_gpm(self, sim) -> None:
        if any(fault.suppresses_gpm(sim) for fault in self.faults):
            return
        self.inner.on_gpm(sim)

    def on_pic(self, sim) -> None:
        self.inner.on_pic(sim)


def inject(scheme, *faults: Fault) -> FaultySchemeWrapper:
    """Wrap ``scheme`` so ``faults`` are applied when it binds."""
    if not faults:
        raise ValueError("need at least one fault")
    return FaultySchemeWrapper(scheme, list(faults))
