"""Synthetic models of the SPEC applications used in the thermal study.

The paper's thermal-aware evaluation (Figure 18) schedules four CPU-bound
SPEC CPU2000 applications — mesa, bzip2, gcc and sixtrack — one per core
on an 8-core CMP with single-core islands.  The study only needs
applications that all demand a large share of chip power (so the thermal
constraints actually bind); these models are therefore all CPU-bound with
high activity, differentiated by their phase texture.
"""

from __future__ import annotations

from typing import Dict

from .benchmark import CPU_BOUND, BenchmarkSpec, MemoryBehavior
from .phases import Phase

__all__ = ["KB", "MB", "SPEC_BENCHMARKS", "spec_benchmark"]

KB = 1024
MB = 1024 * 1024

SPEC_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "mesa": BenchmarkSpec(
        name="mesa",
        kind=CPU_BOUND,
        suite="spec",
        description="3-D graphics library; steady rasterization compute",
        phases=(
            Phase(alpha=0.94, cpi_base=0.85, l1_mpki=5.0, l2_mpki=0.30),
            Phase(alpha=0.89, cpi_base=0.95, l1_mpki=7.0, l2_mpki=0.50),
        ),
        memory=MemoryBehavior(
            working_set_bytes=12 * KB,
            footprint_bytes=8 * MB,
            streaming_fraction=0.30,
            scatter_fraction=0.05,
        ),
        mean_dwell_intervals=40.0,
    ),
    "bzip2": BenchmarkSpec(
        name="bzip2",
        kind=CPU_BOUND,
        suite="spec",
        description="compression; alternating compress/decompress phases",
        phases=(
            Phase(alpha=0.91, cpi_base=0.95, l1_mpki=9.0, l2_mpki=0.80),
            Phase(alpha=0.82, cpi_base=1.10, l1_mpki=13.0, l2_mpki=1.40),
        ),
        memory=MemoryBehavior(
            working_set_bytes=14 * KB,
            footprint_bytes=16 * MB,
            streaming_fraction=0.45,
            scatter_fraction=0.05,
        ),
        mean_dwell_intervals=25.0,
        noise_sigma=0.020,
    ),
    "gcc": BenchmarkSpec(
        name="gcc",
        kind=CPU_BOUND,
        suite="spec",
        description="compiler; branchy integer code, irregular phases",
        phases=(
            Phase(alpha=0.86, cpi_base=1.05, l1_mpki=11.0, l2_mpki=1.00),
            Phase(alpha=0.78, cpi_base=1.20, l1_mpki=15.0, l2_mpki=1.80),
            Phase(alpha=0.92, cpi_base=0.95, l1_mpki=8.0, l2_mpki=0.60),
        ),
        memory=MemoryBehavior(
            working_set_bytes=16 * KB,
            footprint_bytes=24 * MB,
            streaming_fraction=0.10,
            scatter_fraction=0.20,
        ),
        mean_dwell_intervals=15.0,
        noise_sigma=0.030,
    ),
    "sixtrack": BenchmarkSpec(
        name="sixtrack",
        kind=CPU_BOUND,
        suite="spec",
        description="particle tracking; dense FP loops, very steady",
        phases=(
            Phase(alpha=0.96, cpi_base=0.80, l1_mpki=4.0, l2_mpki=0.25),
        ),
        memory=MemoryBehavior(
            working_set_bytes=10 * KB,
            footprint_bytes=4 * MB,
            streaming_fraction=0.20,
            scatter_fraction=0.02,
        ),
        mean_dwell_intervals=100.0,
        noise_sigma=0.008,
    ),
}


def spec_benchmark(name: str) -> BenchmarkSpec:
    """Look up a SPEC model by name."""
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC benchmark {name!r}; known: {sorted(SPEC_BENCHMARKS)}"
        ) from None
