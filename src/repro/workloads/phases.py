"""Markov phase machine with AR(1) activity noise.

Real applications move through program phases with distinct IPC and memory
behaviour and stay in each phase for many scheduler intervals.  The GPM
exists precisely because of this time variation ("accurate provisioning of
power ... based on time varying workload characteristics"), so the
synthetic workloads need phases that persist for a few GPM intervals and
then shift.

A :class:`PhaseMachine` holds a set of :class:`Phase` states with
geometric dwell times; within a phase, the architectural activity factor
wanders with an AR(1) process so consecutive PIC intervals are correlated
but not constant.

Workload evolution is independent of the control loop (phases and noise
never observe frequencies or power), so the machine offers two exactly
equivalent interfaces: per-interval :meth:`PhaseMachine.advance`, and the
vectorized :meth:`PhaseMachine.advance_block` which produces a whole run's
samples in one pass.  Each random *kind* (phase-transition coin, jump
offset, noise innovation) draws from its own child stream, so the two
paths consume the same draws in the same order and are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..rng import split

__all__ = ["Phase", "PhaseBlock", "PhaseMachine", "PhaseState"]

#: Lower clip bound on the noisy activity factor.
_ALPHA_FLOOR = 0.05


@dataclass(frozen=True)
class Phase:
    """One program phase: the workload state the CPI stack consumes."""

    #: Architectural activity during busy cycles (issue-slot occupancy).
    alpha: float
    #: Base CPI of the phase with a perfect memory hierarchy.
    cpi_base: float
    #: L1 misses (that hit in L2) per kilo-instruction.
    l1_mpki: float
    #: L2 misses (off-chip accesses) per kilo-instruction.
    l2_mpki: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.cpi_base <= 0:
            raise ValueError("cpi_base must be positive")
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise ValueError("miss rates must be non-negative")


@dataclass(frozen=True)
class PhaseState:
    """Instantaneous phase-machine output for one interval."""

    phase: Phase
    alpha: float  # phase alpha + AR(1) noise, clipped to (0, 1]


@dataclass(frozen=True)
class PhaseBlock:
    """A batch of consecutive intervals, one array entry per interval."""

    phase_index: np.ndarray
    alpha: np.ndarray
    cpi_base: np.ndarray
    l1_mpki: np.ndarray
    l2_mpki: np.ndarray

    @property
    def n_intervals(self) -> int:
        return int(self.alpha.shape[0])


class PhaseMachine:
    """Markov chain over phases plus AR(1) noise on the activity factor.

    Parameters
    ----------
    phases:
        The phase set; dwell in each is geometric.
    mean_dwell_intervals:
        Expected number of ``advance`` calls spent in a phase before
        transitioning (one call per PIC interval in the simulator).
    noise_sigma:
        Standard deviation of the AR(1) innovation on alpha.
    noise_rho:
        AR(1) autocorrelation; 0 gives white noise, values near 1 give
        slowly-wandering activity.
    rng:
        Generator owning this machine's randomness.  The initial phase is
        drawn from it directly; the per-interval draws come from three
        child streams split off it (see :func:`repro.rng.split`), one per
        random kind, so batched and per-interval generation agree.
    """

    def __init__(
        self,
        phases: Sequence[Phase],
        mean_dwell_intervals: float,
        noise_sigma: float,
        noise_rho: float,
        rng: np.random.Generator,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if mean_dwell_intervals < 1.0:
            raise ValueError("mean dwell must be at least one interval")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if not 0.0 <= noise_rho < 1.0:
            raise ValueError("noise_rho must be in [0, 1)")
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.transition_probability = 1.0 / mean_dwell_intervals
        self.noise_sigma = noise_sigma
        self.noise_rho = noise_rho
        self._current = int(rng.integers(len(self.phases)))
        self._transition_rng, self._jump_rng, self._noise_rng = split(rng, 3)
        self._noise = 0.0
        # Per-phase parameter lookup tables for the vectorized path.
        self._phase_alpha = np.array([p.alpha for p in self.phases])
        self._phase_cpi_base = np.array([p.cpi_base for p in self.phases])
        self._phase_l1_mpki = np.array([p.l1_mpki for p in self.phases])
        self._phase_l2_mpki = np.array([p.l2_mpki for p in self.phases])

    @property
    def current_phase_index(self) -> int:
        return self._current

    def advance(self) -> PhaseState:
        """Advance one interval; maybe transition phase, evolve noise."""
        if (
            len(self.phases) > 1
            and self._transition_rng.random() < self.transition_probability
        ):
            # Jump to a uniformly-chosen *different* phase.
            offset = int(self._jump_rng.integers(1, len(self.phases)))
            self._current = (self._current + offset) % len(self.phases)
        self._noise = self.noise_rho * self._noise + self._noise_rng.normal(
            0.0, self.noise_sigma
        )
        phase = self.phases[self._current]
        alpha = float(np.clip(phase.alpha + self._noise, _ALPHA_FLOOR, 1.0))
        return PhaseState(phase=phase, alpha=alpha)

    def advance_block(self, n_intervals: int) -> PhaseBlock:
        """Advance ``n_intervals`` intervals in one vectorized pass.

        Consumes exactly the draws ``n_intervals`` successive
        :meth:`advance` calls would (same streams, same order), so the
        resulting samples are bit-identical to the per-interval path —
        the batch is a faster implementation, not an approximation.
        """
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        n = int(n_intervals)
        n_phases = len(self.phases)
        if n_phases > 1:
            transition = self._transition_rng.random(n) < self.transition_probability
            offsets = np.zeros(n, dtype=np.int64)
            n_jumps = int(np.count_nonzero(transition))
            if n_jumps:
                offsets[transition] = self._jump_rng.integers(
                    1, n_phases, size=n_jumps
                )
            indices = (self._current + np.cumsum(offsets)) % n_phases
            self._current = int(indices[-1])
        else:
            indices = np.zeros(n, dtype=np.int64)
        innovations = self._noise_rng.normal(0.0, self.noise_sigma, size=n)
        noise = _ar1_scan(self.noise_rho, self._noise, innovations)
        self._noise = float(noise[-1])
        alpha = np.clip(self._phase_alpha[indices] + noise, _ALPHA_FLOOR, 1.0)
        return PhaseBlock(
            phase_index=indices,
            alpha=alpha,
            cpi_base=self._phase_cpi_base[indices],
            l1_mpki=self._phase_l1_mpki[indices],
            l2_mpki=self._phase_l2_mpki[indices],
        )


def _ar1_scan(rho: float, initial: float, innovations: np.ndarray) -> np.ndarray:
    """``y[t] = rho * y[t-1] + e[t]`` with ``y[-1] = initial``.

    Uses :func:`scipy.signal.lfilter` (a first-order IIR filter is exactly
    this recurrence, and its direct-form-II-transposed update performs the
    same multiply-add per step) with a pure-Python fallback.  Both paths
    are bit-identical to the scalar recurrence in :meth:`PhaseMachine.advance`.
    """
    try:
        from scipy.signal import lfilter
    except ImportError:  # pragma: no cover - scipy is an install requirement
        lfilter = None
    if lfilter is None:  # pragma: no cover
        out = np.empty_like(innovations)
        value = initial
        for t, e in enumerate(innovations):
            value = rho * value + e
            out[t] = value
        return out
    y, _ = lfilter([1.0], [1.0, -rho], innovations, zi=[rho * initial])
    return np.asarray(y)
