"""Markov phase machine with AR(1) activity noise.

Real applications move through program phases with distinct IPC and memory
behaviour and stay in each phase for many scheduler intervals.  The GPM
exists precisely because of this time variation ("accurate provisioning of
power ... based on time varying workload characteristics"), so the
synthetic workloads need phases that persist for a few GPM intervals and
then shift.

A :class:`PhaseMachine` holds a set of :class:`Phase` states with
geometric dwell times; within a phase, the architectural activity factor
wanders with an AR(1) process so consecutive PIC intervals are correlated
but not constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Phase", "PhaseMachine", "PhaseState"]


@dataclass(frozen=True)
class Phase:
    """One program phase: the workload state the CPI stack consumes."""

    #: Architectural activity during busy cycles (issue-slot occupancy).
    alpha: float
    #: Base CPI of the phase with a perfect memory hierarchy.
    cpi_base: float
    #: L1 misses (that hit in L2) per kilo-instruction.
    l1_mpki: float
    #: L2 misses (off-chip accesses) per kilo-instruction.
    l2_mpki: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.cpi_base <= 0:
            raise ValueError("cpi_base must be positive")
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise ValueError("miss rates must be non-negative")


@dataclass(frozen=True)
class PhaseState:
    """Instantaneous phase-machine output for one interval."""

    phase: Phase
    alpha: float  # phase alpha + AR(1) noise, clipped to (0, 1]


class PhaseMachine:
    """Markov chain over phases plus AR(1) noise on the activity factor.

    Parameters
    ----------
    phases:
        The phase set; dwell in each is geometric.
    mean_dwell_intervals:
        Expected number of ``advance`` calls spent in a phase before
        transitioning (one call per PIC interval in the simulator).
    noise_sigma:
        Standard deviation of the AR(1) innovation on alpha.
    noise_rho:
        AR(1) autocorrelation; 0 gives white noise, values near 1 give
        slowly-wandering activity.
    rng:
        Generator owning this machine's randomness.
    """

    def __init__(
        self,
        phases: Sequence[Phase],
        mean_dwell_intervals: float,
        noise_sigma: float,
        noise_rho: float,
        rng: np.random.Generator,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if mean_dwell_intervals < 1.0:
            raise ValueError("mean dwell must be at least one interval")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if not 0.0 <= noise_rho < 1.0:
            raise ValueError("noise_rho must be in [0, 1)")
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.transition_probability = 1.0 / mean_dwell_intervals
        self.noise_sigma = noise_sigma
        self.noise_rho = noise_rho
        self._rng = rng
        self._current = int(rng.integers(len(self.phases)))
        self._noise = 0.0

    @property
    def current_phase_index(self) -> int:
        return self._current

    def advance(self) -> PhaseState:
        """Advance one interval; maybe transition phase, evolve noise."""
        if len(self.phases) > 1 and self._rng.random() < self.transition_probability:
            # Jump to a uniformly-chosen *different* phase.
            offset = int(self._rng.integers(1, len(self.phases)))
            self._current = (self._current + offset) % len(self.phases)
        self._noise = self.noise_rho * self._noise + self._rng.normal(
            0.0, self.noise_sigma
        )
        phase = self.phases[self._current]
        alpha = float(np.clip(phase.alpha + self._noise, 0.05, 1.0))
        return PhaseState(phase=phase, alpha=alpha)
