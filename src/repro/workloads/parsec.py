"""Synthetic models of the eight PARSEC benchmarks of Table II.

The numbers below are *synthetic calibrations*, not PARSEC measurements:
each benchmark gets phases whose base CPI, activity and miss rates place
it in the CPU-bound/memory-bound class the paper assigns it (Table III)
and give it a plausible amount of phase variation for its algorithm
(x264's frame types, streamcluster's batch boundaries, ...).  What the
experiments depend on is the *class structure* — four frequency-sensitive
applications and four frequency-insensitive ones with distinguishable
phase behaviour — which these models deliver by construction.

Specs are defined for the ``simlarge`` input set; the paper ran the
memory-bound applications with ``native`` inputs ("we found that when we
use the native input set, the benchmarks become memory intensive"), which
:func:`repro.workloads.benchmark.BenchmarkSpec.with_input_set` derives.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .benchmark import CPU_BOUND, MEMORY_BOUND, BenchmarkSpec, MemoryBehavior
from .phases import Phase

__all__ = ["KB", "MB", "PARSEC_BENCHMARKS", "SHORT_NAMES", "parsec_benchmark"]

KB = 1024
MB = 1024 * 1024


def _spec(
    name: str,
    kind: str,
    description: str,
    phases: Tuple[Phase, ...],
    memory: MemoryBehavior,
    **kwargs,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        kind=kind,
        suite="parsec",
        description=description,
        phases=phases,
        memory=memory,
        **kwargs,
    )


PARSEC_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "blackscholes": _spec(
        "blackscholes",
        CPU_BOUND,
        "PDE option pricing; tiny working set, very regular compute",
        phases=(
            Phase(alpha=0.96, cpi_base=0.80, l1_mpki=3.0, l2_mpki=0.20),
            Phase(alpha=0.90, cpi_base=0.90, l1_mpki=4.5, l2_mpki=0.35),
        ),
        memory=MemoryBehavior(
            working_set_bytes=8 * KB,
            footprint_bytes=2 * MB,
            streaming_fraction=0.15,
            scatter_fraction=0.02,
        ),
        noise_sigma=0.010,
    ),
    "bodytrack": _spec(
        "bodytrack",
        CPU_BOUND,
        "body tracking; particle-filter compute with per-frame phases",
        phases=(
            Phase(alpha=0.93, cpi_base=0.90, l1_mpki=6.0, l2_mpki=0.45),
            Phase(alpha=0.84, cpi_base=1.05, l1_mpki=9.0, l2_mpki=0.80),
            Phase(alpha=0.89, cpi_base=0.95, l1_mpki=7.0, l2_mpki=0.55),
        ),
        memory=MemoryBehavior(
            working_set_bytes=12 * KB,
            footprint_bytes=8 * MB,
            streaming_fraction=0.25,
            scatter_fraction=0.05,
        ),
        mean_dwell_intervals=30.0,
    ),
    "freqmine": _spec(
        "freqmine",
        CPU_BOUND,
        "frequent itemset mining; FP-tree traversal with moderate locality",
        phases=(
            Phase(alpha=0.88, cpi_base=0.95, l1_mpki=8.0, l2_mpki=0.60),
            Phase(alpha=0.80, cpi_base=1.10, l1_mpki=12.0, l2_mpki=1.20),
        ),
        memory=MemoryBehavior(
            working_set_bytes=14 * KB,
            footprint_bytes=16 * MB,
            streaming_fraction=0.10,
            scatter_fraction=0.10,
        ),
        mean_dwell_intervals=50.0,
    ),
    "x264": _spec(
        "x264",
        CPU_BOUND,
        "H.264 video encoding; frame-type phases (I/P/B)",
        phases=(
            Phase(alpha=0.96, cpi_base=0.85, l1_mpki=5.0, l2_mpki=0.30),
            Phase(alpha=0.86, cpi_base=1.00, l1_mpki=8.0, l2_mpki=0.70),
            Phase(alpha=0.76, cpi_base=1.05, l1_mpki=10.0, l2_mpki=1.00),
        ),
        memory=MemoryBehavior(
            working_set_bytes=16 * KB,
            footprint_bytes=24 * MB,
            streaming_fraction=0.35,
            scatter_fraction=0.05,
        ),
        mean_dwell_intervals=20.0,
        noise_sigma=0.025,
    ),
    "streamcluster": _spec(
        "streamcluster",
        MEMORY_BOUND,
        "online clustering kernel; streams points, little reuse",
        phases=(
            Phase(alpha=0.75, cpi_base=1.00, l1_mpki=28.0, l2_mpki=6.0),
            Phase(alpha=0.77, cpi_base=1.10, l1_mpki=34.0, l2_mpki=9.0),
        ),
        memory=MemoryBehavior(
            working_set_bytes=256 * KB,
            footprint_bytes=96 * MB,
            streaming_fraction=0.70,
            scatter_fraction=0.10,
        ),
        mean_dwell_intervals=60.0,
    ),
    "facesim": _spec(
        "facesim",
        MEMORY_BOUND,
        "face-motion FE simulation; sparse solver sweeps over large meshes",
        phases=(
            Phase(alpha=0.77, cpi_base=1.10, l1_mpki=22.0, l2_mpki=4.5),
            Phase(alpha=0.71, cpi_base=1.20, l1_mpki=28.0, l2_mpki=7.0),
            Phase(alpha=0.80, cpi_base=1.05, l1_mpki=18.0, l2_mpki=3.5),
        ),
        memory=MemoryBehavior(
            working_set_bytes=192 * KB,
            footprint_bytes=128 * MB,
            streaming_fraction=0.40,
            scatter_fraction=0.25,
        ),
        mean_dwell_intervals=45.0,
    ),
    "canneal": _spec(
        "canneal",
        MEMORY_BOUND,
        "cache-aware simulated annealing; pointer chasing over a huge netlist",
        phases=(
            Phase(alpha=0.68, cpi_base=1.25, l1_mpki=36.0, l2_mpki=9.0),
            Phase(alpha=0.63, cpi_base=1.35, l1_mpki=42.0, l2_mpki=12.0),
        ),
        memory=MemoryBehavior(
            working_set_bytes=512 * KB,
            footprint_bytes=256 * MB,
            streaming_fraction=0.05,
            scatter_fraction=0.75,
        ),
        mean_dwell_intervals=80.0,
        noise_sigma=0.020,
    ),
    "vips": _spec(
        "vips",
        MEMORY_BOUND,
        "image processing pipeline; tile streaming with moderate reuse",
        phases=(
            Phase(alpha=0.79, cpi_base=1.00, l1_mpki=24.0, l2_mpki=5.0),
            Phase(alpha=0.73, cpi_base=1.10, l1_mpki=30.0, l2_mpki=8.0),
            Phase(alpha=0.84, cpi_base=0.95, l1_mpki=20.0, l2_mpki=4.0),
        ),
        memory=MemoryBehavior(
            working_set_bytes=160 * KB,
            footprint_bytes=80 * MB,
            streaming_fraction=0.60,
            scatter_fraction=0.10,
        ),
        mean_dwell_intervals=25.0,
        noise_sigma=0.025,
    ),
}

#: Short names used in the paper's tables and figure labels.
SHORT_NAMES: Dict[str, str] = {
    "blackscholes": "bschls",
    "bodytrack": "btrack",
    "facesim": "fsim",
    "freqmine": "fmine",
    "streamcluster": "sclust",
    "canneal": "canneal",
    "x264": "x264",
    "vips": "vips",
}


def parsec_benchmark(name: str, input_set: str | None = None) -> BenchmarkSpec:
    """Look up a PARSEC model by full or short name, optionally re-inputted.

    When ``input_set`` is ``None``, the paper's choice is applied: native
    inputs for memory-bound benchmarks, simlarge for CPU-bound ones.
    """
    long_names = {short: full for full, short in SHORT_NAMES.items()}
    key = long_names.get(name, name)
    try:
        spec = PARSEC_BENCHMARKS[key]
    except KeyError:
        raise KeyError(
            f"unknown PARSEC benchmark {name!r}; known: {sorted(PARSEC_BENCHMARKS)}"
        ) from None
    if input_set is None:
        input_set = "native" if spec.kind == MEMORY_BOUND else "simlarge"
    return spec.with_input_set(input_set)
