"""Application mixes and island assignments (Table III).

* **Mix-1** (8-core, 4 islands × 2 cores): each island pairs one CPU-bound
  with one memory-bound application.
* **Mix-2** (8-core): islands are homogeneous — two C,C islands and two
  M,M islands.
* **Mix-3** (16-core, 4 islands × 4 cores): alternating all-C / all-M
  islands; replicated twice for the 32-core configuration.
* **Thermal mix** (Figure 18a): 8 single-core islands running
  mesa/bzip2/gcc/sixtrack twice over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config import CMPConfig
from .benchmark import BenchmarkSpec
from .parsec import parsec_benchmark
from .spec import spec_benchmark

__all__ = [
    "MIX1",
    "MIX2",
    "MIX3",
    "Mix",
    "mix_for_config",
    "parsec_or_spec",
    "thermal_mix",
]


@dataclass(frozen=True)
class Mix:
    """An island-by-island application assignment."""

    name: str
    #: Per island, the tuple of benchmark names scheduled on its cores.
    islands: Tuple[Tuple[str, ...], ...]

    @property
    def n_cores(self) -> int:
        return sum(len(island) for island in self.islands)

    @property
    def n_islands(self) -> int:
        return len(self.islands)

    def characteristics(self) -> Tuple[str, ...]:
        """Per-island C/M signature, e.g. ``("C,M", "C,M", ...)``."""
        rows = []
        for island in self.islands:
            kinds = [parsec_or_spec(name).kind for name in island]
            rows.append(",".join(kinds))
        return tuple(rows)

    def specs(self) -> Tuple[BenchmarkSpec, ...]:
        """Flattened per-core benchmark specs, in core order."""
        return tuple(
            parsec_or_spec(name) for island in self.islands for name in island
        )

    def replicated(self, times: int) -> "Mix":
        """The mix repeated ``times`` over (paper: Mix-3 twice for 32 cores)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        return Mix(name=f"{self.name}x{times}", islands=self.islands * times)


def parsec_or_spec(name: str) -> BenchmarkSpec:
    """Resolve a benchmark name from either suite, paper input-set rules."""
    try:
        return parsec_benchmark(name)
    except KeyError:
        return spec_benchmark(name)


#: Table III(a): each island pairs a CPU-bound and a memory-bound app.
MIX1 = Mix(
    name="Mix-1",
    islands=(
        ("blackscholes", "streamcluster"),
        ("bodytrack", "facesim"),
        ("freqmine", "canneal"),
        ("x264", "vips"),
    ),
)

#: Table III(b): homogeneous islands (C,C / M,M / C,C / M,M).
MIX2 = Mix(
    name="Mix-2",
    islands=(
        ("blackscholes", "bodytrack"),
        ("streamcluster", "facesim"),
        ("freqmine", "x264"),
        ("canneal", "vips"),
    ),
)

#: Table III(c): 16-core mix, alternating all-C / all-M islands of 4 cores.
MIX3 = Mix(
    name="Mix-3",
    islands=(
        ("blackscholes", "bodytrack", "freqmine", "x264"),
        ("streamcluster", "facesim", "canneal", "vips"),
        ("blackscholes", "bodytrack", "freqmine", "x264"),
        ("streamcluster", "facesim", "canneal", "vips"),
    ),
)


def thermal_mix() -> Mix:
    """Figure 18(a): 8 single-core islands, mesa/bzip2/gcc/sixtrack twice."""
    apps = ("mesa", "bzip2", "gcc", "sixtrack", "mesa", "bzip2", "gcc", "sixtrack")
    return Mix(name="Thermal", islands=tuple((app,) for app in apps))


def mix_for_config(config: CMPConfig, base: Mix | None = None) -> Mix:
    """The paper's default mix for a platform shape.

    8-core platforms get Mix-1 (or a reshaping of ``base``); 16-core gets
    Mix-3; 32-core gets Mix-3 replicated twice.  For other shapes the base
    mix's flattened application list is tiled across cores and regrouped
    into the configured islands.
    """
    base = base or (MIX3 if config.n_cores >= 16 else MIX1)
    if base.n_cores == config.n_cores and base.n_islands == config.n_islands:
        return base
    if config.n_cores % base.n_cores == 0 and base.n_cores < config.n_cores:
        candidate = base.replicated(config.n_cores // base.n_cores)
        if candidate.n_islands == config.n_islands:
            return candidate
    # Regroup: tile the application list, then chunk into islands.
    flat = [name for island in base.islands for name in island]
    names = [flat[i % len(flat)] for i in range(config.n_cores)]
    k = config.cores_per_island
    islands = tuple(
        tuple(names[i * k : (i + 1) * k]) for i in range(config.n_islands)
    )
    return Mix(name=f"{base.name}@{config.n_cores}c{config.n_islands}i", islands=islands)
