"""Synthetic address-trace generation and miss-rate calibration.

The paper models caches with Simics "g-cache" modules; the analogue here
is a trace-driven run through :class:`repro.cmpsim.cache.CacheHierarchy`.
Each benchmark's :class:`~repro.workloads.benchmark.MemoryBehavior`
describes a reference mix (streaming / hot working set / scatter), the
generator turns it into an address stream, and
:func:`calibrate_miss_rates` measures the resulting L1/L2 MPKI.

The interval simulator itself runs on the analytic CPI stack with the
phase miss rates (speed), but this module keeps the derivation honest: the
test suite checks that the trace-driven miss rates reproduce the class
structure of the specs (memory-bound ≫ CPU-bound, native > simlarge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .benchmark import BenchmarkSpec, MemoryBehavior

__all__ = [
    "AddressTraceGenerator",
    "MissRateCalibration",
    "calibrate_miss_rates",
]


class AddressTraceGenerator:
    """Generates a byte-address stream following a :class:`MemoryBehavior`.

    Patterns:

    * **streaming** — sequential walk (one word per reference) through the
      footprint, wrapping around; defeats caches bigger than a block's
      worth of lookahead but prefetch-friendly in real hardware.
    * **working set** — uniform references within a hot region that starts
      at a random offset; hits once the region fits the cache.
    * **scatter** — uniform references over the whole footprint.
    """

    WORD_BYTES = 8

    def __init__(self, behavior: MemoryBehavior, rng: np.random.Generator) -> None:
        self.behavior = behavior
        self._rng = rng
        self._stream_pos = 0
        footprint = behavior.footprint_bytes
        self._ws_base = int(rng.integers(0, max(1, footprint - behavior.working_set_bytes)))

    def addresses(self, n: int) -> np.ndarray:
        """Generate ``n`` byte addresses (uint64)."""
        if n <= 0:
            raise ValueError("n must be positive")
        b = self.behavior
        u = self._rng.random(n)
        out = np.empty(n, dtype=np.uint64)

        streaming = u < b.streaming_fraction
        scatter = (u >= b.streaming_fraction) & (
            u < b.streaming_fraction + b.scatter_fraction
        )
        working = ~(streaming | scatter)

        n_stream = int(streaming.sum())
        if n_stream:
            offsets = (
                self._stream_pos + np.arange(1, n_stream + 1) * self.WORD_BYTES
            ) % b.footprint_bytes
            out[streaming] = offsets.astype(np.uint64)
            self._stream_pos = int(offsets[-1])

        n_scatter = int(scatter.sum())
        if n_scatter:
            out[scatter] = self._rng.integers(
                0, b.footprint_bytes, size=n_scatter, dtype=np.uint64
            )

        n_work = int(working.sum())
        if n_work:
            out[working] = self._ws_base + self._rng.integers(
                0, b.working_set_bytes, size=n_work, dtype=np.uint64
            )
        return out


@dataclass(frozen=True)
class MissRateCalibration:
    """Trace-driven miss rates for one benchmark."""

    benchmark: str
    l1_mpki: float
    l2_mpki: float
    n_instructions: float
    n_references: int


def calibrate_miss_rates(
    spec: BenchmarkSpec,
    rng: np.random.Generator,
    n_references: int = 200_000,
    cores_sharing_l2: int = 2,
) -> MissRateCalibration:
    """Run the benchmark's address stream through the cache hierarchy.

    ``cores_sharing_l2`` sizes the shared L2 slice the benchmark
    effectively sees (the paper's L2 is 512 KB per core, shared per chip;
    a per-island view of 2 cores' worth is the fair-share approximation).
    """
    # Imported here: workloads must stay importable without cmpsim.
    from ..cmpsim.cache import CacheHierarchy

    hierarchy = CacheHierarchy.from_configs(cores_sharing_l2=cores_sharing_l2)
    generator = AddressTraceGenerator(spec.memory, rng)

    # Warm up with 20% of the trace so cold misses don't dominate.
    warmup = max(1, n_references // 5)
    for address in generator.addresses(warmup):
        hierarchy.access(int(address))
    hierarchy.reset_stats()

    for address in generator.addresses(n_references):
        hierarchy.access(int(address))

    stats = hierarchy.stats()
    instructions = n_references / spec.memory.refs_per_instruction
    return MissRateCalibration(
        benchmark=spec.name,
        l1_mpki=1000.0 * stats.l1_misses / instructions,
        l2_mpki=1000.0 * stats.l2_misses / instructions,
        n_instructions=instructions,
        n_references=n_references,
    )
