"""Benchmark specifications and stateful per-core instances.

A :class:`BenchmarkSpec` is the static description of one application:
its phase set, dwell/noise parameters, its memory-reference behaviour
(used by the trace-driven cache calibration), and a classification used by
the mix tables.  A :class:`BenchmarkInstance` binds a spec to a core with
its own random stream and produces one :class:`WorkloadSample` per
simulation interval.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

import numpy as np

from .phases import Phase, PhaseBlock, PhaseMachine

__all__ = [
    "BenchmarkInstance",
    "BenchmarkSpec",
    "CPU_BOUND",
    "MEMORY_BOUND",
    "MemoryBehavior",
    "WorkloadSample",
    "make_instances",
]

#: Classification letters used by Table III ("C" cpu-bound, "M" memory-bound).
CPU_BOUND = "C"
MEMORY_BOUND = "M"


@dataclass(frozen=True)
class MemoryBehavior:
    """Parameters of the synthetic address stream for cache calibration.

    The address generator mixes three reference patterns whose proportions
    set where accesses land in the hierarchy:

    * sequential streaming through a large footprint (compulsory misses),
    * reuse within a hot working set (hits),
    * scattered references over the full footprint (conflict/capacity
      misses in L1 that may still hit L2).
    """

    #: Hot working-set size in bytes (fits L1 for CPU-bound apps).
    working_set_bytes: int
    #: Total memory footprint in bytes.
    footprint_bytes: int
    #: Fraction of references that stream sequentially.
    streaming_fraction: float
    #: Fraction of references scattered uniformly over the footprint.
    scatter_fraction: float
    #: Memory references per instruction (loads+stores).
    refs_per_instruction: float = 0.3

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0 or self.footprint_bytes <= 0:
            raise ValueError("working set and footprint must be positive")
        if self.working_set_bytes > self.footprint_bytes:
            raise ValueError("working set cannot exceed the footprint")
        if not 0.0 <= self.streaming_fraction <= 1.0:
            raise ValueError("streaming_fraction must be in [0, 1]")
        if not 0.0 <= self.scatter_fraction <= 1.0:
            raise ValueError("scatter_fraction must be in [0, 1]")
        if self.streaming_fraction + self.scatter_fraction > 1.0:
            raise ValueError("pattern fractions must sum to at most 1")
        if self.refs_per_instruction <= 0:
            raise ValueError("refs_per_instruction must be positive")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one synthetic benchmark."""

    name: str
    #: ``"C"`` (cpu-bound) or ``"M"`` (memory-bound), as in Table III.
    kind: str
    suite: str  # "parsec" or "spec"
    description: str
    phases: Tuple[Phase, ...]
    memory: MemoryBehavior
    #: Expected intervals between phase transitions (PIC intervals).
    mean_dwell_intervals: float = 40.0
    noise_sigma: float = 0.015
    noise_rho: float = 0.8
    #: Which input set these phases model ("simlarge" or "native").
    input_set: str = "simlarge"

    def __post_init__(self) -> None:
        if self.kind not in (CPU_BOUND, MEMORY_BOUND):
            raise ValueError(f"kind must be 'C' or 'M', got {self.kind!r}")
        if not self.phases:
            raise ValueError("benchmark needs at least one phase")
        if self.input_set not in ("simlarge", "native"):
            raise ValueError(f"unknown input set {self.input_set!r}")

    @property
    def mean_l2_mpki(self) -> float:
        """Average off-chip miss rate across phases (boundness indicator)."""
        return float(np.mean([p.l2_mpki for p in self.phases]))

    @property
    def mean_cpi_base(self) -> float:
        return float(np.mean([p.cpi_base for p in self.phases]))

    def with_input_set(self, input_set: str) -> "BenchmarkSpec":
        """Derive the other input-set variant.

        The paper found native inputs make the benchmarks memory-intensive;
        the native variant scales every phase's miss rates up (working sets
        blow out of the caches) and the footprint along with them.
        """
        if input_set == self.input_set:
            return self
        if input_set == "native":
            factor = 1.5
        elif input_set == "simlarge":
            factor = 1.0 / 1.5
        else:
            raise ValueError(f"unknown input set {input_set!r}")
        phases = tuple(
            replace(p, l1_mpki=p.l1_mpki * factor, l2_mpki=p.l2_mpki * factor)
            for p in self.phases
        )
        memory = replace(
            self.memory,
            footprint_bytes=int(self.memory.footprint_bytes * factor),
            working_set_bytes=int(self.memory.working_set_bytes * min(factor, 4.0)),
        )
        return replace(self, phases=phases, memory=memory, input_set=input_set)


@dataclass(frozen=True)
class WorkloadSample:
    """Per-interval workload state consumed by the core CPI stack."""

    alpha: float
    cpi_base: float
    l1_mpki: float
    l2_mpki: float


class BenchmarkInstance:
    """A benchmark bound to one core: stateful phase machine + counters."""

    def __init__(self, spec: BenchmarkSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self._machine = PhaseMachine(
            spec.phases,
            mean_dwell_intervals=spec.mean_dwell_intervals,
            noise_sigma=spec.noise_sigma,
            noise_rho=spec.noise_rho,
            rng=rng,
        )
        self.instructions_retired = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    def advance(self) -> WorkloadSample:
        """Produce the workload state for the next simulation interval."""
        state = self._machine.advance()
        phase = state.phase
        return WorkloadSample(
            alpha=state.alpha,
            cpi_base=phase.cpi_base,
            l1_mpki=phase.l1_mpki,
            l2_mpki=phase.l2_mpki,
        )

    def advance_block(self, n_intervals: int) -> PhaseBlock:
        """Produce ``n_intervals`` consecutive workload states at once.

        Bit-identical to ``n_intervals`` successive :meth:`advance` calls
        (see :meth:`~repro.workloads.phases.PhaseMachine.advance_block`).
        """
        return self._machine.advance_block(n_intervals)

    def retire(self, instructions: float) -> None:
        """Account instructions executed during the last interval."""
        if instructions < 0:
            raise ValueError("cannot retire a negative instruction count")
        self.instructions_retired += instructions


def make_instances(
    specs: Sequence[BenchmarkSpec], rng_factory, prefix: str = "workload"
) -> list[BenchmarkInstance]:
    """Create one instance per spec, each with an independent stream.

    ``rng_factory`` is a :class:`repro.rng.SeedSequenceFactory`; streams are
    addressed as ``{prefix}/core{i}/{name}`` so runs are replayable.
    """
    instances = []
    for i, spec in enumerate(specs):
        rng = rng_factory.generator(f"{prefix}/core{i}/{spec.name}")
        instances.append(BenchmarkInstance(spec, rng))
    return instances
