"""Workload synthesis substrate (PARSEC / SPEC analogues).

The paper's policies depend on a handful of workload properties — whether
BIPS responds to frequency (CPU- vs memory-bound), utilization noise, and
phase changes over time — not on the actual computation.  This package
models the eight PARSEC applications of Table II (plus the four SPEC
applications used in the thermal study) as phase-driven synthetic
benchmarks with those properties:

* :mod:`repro.workloads.phases` — a Markov phase machine with AR(1)
  activity noise producing per-interval workload state.
* :mod:`repro.workloads.benchmark` — benchmark specifications and stateful
  per-core instances.
* :mod:`repro.workloads.parsec` — the eight PARSEC models with
  ``simlarge`` and ``native`` input-set variants (native is more
  memory-intensive, as the paper observed).
* :mod:`repro.workloads.spec` — mesa/bzip2/gcc/sixtrack CPU-bound models
  for the thermal-aware policy study.
* :mod:`repro.workloads.trace` — synthetic address-trace generation used
  to calibrate miss rates through the cache simulator.
* :mod:`repro.workloads.mixes` — the island assignments of Table III
  (Mix-1, Mix-2, Mix-3).
"""

from .benchmark import BenchmarkInstance, BenchmarkSpec, MemoryBehavior, WorkloadSample
from .mixes import MIX1, MIX2, MIX3, Mix, mix_for_config, thermal_mix
from .parsec import PARSEC_BENCHMARKS, parsec_benchmark
from .phases import Phase, PhaseMachine
from .recorded import RecordedWorkload, ReplayInstance, record
from .spec import SPEC_BENCHMARKS, spec_benchmark
from .trace import AddressTraceGenerator, calibrate_miss_rates

__all__ = [
    "MIX1",
    "MIX2",
    "MIX3",
    "AddressTraceGenerator",
    "BenchmarkInstance",
    "BenchmarkSpec",
    "MemoryBehavior",
    "Mix",
    "PARSEC_BENCHMARKS",
    "Phase",
    "PhaseMachine",
    "RecordedWorkload",
    "ReplayInstance",
    "SPEC_BENCHMARKS",
    "WorkloadSample",
    "calibrate_miss_rates",
    "mix_for_config",
    "parsec_benchmark",
    "record",
    "spec_benchmark",
    "thermal_mix",
]
