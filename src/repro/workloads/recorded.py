"""Workload recording and replay.

Seeded phase machines already make runs reproducible *within* one
platform, but a saved workload lets you replay the exact same per-tick
samples against a *different* platform (another V/F ladder, island
grouping, power model) or from another tool entirely.

* :func:`record` — run a mix's phase machines for N ticks and capture
  every core's sample stream.
* :class:`RecordedWorkload` — the capture; NumPy-backed, save/load as
  ``.npz``.
* :class:`ReplayInstance` — a drop-in replacement for
  :class:`~repro.workloads.benchmark.BenchmarkInstance` that replays one
  core's stream (cycling if the simulation outlives the recording).
* Pass ``RecordedWorkload.instances()`` to
  :class:`~repro.cmpsim.simulator.Simulation` via its ``instances``
  parameter to drive a run from the capture.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from ..config import CMPConfig
from ..rng import DEFAULT_SEED, SeedSequenceFactory
from .benchmark import BenchmarkInstance, WorkloadSample
from .mixes import Mix, mix_for_config
from .phases import PhaseBlock

__all__ = ["RecordedWorkload", "ReplayInstance", "record"]

_FIELDS = ("alpha", "cpi_base", "l1_mpki", "l2_mpki")


@dataclass(frozen=True)
class RecordedWorkload:
    """A per-core, per-tick capture of workload samples.

    Arrays have shape ``(n_ticks, n_cores)``; ``benchmarks`` names the
    application each core ran when the capture was made.
    """

    benchmarks: tuple[str, ...]
    alpha: np.ndarray
    cpi_base: np.ndarray
    l1_mpki: np.ndarray
    l2_mpki: np.ndarray

    def __post_init__(self) -> None:
        shape = self.alpha.shape
        for name in _FIELDS:
            arr = getattr(self, name)
            if arr.ndim != 2 or arr.shape != shape:
                raise ValueError(f"{name} must have shape (n_ticks, n_cores)")
        if shape[1] != len(self.benchmarks):
            raise ValueError("need one benchmark name per core column")
        if shape[0] < 1:
            raise ValueError("recording must contain at least one tick")

    @property
    def n_ticks(self) -> int:
        return int(self.alpha.shape[0])

    @property
    def n_cores(self) -> int:
        return int(self.alpha.shape[1])

    # ------------------------------------------------------------------
    def instances(self) -> list["ReplayInstance"]:
        """One replay instance per core, for ``Simulation(instances=...)``."""
        return [ReplayInstance(self, core) for core in range(self.n_cores)]

    # ------------------------------------------------------------------
    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Serialize to ``.npz``; returns the path written."""
        path = pathlib.Path(path)
        np.savez_compressed(
            path,
            benchmarks=np.asarray(self.benchmarks),
            **{name: getattr(self, name) for name in _FIELDS},
        )
        # np.savez appends .npz when missing.
        return path if path.suffix == ".npz" else path.with_suffix(
            path.suffix + ".npz"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RecordedWorkload":
        with np.load(path, allow_pickle=False) as data:
            return cls(
                benchmarks=tuple(str(b) for b in data["benchmarks"]),
                **{name: data[name] for name in _FIELDS},
            )


class ReplayInstance:
    """Replays one core's recorded stream with the
    :class:`~repro.workloads.benchmark.BenchmarkInstance` interface."""

    def __init__(self, recording: RecordedWorkload, core: int) -> None:
        if not 0 <= core < recording.n_cores:
            raise IndexError(f"core {core} outside the recording")
        self.recording = recording
        self.core = core
        self._tick = 0
        self.instructions_retired = 0.0

    @property
    def name(self) -> str:
        return f"replay:{self.recording.benchmarks[self.core]}"

    def advance(self) -> WorkloadSample:
        r = self.recording
        t = self._tick % r.n_ticks  # cycle if the run outlives the capture
        self._tick += 1
        return WorkloadSample(
            alpha=float(r.alpha[t, self.core]),
            cpi_base=float(r.cpi_base[t, self.core]),
            l1_mpki=float(r.l1_mpki[t, self.core]),
            l2_mpki=float(r.l2_mpki[t, self.core]),
        )

    def advance_block(self, n_intervals: int) -> PhaseBlock:
        """Replay ``n_intervals`` ticks at once (cycling like :meth:`advance`)."""
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        r = self.recording
        t = (self._tick + np.arange(int(n_intervals))) % r.n_ticks
        self._tick += int(n_intervals)
        return PhaseBlock(
            phase_index=np.zeros(int(n_intervals), dtype=np.int64),
            alpha=r.alpha[t, self.core],
            cpi_base=r.cpi_base[t, self.core],
            l1_mpki=r.l1_mpki[t, self.core],
            l2_mpki=r.l2_mpki[t, self.core],
        )

    def retire(self, instructions: float) -> None:
        if instructions < 0:
            raise ValueError("cannot retire a negative instruction count")
        self.instructions_retired += instructions


def record(
    config: CMPConfig,
    n_ticks: int,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
) -> RecordedWorkload:
    """Capture ``n_ticks`` of the mix's workload streams.

    Uses the same stream derivation as :class:`~repro.cmpsim.simulator.
    Simulation`, so a replay of ``record(config, N, seed=s)`` reproduces
    the exact samples a live run with seed ``s`` would have seen.
    """
    if n_ticks < 1:
        raise ValueError("n_ticks must be positive")
    mix = mix_for_config(config, mix)
    specs = mix.specs()
    seeds = SeedSequenceFactory(seed)
    instances = [
        BenchmarkInstance(spec, seeds.generator(f"workload/core{i}/{spec.name}"))
        for i, spec in enumerate(specs)
    ]
    arrays = {name: np.empty((n_ticks, len(specs))) for name in _FIELDS}
    for i, instance in enumerate(instances):
        block = instance.advance_block(n_ticks)
        for name in _FIELDS:
            arrays[name][:, i] = getattr(block, name)
    return RecordedWorkload(
        benchmarks=tuple(spec.name for spec in specs), **arrays
    )
