"""Configuration dataclasses mirroring Table I of the paper.

The default values reproduce the paper's platform: 90 nm technology,
2 GHz nominal clock, 8 Pentium-M-style voltage/frequency pairs from
600 MHz to 2.0 GHz, out-of-order x86 cores with private 16 KB L1 caches,
a shared L2, ~100 ns memory, a GPM interval of 5 ms and a PIC interval of
0.5 ms, and a DVFS transition overhead of 0.5% of CPU time.

All classes are frozen: a configuration is a value, and simulations derive
everything else from it.  Use :func:`dataclasses.replace` to build
variants (the experiment harness does this extensively for sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from . import units
from .unit_types import Celsius, GigaHz, Seconds, Watts

__all__ = [
    "CMPConfig",
    "ControlConfig",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "DVFSConfig",
    "MemoryConfig",
    "PENTIUM_M_VF_TABLE",
    "ThermalConfig",
]

#: Pentium-M-style ladder: 8 (frequency GHz, voltage V) operating points.
#: The paper cites the Pentium-M datasheet for a 600 MHz – 2.0 GHz range;
#: the voltages follow the part's roughly affine V(f) relation between its
#: published 0.988 V floor and 1.484 V ceiling.
PENTIUM_M_VF_TABLE: Tuple[Tuple[float, float], ...] = (
    (0.6, 0.988),
    (0.8, 1.059),
    (1.0, 1.130),
    (1.2, 1.201),
    (1.4, 1.272),
    (1.6, 1.343),
    (1.8, 1.414),
    (2.0, 1.484),
)


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of one core (Table I).

    Only the parameters that feed the performance and power models are kept
    as numbers; purely descriptive entries of Table I (fetch width, register
    file size, ...) are retained for documentation and the Table I printer.
    """

    fetch_width: int = 4
    issue_width: int = 2
    commit_width: int = 2
    register_file_entries: int = 80
    #: Effective switching capacitance of the whole core, in W / (V^2 * GHz).
    #: Chosen so a fully-active core at (2.0 GHz, 1.5 V) draws ~8 W dynamic.
    effective_capacitance: float = 1.78
    #: Nominal leakage power at reference voltage/temperature, watts.
    nominal_leakage_w: Watts = 1.5
    #: Effective switching activity during memory-stall cycles.  An
    #: out-of-order core stalled on memory is not quiet: the window is
    #: full, speculative wakeup/select and replay keep structures
    #: toggling.  0 would mean perfect gating of stalled cycles; ~0.65
    #: reproduces the realistic situation where a CMP running a mixed
    #: workload at full frequency draws close to its peak power (the
    #: regime the paper's 75-100%-of-max-power budgets assume).
    stall_activity: float = 0.65
    #: L1 data/instruction caches: 16 KB, 2-way, 64 B blocks, 1-cycle hit.
    l1_size_bytes: int = 16 * 1024
    l1_associativity: int = 2
    l1_block_bytes: int = 64
    l1_hit_cycles: int = 1

    def __post_init__(self) -> None:
        if self.effective_capacitance <= 0:
            raise ValueError("effective_capacitance must be positive")
        if self.nominal_leakage_w < 0:
            raise ValueError("nominal_leakage_w must be non-negative")
        if not 0.0 <= self.stall_activity <= 1.0:
            raise ValueError("stall_activity must be in [0, 1]")


@dataclass(frozen=True)
class MemoryConfig:
    """Shared cache and memory hierarchy parameters (Table I)."""

    #: Shared L2: 512 KB per core, 16-way, 64 B blocks.
    l2_size_bytes_per_core: int = 512 * 1024
    l2_associativity: int = 16
    l2_block_bytes: int = 64
    #: L2 hit latency in *core cycles* (on-chip, scales with the clock).
    l2_hit_cycles: int = 10
    #: Main-memory latency in *seconds* (off-chip, fixed wall-clock time).
    #: 100 ns = 200 cycles at the 2 GHz nominal clock, matching Table I's
    #: "~200 cycles" memory access delay.
    memory_latency_s: Seconds = 100 * units.NANOSECONDS

    def __post_init__(self) -> None:
        if self.memory_latency_s <= 0:
            raise ValueError("memory_latency_s must be positive")
        if self.l2_hit_cycles < 1:
            raise ValueError("l2_hit_cycles must be >= 1")


@dataclass(frozen=True)
class DVFSConfig:
    """Voltage/frequency actuation parameters."""

    #: The discrete operating points available to quantized actuation.
    vf_table: Tuple[Tuple[float, float], ...] = PENTIUM_M_VF_TABLE
    #: ``continuous`` — the actuator may set any frequency in the table's
    #: range (voltage interpolated); matches the paper's PID derivation.
    #: ``quantized`` — snap to the nearest table entry; what MaxBIPS uses.
    mode: str = "continuous"
    #: Fraction of the interval's CPU time lost when the V/F setting
    #: changes (paper: 0.5%, called "conservative").
    transition_overhead: float = 0.005

    def __post_init__(self) -> None:
        if self.mode not in ("continuous", "quantized"):
            raise ValueError(f"unknown DVFS mode {self.mode!r}")
        if not 0.0 <= self.transition_overhead < 1.0:
            raise ValueError("transition_overhead must be in [0, 1)")
        if len(self.vf_table) < 2:
            raise ValueError("vf_table needs at least two operating points")
        freqs = [f for f, _ in self.vf_table]
        if sorted(freqs) != freqs or len(set(freqs)) != len(freqs):
            raise ValueError("vf_table must be sorted by strictly increasing frequency")

    @property
    def f_min(self) -> GigaHz:
        return self.vf_table[0][0]

    @property
    def f_max(self) -> GigaHz:
        return self.vf_table[-1][0]


@dataclass(frozen=True)
class ControlConfig:
    """Invocation cadence and controller design targets."""

    #: GPM (tier 1) invocation interval, seconds.  Paper default: 5 ms.
    gpm_interval_s: Seconds = 5 * units.MILLISECONDS
    #: PIC (tier 2) invocation interval, seconds.  Paper default: 0.5 ms.
    pic_interval_s: Seconds = 0.5 * units.MILLISECONDS
    #: Desired closed-loop poles for the pole-placement PID design.  The
    #: defaults give a settling time of ~5 controller invocations with a
    #: small overshoot, matching the behaviour the paper reports.
    desired_poles: Tuple[complex, ...] = (-0.15 + 0j, 0.35 + 0.25j, 0.35 - 0.25j)

    def __post_init__(self) -> None:
        if self.pic_interval_s <= 0 or self.gpm_interval_s <= 0:
            raise ValueError("controller intervals must be positive")
        if self.gpm_interval_s < self.pic_interval_s:
            raise ValueError("GPM interval must be >= PIC interval")
        if len(self.desired_poles) != 3:
            raise ValueError("PID pole placement needs exactly 3 desired poles")

    @property
    def pics_per_gpm(self) -> int:
        """Number of PIC invocations between successive GPM invocations."""
        ratio = self.gpm_interval_s / self.pic_interval_s
        count = int(round(ratio))
        if not units.approx_eq(ratio, count):
            raise ValueError(
                "gpm_interval_s must be an integer multiple of pic_interval_s "
                f"(got ratio {ratio})"
            )
        return count


@dataclass(frozen=True)
class ThermalConfig:
    """Lumped-RC thermal model parameters."""

    ambient_c: Celsius = 45.0
    #: Vertical thermal resistance core -> heat sink, K/W.
    vertical_resistance_k_per_w: float = 1.2
    #: Lateral thermal resistance between adjacent cores, K/W.
    lateral_resistance_k_per_w: float = 4.0
    #: Per-core thermal capacitance, J/K (time constant ~ R*C ~ 24 ms).
    heat_capacity_j_per_k: float = 0.02
    #: Junction temperature treated as a hotspot, Celsius.
    hotspot_threshold_c: Celsius = 85.0

    def __post_init__(self) -> None:
        if self.vertical_resistance_k_per_w <= 0:
            raise ValueError("vertical_resistance_k_per_w must be positive")
        if self.lateral_resistance_k_per_w <= 0:
            raise ValueError("lateral_resistance_k_per_w must be positive")
        if self.heat_capacity_j_per_k <= 0:
            raise ValueError("heat_capacity_j_per_k must be positive")


@dataclass(frozen=True)
class CMPConfig:
    """Full chip configuration: cores, islands, hierarchy, control cadence.

    The paper's default platform is 8 cores in 4 islands (2 cores per
    island); scalability experiments use 16 and 32 cores with 4 cores per
    island.
    """

    n_cores: int = 8
    n_islands: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    dvfs: DVFSConfig = field(default_factory=DVFSConfig)
    control: ControlConfig = field(default_factory=ControlConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    #: Uncore (shared L2 banks, interconnect) power as a fraction of the
    #: all-cores-max power; drawn regardless of island DVFS state.
    uncore_fraction: float = 0.10
    #: Per-island leakage multipliers for process-variation studies; length
    #: must equal ``n_islands`` when given.  ``None`` means no variation.
    island_leakage_multipliers: Tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.n_islands < 1:
            raise ValueError("need at least one core and one island")
        if self.n_cores % self.n_islands != 0:
            raise ValueError(
                f"{self.n_cores} cores do not divide evenly into "
                f"{self.n_islands} islands"
            )
        if not 0.0 <= self.uncore_fraction < 1.0:
            raise ValueError("uncore_fraction must be in [0, 1)")
        if self.island_leakage_multipliers is not None:
            if len(self.island_leakage_multipliers) != self.n_islands:
                raise ValueError(
                    "island_leakage_multipliers must have one entry per island"
                )
            if any(m <= 0 for m in self.island_leakage_multipliers):
                raise ValueError("leakage multipliers must be positive")

    @property
    def cores_per_island(self) -> int:
        return self.n_cores // self.n_islands

    def island_of_core(self, core_index: int) -> int:
        """Island id that ``core_index`` belongs to (contiguous blocks)."""
        if not 0 <= core_index < self.n_cores:
            raise IndexError(f"core index {core_index} out of range")
        return core_index // self.cores_per_island

    def cores_in_island(self, island_index: int) -> Sequence[int]:
        """Core indices belonging to island ``island_index``."""
        if not 0 <= island_index < self.n_islands:
            raise IndexError(f"island index {island_index} out of range")
        start = island_index * self.cores_per_island
        return range(start, start + self.cores_per_island)

    def with_islands(self, n_cores: int, n_islands: int) -> "CMPConfig":
        """Convenience: same platform, different core/island counts."""
        return replace(self, n_cores=n_cores, n_islands=n_islands)


#: The paper's default platform: 8 cores, 4 islands, 2 cores per island.
DEFAULT_CONFIG = CMPConfig()
