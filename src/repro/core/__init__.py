"""CPM — the paper's contribution: coordinated two-tier power management.

* :mod:`repro.core.calibration` — the offline pipeline of Section II:
  white-noise DVFS excitation runs, system-gain identification
  (Equation 8 / Figure 5), utilization→power transducer fits (Figure 6),
  pole-placement PID design and the stability-margin analysis
  (Equations 12–13).
* :mod:`repro.core.cpm` — :class:`CPMScheme`, wiring a
  :class:`~repro.gpm.manager.GlobalPowerManager` over per-island
  :class:`~repro.pic.controller.PerIslandController` instances into the
  simulator's two-rate cadence, plus the :func:`run_cpm` convenience
  entry point.
* :mod:`repro.core.metrics` — performance degradation against the
  no-management reference and budget-tracking robustness metrics.
"""

from .calibration import (
    Calibration,
    WhiteNoiseDVFSScheme,
    calibrate,
    default_calibration,
)
from .cpm import CPMScheme, run_cpm
from .metrics import (
    budget_from_percent,
    chip_tracking_metrics,
    island_tracking_metrics,
    performance_degradation,
    performance_degradation_series,
    reference_power,
)

__all__ = [
    "CPMScheme",
    "Calibration",
    "WhiteNoiseDVFSScheme",
    "budget_from_percent",
    "calibrate",
    "chip_tracking_metrics",
    "default_calibration",
    "island_tracking_metrics",
    "performance_degradation",
    "performance_degradation_series",
    "reference_power",
    "run_cpm",
]
