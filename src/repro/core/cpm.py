"""CPMScheme: the coordinated two-tier power manager of Figure 3.

``CPMScheme`` plugs into :class:`repro.cmpsim.simulator.Simulation` and
realizes the architecture end to end:

* every GPM interval it assembles the measurement context and lets the
  :class:`~repro.gpm.manager.GlobalPowerManager` (with any provisioning
  policy) rewrite the per-island set-points;
* every PIC interval each island's
  :class:`~repro.pic.controller.PerIslandController` senses utilization,
  transduces it to power, and nudges its island's frequency to track the
  set-point.

Controllers are built from an offline :class:`~repro.core.calibration.
Calibration` (system gain → pole-placement PID gains; per-island
transducers); by default the memoized calibration for the simulation's
platform and mix is used.
"""

from __future__ import annotations

import numpy as np

from ..config import CMPConfig
from ..gpm.manager import GlobalPowerManager
from ..gpm.performance_aware import PerformanceAwarePolicy
from ..gpm.policy import GPMContext, ProvisioningPolicy
from ..pic.actuator import DVFSActuator
from ..pic.controller import PerIslandController
from ..rng import DEFAULT_SEED
from ..unit_types import GigaHz, PowerFraction
from ..workloads.mixes import Mix
from .calibration import Calibration, default_calibration

__all__ = ["CPMScheme", "run_cpm"]


class CPMScheme:
    """The paper's scheme: GPM provisioning + PID power capping."""

    name = "cpm"

    def __init__(
        self,
        policy: ProvisioningPolicy | None = None,
        calibration: Calibration | None = None,
        max_step_ghz: GigaHz = 1.0,
        initial_frequency_ghz: GigaHz | None = None,
    ) -> None:
        self.policy = policy or PerformanceAwarePolicy()
        self.manager = GlobalPowerManager(self.policy)
        self._calibration = calibration
        self.max_step_ghz = max_step_ghz
        self.initial_frequency_ghz = initial_frequency_ghz
        self.controllers: list[PerIslandController] = []
        self._context_static: dict | None = None

    @property
    def calibration(self) -> Calibration:
        if self._calibration is None:
            raise RuntimeError("scheme not bound yet; calibration unavailable")
        return self._calibration

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        if hasattr(self.policy, "reset"):
            self.policy.reset()
        if self._calibration is None:
            self._calibration = default_calibration(
                sim.config, sim.mix, seed=sim.seeds.root_seed
            )
        cal = self._calibration
        quantized = sim.config.dvfs.mode == "quantized"
        f0 = self.initial_frequency_ghz
        if f0 is None:
            # Seed the operating point proportionally to the budget: a
            # 100% budget starts at the top of the ladder (nothing to
            # cap), tighter budgets start lower — shrinks the start-up
            # transient before the controllers have any measurements.
            table = sim.chip.dvfs
            f0 = table.f_min + (table.f_max - table.f_min) * min(
                1.0, sim.budget_fraction
            )

        self.controllers = []
        for island in range(sim.config.n_islands):
            actuator = DVFSActuator(
                sim.chip.dvfs, quantized=quantized, initial_frequency=f0
            )
            controller = self._make_controller(
                island,
                gains=cal.pid_gains,
                transducer=cal.island_transducers[island],
                actuator=actuator,
            )
            self.controllers.append(controller)
            sim.chip.set_island_frequency(island, actuator.frequency)

        island_min, island_max = sim.chip.island_power_bounds()
        island_leakage = np.array(
            [
                float(
                    np.mean(
                        sim.chip.leakage_multipliers[
                            sim.chip.island_of_core == i
                        ]
                    )
                )
                for i in range(sim.config.n_islands)
            ]
        )
        self._context_static = {
            "island_min": island_min,
            "island_max": island_max,
            "adjacent_pairs": sim.chip.floorplan.adjacent_island_pairs(
                sim.chip.island_of_core
            ),
            "island_leakage": island_leakage,
        }
        # Initial provisioning: the budget split equally (paper: P_i(0)).
        sim.setpoints = np.full(
            sim.config.n_islands, sim.distributable_budget / sim.config.n_islands
        )

    def _make_controller(
        self,
        island: int,
        gains,
        transducer,
        actuator: DVFSActuator,
    ) -> PerIslandController:
        """Build one island's controller; subclasses may substitute.

        ``repro.resilience.GuardedCPMScheme`` overrides this to return a
        sensor-guarded controller without re-implementing ``bind``.
        """
        del island  # the base controller is island-agnostic
        return PerIslandController(
            gains=gains,
            transducer=transducer,
            actuator=actuator,
            max_step_ghz=self.max_step_ghz,
        )

    # ------------------------------------------------------------------
    def _context(self, sim) -> GPMContext:
        assert self._context_static is not None
        frequency = None
        if sim.last_result is not None:
            frequency = sim.last_result.island_frequency_ghz
        return GPMContext(
            budget=sim.distributable_budget,
            n_islands=sim.config.n_islands,
            windows=sim.windows,
            island_frequency=frequency,
            f_max=sim.chip.dvfs.f_max,
            **self._context_static,
        )

    def on_gpm(self, sim) -> None:
        sim.setpoints = self.manager.provision(self._context(sim))

    def on_pic(self, sim) -> None:
        if sim.last_result is None:
            return  # nothing measured yet; hold the initial operating point
        utilization = sim.last_result.island_utilization
        for island, controller in enumerate(self.controllers):
            invocation = controller.invoke(
                float(sim.setpoints[island]), float(utilization[island])
            )
            sim.chip.set_island_frequency(island, invocation.applied_frequency)
            sim.sensed_power[island] = invocation.sensed_power


def run_cpm(
    config: CMPConfig,
    mix: Mix | None = None,
    policy: ProvisioningPolicy | None = None,
    budget_fraction: PowerFraction = 0.8,
    n_gpm_intervals: int = 20,
    seed: int = DEFAULT_SEED,
    calibration: Calibration | None = None,
):
    """Convenience entry point: build and run one CPM simulation.

    Returns the :class:`~repro.cmpsim.simulator.SimulationResult`.
    """
    from ..cmpsim.simulator import Simulation

    scheme = CPMScheme(policy=policy, calibration=calibration)
    sim = Simulation(
        config, scheme, mix=mix, budget_fraction=budget_fraction, seed=seed
    )
    return sim.run(n_gpm_intervals)
