"""Evaluation metrics: performance degradation and budget tracking.

Two quantities dominate the paper's results section:

* **performance degradation** — throughput loss relative to the
  no-management run (all cores at maximum frequency).  Runs compared with
  the *same seed* execute identical workload streams (the phase machines
  are independent of controller actions), so the comparison is paired.
* **tracking quality** — how tightly actual power follows the set-points,
  summarized with the Section II robustness metrics (overshoot, settling
  time, steady-state error) per GPM window and worst-cased.
"""

from __future__ import annotations

import functools

import numpy as np

from ..config import CMPConfig
from ..control.analysis import ResponseMetrics, response_metrics, worst_case_metrics
from ..cmpsim.simulator import SimulationResult
from ..rng import DEFAULT_SEED
from ..workloads.mixes import Mix, mix_for_config

__all__ = [
    "budget_from_percent",
    "chip_tracking_metrics",
    "island_tracking_metrics",
    "performance_degradation",
    "performance_degradation_series",
    "reference_power",
]


@functools.lru_cache(maxsize=64)
def _reference_power_cached(
    config: CMPConfig, mix: Mix, seed: int, n_gpm_intervals: int
) -> float:
    from ..baselines.no_management import NoManagementScheme
    from ..cmpsim.simulator import Simulation

    sim = Simulation(
        config, NoManagementScheme(), mix=mix, budget_fraction=1.0, seed=seed
    )
    return sim.run(n_gpm_intervals).mean_chip_power_frac


def reference_power(
    config: CMPConfig,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
    n_gpm_intervals: int = 10,
) -> float:
    """Mean chip power of the unmanaged run, as a fraction of max power.

    The paper's budgets are "X% of the required power by the whole chip" —
    the power the chip actually draws with every core at maximum frequency
    under the given workload, not the theoretical all-active peak.  This
    memoized helper measures that reference so experiments can translate
    "80% budget" into an absolute fraction of max chip power.
    """
    return _reference_power_cached(config, mix_for_config(config, mix), seed, n_gpm_intervals)


def budget_from_percent(
    percent: float,
    config: CMPConfig,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
) -> float:
    """Absolute budget fraction for a paper-style "percent of required
    power" budget (e.g. ``percent=0.8`` for the default 80% budget)."""
    if not 0.0 < percent <= 1.5:
        raise ValueError("percent must be a sane fraction of required power")
    return percent * reference_power(config, mix, seed)


def performance_degradation(
    managed: SimulationResult, reference: SimulationResult
) -> float:
    """Fractional throughput loss of ``managed`` vs ``reference``.

    Uses total retired instructions over the run (robust to interval
    boundaries).  Negative values mean the managed run was faster, which
    only happens within noise at a 100% budget.
    """
    if reference.total_instructions <= 0:
        raise ValueError("reference run retired no instructions")
    return 1.0 - managed.total_instructions / reference.total_instructions


def performance_degradation_series(
    managed: SimulationResult, reference: SimulationResult
) -> np.ndarray:
    """Per-GPM-window degradation series (the Figure 14 quantity)."""
    n = min(len(managed.telemetry.windows), len(reference.telemetry.windows))
    if n == 0:
        raise ValueError("runs have no completed GPM windows")
    out = np.empty(n)
    for k in range(n):
        ref_bips = float(reference.telemetry.windows[k].island_bips.sum())
        got_bips = float(managed.telemetry.windows[k].island_bips.sum())
        out[k] = 1.0 - got_bips / ref_bips if ref_bips > 0 else 0.0
    return out


def chip_tracking_metrics(
    result: SimulationResult,
    tolerance: float = 0.02,
    skip_intervals: int = 10,
) -> ResponseMetrics:
    """How well total chip power tracked the chip-wide budget (Figure 10).

    ``skip_intervals`` drops the initial transient (the controllers start
    from an arbitrary operating point).
    """
    series = result.telemetry["chip_power_frac"][skip_intervals:]
    if series.size == 0:
        raise ValueError("run too short for the requested warmup skip")
    return response_metrics(series, result.budget_fraction, tolerance=tolerance)


def island_tracking_metrics(
    result: SimulationResult,
    tolerance: float = 0.02,
    skip_windows: int = 1,
) -> ResponseMetrics:
    """Worst-case per-island tracking across GPM windows (Figures 8/9).

    Each GPM window gives every island a constant set-point; the island's
    power series over that window is one tracking response.  Returns the
    worst overshoot / settling / steady-state error over all of them.
    """
    telemetry = result.telemetry
    ticks = telemetry.gpm_tick_indices()
    if ticks.size <= skip_windows:
        raise ValueError("not enough GPM windows after warmup skip")
    power = telemetry["island_power_frac"]
    setpoints = telemetry["island_setpoint_frac"]
    responses: list[np.ndarray] = []
    references: list[float] = []
    boundaries = list(ticks[skip_windows:]) + [telemetry.n_intervals]
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end <= start:
            continue
        for island in range(telemetry.n_islands):
            ref = float(setpoints[start, island])
            if ref <= 0:
                continue
            responses.append(power[start:end, island])
            references.append(ref)
    if not responses:
        raise ValueError("no tracking segments found")
    return worst_case_metrics(responses, references, tolerance=tolerance)
