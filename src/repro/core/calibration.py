"""Offline calibration: system identification, transducer fits, PID design.

This module re-runs the paper's Section II methodology rather than
hard-coding its constants:

1. **Excitation** — every PARSEC benchmark except a held-out validation
   benchmark (bodytrack, "randomly chosen") runs homogeneously on the
   target platform while a white-noise scheme jitters each island's
   frequency (:class:`WhiteNoiseDVFSScheme`).
2. **Identification** — per run, the difference relation
   ``P(t+1) - P(t) = a · (f(t+1) - f(t))`` (Equation 8) is fit by
   through-origin regression; the per-benchmark gains are averaged into
   the design gain ``a``.
3. **Validation** — the averaged model predicts the held-out benchmark's
   power one step ahead; Figure 5 expects this error to be small.
4. **Transducers** — the same runs provide (utilization, power) samples
   per island for the Figure 6 linear fits; per-island transducers are
   additionally fit on the *target mix* so each PIC senses through a line
   matched to its co-scheduled applications.
5. **Controller design** — pole placement puts the closed-loop poles at
   the configured locations, and the stability margin over the gain
   multiplier ``g`` is computed (Equations 12–13).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..config import CMPConfig
from ..control.identification import GainFit, fit_system_gain, prediction_error
from ..control.pid import PIDGains
from ..control.pole_placement import design_pid, stability_gain_limit
from ..power.transducer import LinearTransducer, fit_transducer
from ..rng import DEFAULT_SEED, SeedSequenceFactory
from ..unit_types import GigaHz
from ..workloads.mixes import Mix, mix_for_config
from ..workloads.parsec import PARSEC_BENCHMARKS

__all__ = [
    "Calibration",
    "DEFAULT_HOLDOUT",
    "WhiteNoiseDVFSScheme",
    "calibrate",
    "default_calibration",
]

#: Default held-out validation benchmark, as in the paper.
DEFAULT_HOLDOUT = "bodytrack"


class WhiteNoiseDVFSScheme:
    """Excitation scheme: noise-driven walk of each island's frequency.

    The paper validates its model "with added random white-noise to
    change the DVFS levels of the cores in a random manner".  This scheme
    applies an independent Gaussian frequency step per island per PIC
    interval with a mild mean-reversion toward ``center_ghz`` (an
    Ornstein–Uhlenbeck walk, reflected at the ladder's walls).  The
    mean-reversion concentrates calibration samples in the operating
    envelope the controllers will actually visit at realistic budgets —
    a fit spread uniformly over the whole ladder leaves a systematic
    transducer bias at the operating point, which shows up directly as
    steady-state error on *actual* (not sensed) power.
    """

    name = "white-noise-dvfs"

    def __init__(
        self,
        seed: int = DEFAULT_SEED,
        step_sigma_ghz: GigaHz = 0.12,
        center_ghz: GigaHz | None = None,
        reversion: float = 0.12,
    ) -> None:
        if step_sigma_ghz <= 0:
            raise ValueError("step_sigma_ghz must be positive")
        if not 0.0 <= reversion < 1.0:
            raise ValueError("reversion must be in [0, 1)")
        self.step_sigma_ghz = step_sigma_ghz
        self.center_ghz = center_ghz
        self.reversion = reversion
        self._rng = SeedSequenceFactory(seed).generator("calibration/white-noise")

    def bind(self, sim) -> None:
        if self.center_ghz is None:
            # Default envelope center: upper part of the ladder, where
            # 75–100%-of-max-power budgets land.
            self.center_ghz = (
                0.15 * sim.chip.dvfs.f_min + 0.85 * sim.chip.dvfs.f_max
            )
        for island in range(sim.config.n_islands):
            sim.chip.set_island_frequency(island, self.center_ghz)

    def on_gpm(self, sim) -> None:
        """No provisioning tier during excitation."""

    def on_pic(self, sim) -> None:
        table = sim.chip.dvfs
        for island in range(sim.config.n_islands):
            current = float(sim.chip.island_frequency[island])
            step = float(self._rng.normal(0.0, self.step_sigma_ghz))
            proposal = (
                current
                + self.reversion * (self.center_ghz - current)
                + step
            )
            # Reflect at the walls to keep the excitation exploring.
            if proposal > table.f_max:
                proposal = 2 * table.f_max - proposal
            elif proposal < table.f_min:
                proposal = 2 * table.f_min - proposal
            sim.chip.set_island_frequency(island, proposal)
        if sim.last_result is not None:
            sim.sensed_power = sim.last_result.island_power_frac.copy()


@dataclass(frozen=True)
class Calibration:
    """Everything the CPM scheme needs, produced offline."""

    #: The averaged design gain ``a`` (fraction of max power per GHz).
    system_gain: float
    #: Per-benchmark identification fits.
    per_benchmark_gains: Dict[str, GainFit]
    #: Pole-placement PID design against ``system_gain``.
    pid_gains: PIDGains
    #: Per-island transducers fit on the target mix.
    island_transducers: Tuple[LinearTransducer, ...]
    #: Per-benchmark transducers (the Figure 6 fits).
    benchmark_transducers: Dict[str, LinearTransducer]
    #: One-step-ahead relative error of the averaged model on the holdout.
    validation_error: float
    #: Name of the held-out validation benchmark.
    holdout: str
    #: Largest gain multiplier g keeping the closed loop stable.
    stability_limit: float

    @property
    def mean_transducer_r_squared(self) -> float:
        """Average R² of the per-benchmark Figure 6 fits."""
        values = [t.r_squared for t in self.benchmark_transducers.values()]
        return float(np.mean(values)) if values else float("nan")


def _excitation_run(config: CMPConfig, mix: Mix, seed: int, n_gpm: int):
    """One white-noise run; import deferred to avoid a cycle at import."""
    from ..cmpsim.simulator import Simulation

    scheme = WhiteNoiseDVFSScheme(seed=seed)
    sim = Simulation(config, scheme, mix=mix, budget_fraction=1.0, seed=seed)
    return sim.run(n_gpm)


def _homogeneous_mix(config: CMPConfig, benchmark_name: str) -> Mix:
    """Every core of every island runs ``benchmark_name``."""
    islands = tuple(
        (benchmark_name,) * config.cores_per_island
        for _ in range(config.n_islands)
    )
    return Mix(name=f"cal-{benchmark_name}", islands=islands)


def _gain_samples(result) -> tuple[np.ndarray, np.ndarray]:
    """Pooled (df, dP) samples across islands from one run's telemetry."""
    freq = result.telemetry["island_frequency_ghz"]
    power = result.telemetry["island_power_frac"]
    df = np.diff(freq, axis=0).ravel()
    dp = np.diff(power, axis=0).ravel()
    return df, dp


def _transducer_samples(result) -> tuple[np.ndarray, np.ndarray]:
    """Pooled (utilization, power) samples across islands from one run."""
    util = result.telemetry["island_utilization"].ravel()
    power = result.telemetry["island_power_frac"].ravel()
    return util, power


def _per_island_transducers(result, n_islands: int) -> Tuple[LinearTransducer, ...]:
    util = result.telemetry["island_utilization"]
    power = result.telemetry["island_power_frac"]
    return tuple(
        fit_transducer(util[:, i], power[:, i]) for i in range(n_islands)
    )


def calibrate(
    config: CMPConfig,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
    holdout: str = DEFAULT_HOLDOUT,
    n_gpm: int = 12,
) -> Calibration:
    """Run the full calibration pipeline for a platform + mix.

    Deterministic for a given (config, mix, seed); see
    :func:`default_calibration` for the memoized variant experiments use.
    """
    if holdout not in PARSEC_BENCHMARKS:
        raise ValueError(f"holdout {holdout!r} is not a PARSEC benchmark")
    mix = mix_for_config(config, mix)

    per_benchmark_gains: Dict[str, GainFit] = {}
    benchmark_transducers: Dict[str, LinearTransducer] = {}
    holdout_run = None
    for name in sorted(PARSEC_BENCHMARKS):
        run = _excitation_run(config, _homogeneous_mix(config, name), seed, n_gpm)
        df, dp = _gain_samples(run)
        per_benchmark_gains[name] = fit_system_gain(df, dp)
        benchmark_transducers[name] = fit_transducer(*_transducer_samples(run))
        if name == holdout:
            holdout_run = run

    design_names = [n for n in per_benchmark_gains if n != holdout]
    system_gain = float(
        np.mean([per_benchmark_gains[n].gain for n in design_names])
    )

    # Validate the averaged model on the held-out benchmark (Figure 5).
    assert holdout_run is not None
    freq = holdout_run.telemetry["island_frequency_ghz"]
    power = holdout_run.telemetry["island_power_frac"]
    errors = [
        prediction_error(power[:, i], np.diff(freq[:, i]), system_gain)
        for i in range(config.n_islands)
    ]
    validation_error = float(np.mean(errors))

    pid_gains = design_pid(system_gain, config.control.desired_poles)
    stability = stability_gain_limit(system_gain, pid_gains)

    mix_run = _excitation_run(config, mix, seed, n_gpm)
    island_transducers = _per_island_transducers(mix_run, config.n_islands)

    return Calibration(
        system_gain=system_gain,
        per_benchmark_gains=per_benchmark_gains,
        pid_gains=pid_gains,
        island_transducers=island_transducers,
        benchmark_transducers=benchmark_transducers,
        validation_error=validation_error,
        holdout=holdout,
        stability_limit=stability,
    )


@functools.lru_cache(maxsize=32)
def _cached_calibration(config: CMPConfig, mix: Mix, seed: int) -> Calibration:
    return calibrate(config, mix=mix, seed=seed)


def default_calibration(
    config: CMPConfig, mix: Mix | None = None, seed: int = DEFAULT_SEED
) -> Calibration:
    """Memoized :func:`calibrate` — experiments share one calibration per
    (platform, mix, seed)."""
    mix = mix_for_config(config, mix)
    return _cached_calibration(config, mix, seed)
