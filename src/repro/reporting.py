"""Plain-text rendering of experiment outputs.

The benchmark harness reproduces the paper's tables and figures as text:
aligned tables for tabular results and compact sparkline series for
time-series figures.  Everything returns strings so experiments stay
testable without capturing stdout.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "as_percent",
    "format_series",
    "format_table",
    "format_value",
    "sparkline",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a series as a unicode sparkline (resampled to ``width``)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and arr.size > width:
        # Block-average resample.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def format_series(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render named series as labelled sparklines with min/mean/max."""
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(k) for k in series), default=0)
    for name, values in series.items():
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            lines.append(f"{name.ljust(label_width)}  (empty)")
            continue
        stats = (
            f"min {format_value(float(np.nanmin(arr)))} "
            f"mean {format_value(float(np.nanmean(arr)))} "
            f"max {format_value(float(np.nanmax(arr)))}"
        )
        lines.append(
            f"{name.ljust(label_width)}  {sparkline(arr, width)}  {stats}"
        )
    return "\n".join(lines)


def as_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
