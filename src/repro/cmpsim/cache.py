"""Set-associative cache simulator (the g-cache analogue).

Used by the trace-driven miss-rate calibration
(:func:`repro.workloads.trace.calibrate_miss_rates`) and directly testable
on synthetic access patterns.  The design is a classic index/tag LRU
cache; per-set recency is tracked with a monotonically increasing access
counter, which keeps ``access`` O(associativity) without linked lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CoreConfig, MemoryConfig

__all__ = ["CacheHierarchy", "CacheStats", "SetAssociativeCache"]


@dataclass(frozen=True)
class CacheStats:
    """Aggregate hit/miss counters of a hierarchy run."""

    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0


class SetAssociativeCache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, size_bytes: int, associativity: int, block_bytes: int) -> None:
        if size_bytes <= 0 or associativity <= 0 or block_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a power of two")
        n_blocks = size_bytes // block_bytes
        if n_blocks * block_bytes != size_bytes:
            raise ValueError("size must be a multiple of the block size")
        if n_blocks % associativity != 0:
            raise ValueError("block count must be a multiple of associativity")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.block_bytes = block_bytes
        self.n_sets = n_blocks // associativity
        self._block_shift = int(np.log2(block_bytes))
        # tags[set, way]; -1 marks an invalid way.
        self._tags = np.full((self.n_sets, associativity), -1, dtype=np.int64)
        self._last_use = np.zeros((self.n_sets, associativity), dtype=np.int64)
        self._clock = 0
        self.accesses = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self._block_shift
        return block % self.n_sets, block // self.n_sets

    def access(self, address: int) -> bool:
        """Reference ``address``; returns True on hit.  Misses allocate."""
        set_index, tag = self._locate(address)
        self.accesses += 1
        self._clock += 1
        ways = self._tags[set_index]
        hit_ways = np.flatnonzero(ways == tag)
        if hit_ways.size:
            self._last_use[set_index, hit_ways[0]] = self._clock
            return True
        self.misses += 1
        victim = int(np.argmin(self._last_use[set_index]))
        invalid = np.flatnonzero(ways == -1)
        if invalid.size:
            victim = int(invalid[0])
        self._tags[set_index, victim] = tag
        self._last_use[set_index, victim] = self._clock
        return False

    def reset_stats(self) -> None:
        """Zero the counters, keeping cache contents (for warmup)."""
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all contents and zero the counters."""
        self._tags.fill(-1)
        self._last_use.fill(0)
        self._clock = 0
        self.reset_stats()


class CacheHierarchy:
    """Private L1 in front of a shared-L2 slice."""

    def __init__(self, l1: SetAssociativeCache, l2: SetAssociativeCache) -> None:
        self.l1 = l1
        self.l2 = l2

    @classmethod
    def from_configs(
        cls,
        core: CoreConfig | None = None,
        memory: MemoryConfig | None = None,
        cores_sharing_l2: int = 2,
    ) -> "CacheHierarchy":
        """Build the Table I hierarchy; L2 sized for ``cores_sharing_l2``."""
        core = core or CoreConfig()
        memory = memory or MemoryConfig()
        if cores_sharing_l2 < 1:
            raise ValueError("cores_sharing_l2 must be >= 1")
        l1 = SetAssociativeCache(
            core.l1_size_bytes, core.l1_associativity, core.l1_block_bytes
        )
        l2 = SetAssociativeCache(
            memory.l2_size_bytes_per_core * cores_sharing_l2,
            memory.l2_associativity,
            memory.l2_block_bytes,
        )
        return cls(l1, l2)

    def access(self, address: int) -> str:
        """Reference ``address``; returns "l1", "l2" or "memory"."""
        if self.l1.access(address):
            return "l1"
        if self.l2.access(address):
            return "l2"
        return "memory"

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()

    def stats(self) -> CacheStats:
        return CacheStats(
            l1_accesses=self.l1.accesses,
            l1_misses=self.l1.misses,
            l2_accesses=self.l2.accesses,
            l2_misses=self.l2.misses,
        )
