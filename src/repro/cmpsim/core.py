"""The analytic CPI stack: (workload state, frequency) → performance.

The model is the standard interval decomposition::

    CPI(f) = CPI_base                       # compute + on-core stalls
           + (L1_MPKI / 1000) * lat_L2      # L1 misses hitting shared L2
           + (L2_MPKI / 1000) * lat_mem * f # off-chip misses

The last term is where frequency sensitivity lives: the L2 hit latency is
on-chip and counted in *cycles* (constant as the clock scales), while the
memory latency is off-chip and fixed in *seconds*, so it costs more cycles
at higher frequency.  A memory-bound workload (large L2 MPKI) therefore
gains little throughput from frequency — the effect every performance
result in the paper turns on.

Throughput and the two power-relevant fractions are derived from the same
stack::

    IPS        = alpha * f / CPI(f)                  # instructions/second
    busy       = (CPI_base + L1 term) / CPI(f)       # unstalled cycles
    utilization= IPS / IPS_peak                      # counter-style "CPU %"

``alpha`` is the phase's architectural activity (issue occupancy and
synchronization idling folded together); ``IPS_peak`` is the benchmark's
retirement capability at maximum frequency, making utilization the
fraction-of-peak-throughput quantity a perf-counter-based sensor reports.

Everything is vectorized over cores — inputs may be scalars or aligned
arrays (one entry per core).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..config import MemoryConfig
from ..unit_types import GigaHz, GigaHzLike
from ..workloads.benchmark import BenchmarkSpec

__all__ = [
    "CPIStackResult",
    "cpi_stack",
    "frequency_speedup",
    "memory_cycles_per_instruction",
    "utilization_reference",
]


@dataclass(frozen=True)
class CPIStackResult:
    """Per-core performance quantities for one interval (arrays or scalars)."""

    cpi: np.ndarray
    busy: np.ndarray
    ips: np.ndarray  # instructions per second


def memory_cycles_per_instruction(
    l2_mpki: np.ndarray | float,
    frequency_ghz: GigaHzLike,
    memory: MemoryConfig,
) -> np.ndarray | float:
    """Off-chip stall cycles per instruction at ``frequency_ghz``."""
    latency_ns = units.to_ns(memory.memory_latency_s)
    return np.asarray(l2_mpki) / 1000.0 * latency_ns * np.asarray(frequency_ghz)


def cpi_stack(
    frequency_ghz: GigaHzLike,
    alpha: np.ndarray | float,
    cpi_base: np.ndarray | float,
    l1_mpki: np.ndarray | float,
    l2_mpki: np.ndarray | float,
    memory: MemoryConfig,
    check: bool = True,
) -> CPIStackResult:
    """Evaluate the CPI stack; all array arguments must be aligned.

    ``check=False`` skips input validation; for callers that already
    guarantee the ranges (the simulator's inner loop, which clamps
    frequencies against the DVFS ladder and alphas in the phase machine).
    """
    f = np.asarray(frequency_ghz, dtype=float)
    a = np.asarray(alpha, dtype=float)
    if check:
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        if np.any(a <= 0) or np.any(a > 1):
            raise ValueError("alpha must be in (0, 1]")

    onchip = np.asarray(cpi_base) + np.asarray(l1_mpki) / 1000.0 * memory.l2_hit_cycles
    offchip = memory_cycles_per_instruction(l2_mpki, f, memory)
    cpi = onchip + offchip
    busy = onchip / cpi
    ips = a * f * units.GHZ_TO_HZ / cpi
    return CPIStackResult(
        cpi=np.asarray(cpi, dtype=float),
        busy=np.asarray(busy, dtype=float),
        ips=np.asarray(ips, dtype=float),
    )


def utilization_reference(
    spec: BenchmarkSpec, f_max: GigaHz, memory: MemoryConfig
) -> float:
    """The benchmark's peak IPS: full activity at ``f_max``, mean phase.

    Per-core utilization is reported relative to this constant, so a core
    at maximum frequency with typical activity reads ~``mean alpha``, and
    memory-bound cores saturate well below 1 — the counter behaviour the
    transducer of Figure 6 is fitted against.
    """
    result = cpi_stack(
        f_max,
        alpha=1.0,
        cpi_base=spec.mean_cpi_base,
        l1_mpki=float(np.mean([p.l1_mpki for p in spec.phases])),
        l2_mpki=spec.mean_l2_mpki,
        memory=memory,
    )
    return float(result.ips)


def frequency_speedup(
    f_from: GigaHz,
    f_to: GigaHz,
    cpi_onchip: float,
    mem_cpi_per_ghz: float,
) -> float:
    """Predicted throughput ratio when scaling ``f_from`` → ``f_to``.

    ``mem_cpi_per_ghz`` is the off-chip term's frequency coefficient
    (``L2_MPKI/1000 * lat_mem_ns``); both inputs are observable from
    performance counters, which is how MaxBIPS builds its prediction
    table.
    """
    if f_from <= 0 or f_to <= 0:
        raise ValueError("frequencies must be positive")
    if cpi_onchip <= 0:
        raise ValueError("cpi_onchip must be positive")
    ips_from = f_from / (cpi_onchip + mem_cpi_per_ghz * f_from)
    ips_to = f_to / (cpi_onchip + mem_cpi_per_ghz * f_to)
    return ips_to / ips_from
