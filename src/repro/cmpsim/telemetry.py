"""Per-interval telemetry recording and windowed aggregation.

The simulator appends one record per PIC interval; :meth:`Telemetry.finalize`
turns the buffers into NumPy arrays the experiments slice.  GPM-window
aggregation (per-island mean power/BIPS between two GPM invocations) lives
here too because both the GPM policies and the figures need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..unit_types import (
    BipsArray,
    JoulesArray,
    PowerFractionArray,
    Seconds,
)
from .chip import IntervalResult

__all__ = ["ResilienceEvent", "ResilienceLog", "Telemetry", "WindowStats"]


@dataclass(frozen=True)
class ResilienceEvent:
    """One guard decision: a fault detected, a degradation, a recovery."""

    tick: int
    kind: str
    island: int | None = None
    detail: str = ""


@dataclass
class ResilienceLog:
    """Append-only record of guard activity during one run.

    The guards (sensor guard in ``repro.pic.guard``, GPM guard in
    ``repro.gpm.guard``) write here so tests and the chaos harness can
    assert on detection and recovery instead of inferring them from power
    traces.  ``now`` is the simulator tick the owning scheme stamps
    before invoking the guarded tier; guards never read a clock
    themselves, so logging stays deterministic.
    """

    events: List[ResilienceEvent] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    now: int = 0

    def count(self, kind: str, n: int = 1) -> None:
        """Bump the counter for ``kind`` without recording an event."""
        self.counts[kind] = self.counts.get(kind, 0) + n

    def record(
        self, kind: str, island: int | None = None, detail: str = ""
    ) -> None:
        """Record one event at the current tick (and count it)."""
        self.events.append(
            ResilienceEvent(tick=self.now, kind=kind, island=island, detail=detail)
        )
        self.count(kind)

    def count_of(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def events_of(self, kind: str) -> List[ResilienceEvent]:
        return [e for e in self.events if e.kind == kind]


@dataclass(frozen=True)
class WindowStats:
    """Aggregates over one completed GPM window (several PIC intervals)."""

    #: Mean per-island power over the window, fraction of max chip power.
    island_power_frac: PowerFractionArray
    #: Mean per-island throughput over the window, BIPS.
    island_bips: BipsArray
    #: Mean per-island utilization over the window.
    island_utilization: np.ndarray
    #: Island set-points in force during the window (fractions).
    island_setpoints: PowerFractionArray
    #: Total energy consumed per island over the window, joules.
    island_energy_j: JoulesArray
    #: Instructions retired per island over the window.
    island_instructions: np.ndarray
    duration_s: Seconds


@dataclass
class Telemetry:
    """Append-only record of a simulation run."""

    n_islands: int
    n_cores: int
    _records: Dict[str, List] = field(default_factory=dict)
    _windows: List[WindowStats] = field(default_factory=list)
    _finalized: Dict[str, np.ndarray] | None = None

    _SERIES = (
        "time_s",
        "island_setpoint_frac",
        "island_power_frac",
        "island_sensed_frac",
        "island_frequency_ghz",
        "island_utilization",
        "island_bips",
        "chip_power_frac",
        "chip_bips",
        "core_temperature_c",
        "core_utilization",
        "is_gpm_tick",
    )

    def __post_init__(self) -> None:
        for key in self._SERIES:
            self._records[key] = []

    def record(
        self,
        time_s: Seconds,
        result: IntervalResult,
        setpoints: np.ndarray,
        sensed: np.ndarray,
        is_gpm_tick: bool,
    ) -> None:
        """Append one interval's worth of data."""
        if self._finalized is not None:
            raise RuntimeError("telemetry already finalized")
        rec = self._records
        rec["time_s"].append(time_s)
        rec["island_setpoint_frac"].append(np.array(setpoints, dtype=float))
        rec["island_power_frac"].append(result.island_power_frac.copy())
        rec["island_sensed_frac"].append(np.array(sensed, dtype=float))
        rec["island_frequency_ghz"].append(result.island_frequency_ghz.copy())
        rec["island_utilization"].append(result.island_utilization.copy())
        rec["island_bips"].append(result.island_bips.copy())
        rec["chip_power_frac"].append(result.chip_power_frac)
        rec["chip_bips"].append(result.chip_bips)
        rec["core_temperature_c"].append(result.core_temperature_c.copy())
        rec["core_utilization"].append(result.core_utilization.copy())
        rec["is_gpm_tick"].append(bool(is_gpm_tick))

    def push_window(self, window: WindowStats) -> None:
        """Record aggregates for a completed GPM window."""
        self._windows.append(window)

    @property
    def windows(self) -> List[WindowStats]:
        return self._windows

    @property
    def n_intervals(self) -> int:
        return len(self._records["time_s"])

    def finalize(self) -> Dict[str, np.ndarray]:
        """Convert the buffers into arrays (idempotent)."""
        if self._finalized is None:
            out: Dict[str, np.ndarray] = {}
            for key, values in self._records.items():
                out[key] = np.asarray(values)
            self._finalized = out
        return self._finalized

    def __getitem__(self, key: str) -> np.ndarray:
        """Array access, finalizing on first use."""
        arrays = self.finalize()
        if key not in arrays:
            raise KeyError(f"unknown telemetry series {key!r}; have {sorted(arrays)}")
        return arrays[key]

    # ------------------------------------------------------------------
    # Analysis helpers used by experiments
    # ------------------------------------------------------------------
    def gpm_tick_indices(self) -> np.ndarray:
        """Interval indices at which the GPM ran."""
        return np.flatnonzero(self["is_gpm_tick"])

    def tracking_segments(self) -> List[tuple[np.ndarray, np.ndarray]]:
        """Per GPM window, per island: (actual series, setpoint) segments.

        Returns a flat list of (power series, constant setpoint array of
        length 1) ... one tuple per (window, island).  Used by the
        robustness-metric experiments (Figures 9/10).
        """
        ticks = self.gpm_tick_indices()
        power = self["island_power_frac"]
        setpoints = self["island_setpoint_frac"]
        segments: List[tuple[np.ndarray, np.ndarray]] = []
        boundaries = list(ticks) + [self.n_intervals]
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            if end <= start:
                continue
            for island in range(self.n_islands):
                segments.append(
                    (power[start:end, island], setpoints[start, island : island + 1])
                )
        return segments
