"""DVFS operating points: the Pentium-M-style V/F ladder of Table I.

A :class:`DVFSTable` owns the discrete (frequency, voltage) pairs an
island supports and answers the three questions actuation needs:

* what voltage accompanies a frequency (piecewise-linear interpolation in
  continuous mode — the paper's PID analysis treats frequency as a
  continuous actuator within the ladder's range);
* which table entry a requested frequency snaps to (quantized mode, used
  by MaxBIPS);
* what the actuation bounds are.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..config import PENTIUM_M_VF_TABLE
from ..unit_types import GigaHz, GigaHzLike, VoltsLike

__all__ = ["DVFSTable"]


class DVFSTable:
    """The discrete voltage/frequency operating points of an island."""

    def __init__(
        self, vf_pairs: Sequence[Tuple[float, float]] = PENTIUM_M_VF_TABLE
    ) -> None:
        if len(vf_pairs) < 2:
            raise ValueError("need at least two operating points")
        freqs = np.array([f for f, _ in vf_pairs], dtype=float)
        volts = np.array([v for _, v in vf_pairs], dtype=float)
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("frequencies must be strictly increasing")
        if np.any(np.diff(volts) < 0):
            raise ValueError("voltage must be non-decreasing with frequency")
        if np.any(freqs <= 0) or np.any(volts <= 0):
            raise ValueError("frequencies and voltages must be positive")
        self.frequencies = freqs
        self.voltages = volts
        self._f_min = float(freqs[0])
        self._f_max = float(freqs[-1])

    @property
    def f_min(self) -> GigaHz:
        return self._f_min

    @property
    def f_max(self) -> GigaHz:
        return self._f_max

    @property
    def n_points(self) -> int:
        return int(self.frequencies.size)

    def clamp(self, frequency: GigaHzLike) -> GigaHzLike:
        """Restrict a requested frequency to the ladder's range."""
        if isinstance(frequency, (float, int)):
            # Hot path: the PIC clamps one scalar per island per interval,
            # and np.clip is ~30x slower than two comparisons there.
            return min(max(float(frequency), self._f_min), self._f_max)
        return np.clip(frequency, self._f_min, self._f_max)

    def voltage_at(self, frequency: GigaHzLike) -> VoltsLike:
        """Supply voltage for ``frequency`` (piecewise-linear between points).

        Frequencies outside the ladder raise: actuation must clamp first,
        and silent extrapolation would hide actuator bugs.
        """
        f = np.asarray(frequency, dtype=float)
        if f.min(initial=self._f_min) < self._f_min - 1e-12 or f.max(
            initial=self._f_max
        ) > self._f_max + 1e-12:
            raise ValueError(
                f"frequency {frequency} outside ladder "
                f"[{self.f_min}, {self.f_max}] GHz"
            )
        result = np.interp(f, self.frequencies, self.voltages)
        if result.ndim == 0:
            return float(result)
        return result

    def quantize(self, frequency: GigaHz) -> GigaHz:
        """Nearest discrete operating frequency."""
        f = self.clamp(frequency)
        index = int(np.argmin(np.abs(self.frequencies - f)))
        return float(self.frequencies[index])

    def quantize_down(self, frequency: GigaHz) -> GigaHz:
        """Highest discrete frequency not exceeding ``frequency``.

        This is the conservative snap a budget-respecting scheme (MaxBIPS)
        uses: never round up into a higher power state.
        """
        f = self.clamp(frequency)
        index = int(np.searchsorted(self.frequencies, f + 1e-12) - 1)
        index = max(index, 0)
        return float(self.frequencies[index])

    def index_of(self, frequency: GigaHz) -> int:
        """Table index of an exact operating frequency."""
        matches = np.flatnonzero(np.isclose(self.frequencies, frequency))
        if matches.size == 0:
            raise ValueError(f"{frequency} GHz is not a table operating point")
        return int(matches[0])

    def operating_points(self) -> list[Tuple[float, float]]:
        """All (frequency GHz, voltage V) pairs, ascending."""
        return list(zip(self.frequencies.tolist(), self.voltages.tolist()))
