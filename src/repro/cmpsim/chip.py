"""Vectorized chip state: cores, islands, power, thermal, normalization.

A :class:`Chip` owns everything the per-interval evaluation needs as flat
NumPy arrays over cores (the guides' idiom: one vectorized pass instead
of per-core Python objects).  :meth:`Chip.compute_interval` turns the
interval's workload samples plus the current island frequencies into
performance and power for every core, island and the chip, and advances
the thermal network.

The chip also fixes the normalization constant the whole library reports
against: ``max_power_w`` is the chip's power with every core fully active
at the top operating point (plus the uncore share), and all budgets,
set-points and power series are fractions of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import units
from ..arrayops import island_sums
from ..config import CMPConfig
from ..power.model import CorePowerModel
from ..thermal.floorplan import Floorplan, grid_floorplan
from ..unit_types import (
    Bips,
    BipsArray,
    CelsiusArray,
    GigaHz,
    GigaHzArray,
    PowerFraction,
    PowerFractionArray,
    Seconds,
    Watts,
    WattsArray,
)
from ..thermal.rc_model import RCThermalModel
from ..variation.leakage_variation import (
    island_multipliers_to_cores,
    uniform_multipliers,
)
from ..workloads.benchmark import BenchmarkSpec
from .core import cpi_stack, utilization_reference
from .dvfs import DVFSTable

__all__ = ["Chip", "IntervalResult"]


@dataclass(frozen=True)
class IntervalResult:
    """Everything measured over one simulation interval."""

    dt: Seconds
    #: Per-core arrays.
    core_busy: np.ndarray
    core_ips: np.ndarray
    core_instructions: np.ndarray
    core_power_w: WattsArray
    core_utilization: np.ndarray
    core_temperature_c: CelsiusArray
    #: Per-island arrays.
    island_power_w: WattsArray
    island_power_frac: PowerFractionArray
    island_bips: BipsArray
    island_utilization: np.ndarray
    island_frequency_ghz: GigaHzArray
    #: Chip scalars.
    chip_power_w: Watts
    chip_power_frac: PowerFraction
    chip_bips: Bips


class Chip:
    """The simulated CMP: per-core state plus island-level DVFS."""

    def __init__(
        self,
        config: CMPConfig,
        specs: Sequence[BenchmarkSpec],
        floorplan: Floorplan | None = None,
    ) -> None:
        if len(specs) != config.n_cores:
            raise ValueError(
                f"need one benchmark per core: {config.n_cores} cores, "
                f"{len(specs)} specs"
            )
        self.config = config
        self.specs = tuple(specs)
        self.dvfs = DVFSTable(config.dvfs.vf_table)
        self.power_model = CorePowerModel(
            config.core, nominal_voltage=float(self.dvfs.voltages[-1])
        )
        self.floorplan = floorplan or grid_floorplan(config.n_cores)
        self.thermal = RCThermalModel(self.floorplan, config.thermal)

        self.island_of_core = np.array(
            [config.island_of_core(c) for c in range(config.n_cores)]
        )
        if config.island_leakage_multipliers is not None:
            self.leakage_multipliers = island_multipliers_to_cores(
                config.island_leakage_multipliers, config.cores_per_island
            )
        else:
            self.leakage_multipliers = uniform_multipliers(config.n_cores)

        # Islands start at the top operating point (the no-management state).
        self.island_frequency = np.full(config.n_islands, self.dvfs.f_max)

        # Per-benchmark peak throughput (useful for reporting; utilization
        # itself is the active-cycle-rate fraction, see compute_interval).
        self.ips_peak = np.array(
            [
                utilization_reference(spec, self.dvfs.f_max, config.memory)
                for spec in self.specs
            ]
        )

        self._init_normalization()

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def _init_normalization(self) -> None:
        v_max = float(self.dvfs.voltages[-1])
        f_max = self.dvfs.f_max
        per_core_max = self.power_model.power(
            v_max,
            f_max,
            busy=1.0,
            alpha=1.0,
            temperature_c=self.power_model.leakage.nominal_temperature_c,
            leakage_multiplier=self.leakage_multipliers,
        )
        cores_max = float(np.sum(per_core_max))
        uncore_fraction = self.config.uncore_fraction
        self.uncore_power_w = cores_max * uncore_fraction / (1.0 - uncore_fraction)
        self.max_power_w = cores_max + self.uncore_power_w
        self._per_core_max_w = np.asarray(per_core_max, dtype=float)
        # Static per-island power bounds, cached here because every GPM
        # bind re-asks for them (see island_power_bounds).
        per_core_min = self.power_model.power(
            float(self.dvfs.voltages[0]),
            self.dvfs.f_min,
            busy=0.0,
            alpha=1.0,
            temperature_c=self.power_model.leakage.nominal_temperature_c,
            leakage_multiplier=self.leakage_multipliers,
        )
        n_islands = self.config.n_islands
        self._island_min_frac = (
            island_sums(
                self.island_of_core, np.asarray(per_core_min, dtype=float), n_islands
            )
            / self.max_power_w
        )
        self._island_max_frac = (
            island_sums(self.island_of_core, self._per_core_max_w, n_islands)
            / self.max_power_w
        )

    @property
    def uncore_fraction(self) -> PowerFraction:
        """Uncore power as a fraction of max chip power (always drawn)."""
        return self.uncore_power_w / self.max_power_w

    def island_power_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Static per-island (min, max) power as fractions of max power.

        Max: every core fully active at the top point.  Min: every core
        idle (clock-gating floor) at the bottom point.  Real consumption
        always lies between; the bounds keep GPM set-points sane.

        Returns fresh copies — some schemes (e.g. no-management) mutate the
        returned arrays as their set-points.
        """
        return self._island_min_frac.copy(), self._island_max_frac.copy()

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def set_island_frequency(self, island: int, frequency_ghz: GigaHz) -> GigaHz:
        """Apply a frequency request to an island; returns what was applied.

        The request is clamped to the ladder's range and, in quantized
        mode, snapped to the nearest table point — the actuator semantics
        of the paper's architecture.
        """
        if not 0 <= island < self.config.n_islands:
            raise IndexError(f"island {island} out of range")
        f = self.dvfs.clamp(frequency_ghz)
        if self.config.dvfs.mode == "quantized":
            f = self.dvfs.quantize(f)
        self.island_frequency[island] = f
        return float(f)

    def core_frequencies(self) -> GigaHzArray:
        """Per-core frequency vector implied by island settings."""
        return self.island_frequency[self.island_of_core]

    # ------------------------------------------------------------------
    # Per-interval evaluation
    # ------------------------------------------------------------------
    def compute_interval(
        self,
        alpha: np.ndarray,
        cpi_base: np.ndarray,
        l1_mpki: np.ndarray,
        l2_mpki: np.ndarray,
        dt: Seconds,
        transitioned_islands: np.ndarray | None = None,
    ) -> IntervalResult:
        """Evaluate one interval under the current island frequencies.

        ``transitioned_islands`` flags islands whose V/F changed entering
        this interval; their cores lose the DVFS transition overhead
        (0.5% of CPU time, during which no instructions execute).
        """
        cfg = self.config
        n_cores = cfg.n_cores
        for name, arr in (
            ("alpha", alpha),
            ("cpi_base", cpi_base),
            ("l1_mpki", l1_mpki),
            ("l2_mpki", l2_mpki),
        ):
            if np.shape(arr) != (n_cores,):
                raise ValueError(f"{name} must have one entry per core")
        if dt <= 0:
            raise ValueError("dt must be positive")

        freq = self.core_frequencies()
        volt = np.asarray(self.dvfs.voltage_at(freq))

        # Ranges are guaranteed upstream: frequencies come off the clamped
        # ladder, alphas out of the phase machine's clip.
        perf = cpi_stack(
            freq, alpha, cpi_base, l1_mpki, l2_mpki, cfg.memory, check=False
        )

        if transitioned_islands is not None and np.any(transitioned_islands):
            mask = np.asarray(transitioned_islands, dtype=bool)[self.island_of_core]
            effective_dt = np.where(
                mask, dt * (1.0 - cfg.dvfs.transition_overhead), dt
            )
        else:
            # Scalar broadcasts identically to np.full(n_cores, dt) and
            # skips two array allocations on the common no-transition path.
            effective_dt = dt
        instructions = perf.ips * effective_dt

        temperatures = self.thermal.temperatures
        core_power = self.power_model.power(
            volt,
            freq,
            busy=perf.busy,
            alpha=alpha,
            temperature_c=temperatures,
            leakage_multiplier=self.leakage_multipliers,
            check=False,
        )
        core_power = np.asarray(core_power, dtype=float)

        # Utilization = switching-activity-weighted cycle rate relative to
        # the peak cycle rate: the perf-counter quantity the PIC's sensor
        # reads.  Monotone in frequency for every workload class, which is
        # what makes the Figure 6 linear fits tight.
        activity = self.power_model.dynamic.core_activity(perf.busy, alpha)
        utilization = np.asarray(activity) * freq / self.dvfs.f_max
        island_power = island_sums(self.island_of_core, core_power, cfg.n_islands)
        island_bips = island_sums(
            self.island_of_core,
            units.bips(instructions, effective_dt),
            cfg.n_islands,
        )
        island_util = island_sums(
            self.island_of_core, utilization, cfg.n_islands
        )
        island_util /= cfg.cores_per_island

        chip_power = float(island_power.sum() + self.uncore_power_w)

        new_temps = self.thermal.step(core_power, dt)

        return IntervalResult(
            dt=dt,
            core_busy=perf.busy,
            core_ips=perf.ips,
            core_instructions=instructions,
            core_power_w=core_power,
            core_utilization=utilization,
            core_temperature_c=new_temps.copy(),
            island_power_w=island_power,
            island_power_frac=island_power / self.max_power_w,
            island_bips=island_bips,
            island_utilization=island_util,
            island_frequency_ghz=self.island_frequency.copy(),
            chip_power_w=chip_power,
            chip_power_frac=chip_power / self.max_power_w,
            chip_bips=float(island_bips.sum()),
        )
