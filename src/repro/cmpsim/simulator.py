"""The simulation driver: workloads + chip + a pluggable power scheme.

A :class:`PowerScheme` is anything that manages power: the paper's CPM
(GPM + PICs), the MaxBIPS baseline, or no management at all.  The driver
owns the two-rate cadence of Figure 4 — it calls ``on_gpm`` every GPM
interval and ``on_pic`` every PIC interval — and evaluates the chip once
per PIC interval.

Measurement semantics: a scheme invoked at tick *t* sees measurements up
to and including tick *t-1* (``sim.last_result`` plus the aggregated GPM
windows) and actuates frequencies that take effect *during* tick *t* —
the causal ordering a real controller lives with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .. import units
from ..arrayops import island_sums
from ..config import CMPConfig
from ..rng import DEFAULT_SEED, SeedSequenceFactory
from ..unit_types import PowerFraction, Seconds
from ..workloads.benchmark import BenchmarkInstance
from ..workloads.mixes import Mix, mix_for_config
from .chip import Chip, IntervalResult
from .telemetry import Telemetry, WindowStats

__all__ = ["PowerScheme", "Simulation", "SimulationResult"]


@runtime_checkable
class PowerScheme(Protocol):
    """Power-management plug-in interface."""

    name: str

    def bind(self, sim: "Simulation") -> None:
        """Called once before the run starts; build controllers here."""

    def on_gpm(self, sim: "Simulation") -> None:
        """Called every GPM interval (coarse tier), before ``on_pic``."""

    def on_pic(self, sim: "Simulation") -> None:
        """Called every PIC interval (fine tier); actuate frequencies."""


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    telemetry: Telemetry
    config: CMPConfig
    mix_name: str
    scheme_name: str
    budget_fraction: PowerFraction
    duration_s: Seconds
    total_instructions: float

    @property
    def mean_chip_bips(self) -> float:
        return float(np.mean(self.telemetry["chip_bips"]))

    @property
    def mean_chip_power_frac(self) -> float:
        return float(np.mean(self.telemetry["chip_power_frac"]))


class Simulation:
    """One simulated run of a CMP under a power-management scheme."""

    def __init__(
        self,
        config: CMPConfig,
        scheme: PowerScheme,
        mix: Mix | None = None,
        budget_fraction: PowerFraction = 0.8,
        seed: int = DEFAULT_SEED,
        instances: list | None = None,
    ) -> None:
        """``instances`` overrides the default per-core workload
        construction with pre-built ones (e.g. a
        :class:`~repro.workloads.recorded.RecordedWorkload` replay); one
        entry per core, each exposing ``advance()`` and ``retire()``."""
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        self.config = config
        self.scheme = scheme
        self.mix = mix_for_config(config, mix)
        if self.mix.n_cores != config.n_cores or self.mix.n_islands != config.n_islands:
            raise ValueError(
                f"mix {self.mix.name} shape ({self.mix.n_cores} cores, "
                f"{self.mix.n_islands} islands) does not match config "
                f"({config.n_cores} cores, {config.n_islands} islands)"
            )
        self.budget_fraction = budget_fraction
        self.seeds = SeedSequenceFactory(seed)

        specs = self.mix.specs()
        self.chip = Chip(config, specs)
        if instances is not None:
            if len(instances) != config.n_cores:
                raise ValueError(
                    f"need one workload instance per core "
                    f"({config.n_cores}), got {len(instances)}"
                )
            self.instances = list(instances)
        else:
            self.instances = [
                BenchmarkInstance(
                    spec, self.seeds.generator(f"workload/core{i}/{spec.name}")
                )
                for i, spec in enumerate(specs)
            ]
        self.telemetry = Telemetry(
            n_islands=config.n_islands, n_cores=config.n_cores
        )

        #: Current per-island power set-points, fraction of max chip power.
        #: The GPM tier writes these; the PIC tier tracks them.
        self.setpoints = np.zeros(config.n_islands)
        #: Per-island power as last *sensed* through the utilization
        #: transducer (what the PIC believes); schemes update it.
        self.sensed_power = np.zeros(config.n_islands)
        self.last_result: IntervalResult | None = None
        self.tick = 0
        self.time_s: Seconds = 0.0

        # GPM-window accumulators.
        self._window_sums: dict[str, np.ndarray] | None = None
        self._window_ticks = 0

    # ------------------------------------------------------------------
    # Quantities schemes need
    # ------------------------------------------------------------------
    @property
    def distributable_budget(self) -> PowerFraction:
        """Budget available to islands: chip budget minus the uncore share."""
        return max(0.0, self.budget_fraction - self.chip.uncore_fraction)

    @property
    def windows(self) -> list[WindowStats]:
        """Completed GPM-window aggregates, oldest first."""
        return self.telemetry.windows

    # ------------------------------------------------------------------
    # Window accounting
    # ------------------------------------------------------------------
    def _reset_window(self) -> None:
        n = self.config.n_islands
        self._window_sums = {
            "power": np.zeros(n),
            "bips": np.zeros(n),
            "util": np.zeros(n),
            "energy": np.zeros(n),
            "instructions": np.zeros(n),
        }
        self._window_ticks = 0

    def _accumulate_window(self, result: IntervalResult) -> None:
        assert self._window_sums is not None
        sums = self._window_sums
        sums["power"] += result.island_power_frac
        sums["bips"] += result.island_bips
        sums["util"] += result.island_utilization
        sums["energy"] += result.island_power_w * result.dt
        sums["instructions"] += island_sums(
            self.chip.island_of_core,
            result.core_instructions,
            self.config.n_islands,
        )
        self._window_ticks += 1

    def _complete_window(self) -> None:
        if self._window_sums is None or self._window_ticks == 0:
            return
        n = self._window_ticks
        sums = self._window_sums
        self.telemetry.push_window(
            WindowStats(
                island_power_frac=sums["power"] / n,
                island_bips=sums["bips"] / n,
                island_utilization=sums["util"] / n,
                island_setpoints=self.setpoints.copy(),
                island_energy_j=sums["energy"].copy(),
                island_instructions=sums["instructions"].copy(),
                duration_s=n * self.config.control.pic_interval_s,
            )
        )
        self._reset_window()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self, n_gpm_intervals: int, batch_workloads: bool | None = None
    ) -> SimulationResult:
        """Simulate ``n_gpm_intervals`` GPM windows; returns the result.

        ``batch_workloads`` selects how workload samples are produced:
        ``True`` pre-generates the whole run's samples in one vectorized
        ``advance_block`` pass per core (exact — workload evolution never
        observes the control loop), ``False`` calls ``advance()`` per core
        per tick, and ``None`` (default) batches whenever every instance
        supports it.  Both paths yield bit-identical telemetry; batching
        only changes ``retire()`` from one call per tick to one call per
        run (same totals).
        """
        if n_gpm_intervals < 1:
            raise ValueError("need at least one GPM interval")
        cfg = self.config
        dt = cfg.control.pic_interval_s
        pics_per_gpm = cfg.control.pics_per_gpm
        n_cores = cfg.n_cores

        self.scheme.bind(self)
        self._reset_window()

        total_ticks = n_gpm_intervals * pics_per_gpm
        if batch_workloads is None:
            batch_workloads = all(
                hasattr(instance, "advance_block") for instance in self.instances
            )

        if batch_workloads:
            # One (total_ticks, n_cores) array per workload field; row t is
            # the tick-t per-core vector the serial path would assemble.
            wl_alpha = np.empty((total_ticks, n_cores))
            wl_cpi_base = np.empty((total_ticks, n_cores))
            wl_l1_mpki = np.empty((total_ticks, n_cores))
            wl_l2_mpki = np.empty((total_ticks, n_cores))
            for i, instance in enumerate(self.instances):
                block = instance.advance_block(total_ticks)
                wl_alpha[:, i] = block.alpha
                wl_cpi_base[:, i] = block.cpi_base
                wl_l1_mpki[:, i] = block.l1_mpki
                wl_l2_mpki[:, i] = block.l2_mpki
            instruction_totals = np.zeros(n_cores)
        else:
            alpha = np.empty(n_cores)
            cpi_base = np.empty(n_cores)
            l1_mpki = np.empty(n_cores)
            l2_mpki = np.empty(n_cores)

        for t in range(total_ticks):
            if batch_workloads:
                alpha = wl_alpha[t]
                cpi_base = wl_cpi_base[t]
                l1_mpki = wl_l1_mpki[t]
                l2_mpki = wl_l2_mpki[t]
            else:
                for i, instance in enumerate(self.instances):
                    sample = instance.advance()
                    alpha[i] = sample.alpha
                    cpi_base[i] = sample.cpi_base
                    l1_mpki[i] = sample.l1_mpki
                    l2_mpki[i] = sample.l2_mpki

            is_gpm_tick = self.tick % pics_per_gpm == 0
            if is_gpm_tick:
                self._complete_window()
                self.scheme.on_gpm(self)

            previous_freq = self.chip.island_frequency.copy()
            self.scheme.on_pic(self)
            transitioned = (
                np.abs(self.chip.island_frequency - previous_freq) > units.EPS
            )

            result = self.chip.compute_interval(
                alpha, cpi_base, l1_mpki, l2_mpki, dt, transitioned
            )
            if batch_workloads:
                # Same per-tick IEEE adds as calling retire() every tick,
                # just into an array; folded into the instances below.
                instruction_totals += result.core_instructions
            else:
                for i, instance in enumerate(self.instances):
                    instance.retire(float(result.core_instructions[i]))

            self._accumulate_window(result)
            self.telemetry.record(
                self.time_s, result, self.setpoints, self.sensed_power, is_gpm_tick
            )
            self.last_result = result
            self.tick += 1
            self.time_s += dt

        if batch_workloads:
            for i, instance in enumerate(self.instances):
                instance.retire(float(instruction_totals[i]))

        self._complete_window()
        return SimulationResult(
            telemetry=self.telemetry,
            config=cfg,
            mix_name=self.mix.name,
            scheme_name=self.scheme.name,
            budget_fraction=self.budget_fraction,
            duration_s=self.time_s,
            total_instructions=float(
                sum(inst.instructions_retired for inst in self.instances)
            ),
        )
