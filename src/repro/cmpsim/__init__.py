"""Interval-based CMP simulator (the Simics/GEMS analogue).

The simulator advances in PIC-sized intervals (0.5 ms by default).  Per
interval, each core's synthetic workload produces a phase sample; the
analytic CPI stack converts (sample, frequency) into retired
instructions, busy fraction and utilization; the power models convert the
same state into watts; and a lumped-RC model advances temperatures.  A
pluggable :class:`~repro.cmpsim.simulator.PowerScheme` receives callbacks
at PIC and GPM cadence and actuates island frequencies — the paper's CPM
architecture and the MaxBIPS/no-management baselines are all schemes.

* :mod:`repro.cmpsim.dvfs` — the 8-point Pentium-M V/F table, voltage
  interpolation, quantization.
* :mod:`repro.cmpsim.cache` — set-associative LRU caches used for
  trace-driven miss-rate calibration.
* :mod:`repro.cmpsim.core` — the analytic CPI stack.
* :mod:`repro.cmpsim.chip` — vectorized per-interval evaluation of all
  cores, islands and the chip, plus the max-power normalization.
* :mod:`repro.cmpsim.telemetry` — per-interval recording.
* :mod:`repro.cmpsim.simulator` — the simulation driver and scheme hooks.
"""

from .cache import CacheHierarchy, CacheStats, SetAssociativeCache
from .chip import Chip, IntervalResult
from .core import cpi_stack, utilization_reference
from .dvfs import DVFSTable
from .simulator import PowerScheme, Simulation, SimulationResult
from .telemetry import Telemetry

__all__ = [
    "CacheHierarchy",
    "CacheStats",
    "Chip",
    "DVFSTable",
    "IntervalResult",
    "PowerScheme",
    "SetAssociativeCache",
    "Simulation",
    "SimulationResult",
    "Telemetry",
    "cpi_stack",
    "utilization_reference",
]
