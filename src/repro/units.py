"""Unit conventions and conversion helpers used across the library.

The whole library sticks to one set of internal units so that numeric
constants never need per-module interpretation:

==============  ==========================================
quantity        internal unit
==============  ==========================================
time            seconds
frequency       GHz (clock rate of a core / island)
voltage         volts
power           watts (absolute) or *fraction of max chip
                power* when a value is documented as a
                "share" / "budget"
temperature     degrees Celsius
energy          joules
instructions    raw counts; throughput reported in BIPS
                (billions of instructions per second)
==============  ==========================================

Power *budgets*, *set-points* and every per-interval power series that an
experiment reports follow the paper's convention of being expressed as a
fraction of the maximum chip power (e.g. the default chip-wide budget is
``0.8``, i.e. "80% of maximum chip power").

This table is machine-checked: each row has a matching annotation alias
in :mod:`repro.unit_types` (``Seconds``, ``GigaHz``, ``Volts``,
``Watts``/``PowerFraction``, ``Celsius``, ``Joules``, ``Bips``), and the
``dimensions`` pass of :mod:`repro.lintkit` statically verifies that
annotated values never cross scales or quantities without going through
the helpers below.  The rule catalogue (DIM001–DIM005) is documented in
``docs/INVARIANTS.md``.
"""

from __future__ import annotations

import numpy as np

from .unit_types import (
    BipsLike,
    GigaHz,
    Hertz,
    Joules,
    Microseconds,
    Milliseconds,
    Nanojoules,
    Nanoseconds,
    Seconds,
    SecondsLike,
)

__all__ = [
    "EPS",
    "GHZ_TO_HZ",
    "MICRO",
    "MICROSECONDS",
    "MILLI",
    "MILLISECONDS",
    "NANOSECONDS",
    "NJ_PER_J",
    "NS_PER_S",
    "approx_eq",
    "bips",
    "cycles_at",
    "hz",
    "ms",
    "ns",
    "seconds_for_cycles",
    "to_ms",
    "to_nj",
    "to_ns",
    "us",
]

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

GHZ_TO_HZ = 1e9

#: Nanoseconds in one second (seconds -> nanoseconds multiplier).
NS_PER_S = 1e9

#: Nanojoules in one joule (joules -> nanojoules multiplier); energy-per-
#: instruction figures are conventionally quoted in nJ/instruction.
NJ_PER_J = 1e9

#: Dimensionless SI prefix multipliers, for floors/resolutions that are
#: "a thousandth / a millionth of the quantity's natural scale".
MILLI = 1e-3
MICRO = 1e-6

#: Default absolute tolerance for "are these two internal-unit quantities
#: the same" comparisons (and for guarding divisions by almost-zero).
#: One part in 10^9 is far below every physical resolution in the model
#: (frequency steps are 0.2 GHz, intervals 0.5 ms, powers ~watts).
EPS = 1e-9


def approx_eq(a: float, b: float, tol: float = EPS) -> bool:
    """True when ``a`` and ``b`` agree to within ``tol`` (absolute)."""
    return abs(a - b) <= tol


def ms(value: Milliseconds) -> Seconds:
    """Convert milliseconds to seconds."""
    return value * MILLISECONDS


def us(value: Microseconds) -> Seconds:
    """Convert microseconds to seconds."""
    return value * MICROSECONDS


def ns(value: Nanoseconds) -> Seconds:
    """Convert nanoseconds to seconds."""
    return value * NANOSECONDS


def to_ms(value: Seconds) -> Milliseconds:
    """Convert seconds to milliseconds (displays, ms-quoted tables)."""
    return value / MILLISECONDS


def to_ns(value: Seconds) -> Nanoseconds:
    """Convert seconds to nanoseconds (latency tables, cycle math)."""
    return value * NS_PER_S


def to_nj(value: Joules) -> Nanojoules:
    """Convert joules to nanojoules (energy-per-instruction figures)."""
    return value * NJ_PER_J


def hz(frequency_ghz: GigaHz) -> Hertz:
    """Convert a GHz clock rate to Hz (cycles per second)."""
    return frequency_ghz * GHZ_TO_HZ


def cycles_at(latency_seconds: Seconds, frequency_ghz: GigaHz) -> float:
    """Number of core cycles a fixed wall-clock latency occupies.

    This is the conversion at the heart of the memory-boundness effect: an
    off-chip access costs a constant number of *seconds*, so it costs
    ``latency * f`` *cycles* — more cycles at higher frequency, which is why
    scaling up the clock does not speed up memory-bound code.
    """
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return latency_seconds * frequency_ghz * GHZ_TO_HZ


def seconds_for_cycles(cycles: float, frequency_ghz: GigaHz) -> Seconds:
    """Wall-clock time taken by ``cycles`` core cycles at ``frequency_ghz``."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return cycles / (frequency_ghz * GHZ_TO_HZ)


def bips(instructions, seconds: SecondsLike) -> BipsLike:
    """Throughput in billions of instructions per second.

    Vectorized: either argument may be a scalar or a numpy array (aligned
    shapes), matching the per-core accounting in the simulator.
    """
    if np.any(np.asarray(seconds) <= 0.0):
        raise ValueError(f"interval must be positive, got {seconds}")
    return instructions / seconds / 1e9
