"""Unit conventions and conversion helpers used across the library.

The whole library sticks to one set of internal units so that numeric
constants never need per-module interpretation:

==============  ==========================================
quantity        internal unit
==============  ==========================================
time            seconds
frequency       GHz (clock rate of a core / island)
voltage         volts
power           watts (absolute) or *fraction of max chip
                power* when a value is documented as a
                "share" / "budget"
temperature     degrees Celsius
energy          joules
instructions    raw counts; throughput reported in BIPS
                (billions of instructions per second)
==============  ==========================================

Power *budgets*, *set-points* and every per-interval power series that an
experiment reports follow the paper's convention of being expressed as a
fraction of the maximum chip power (e.g. the default chip-wide budget is
``0.8``, i.e. "80% of maximum chip power").
"""

from __future__ import annotations

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

GHZ_TO_HZ = 1e9


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECONDS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECONDS


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANOSECONDS


def cycles_at(latency_seconds: float, frequency_ghz: float) -> float:
    """Number of core cycles a fixed wall-clock latency occupies.

    This is the conversion at the heart of the memory-boundness effect: an
    off-chip access costs a constant number of *seconds*, so it costs
    ``latency * f`` *cycles* — more cycles at higher frequency, which is why
    scaling up the clock does not speed up memory-bound code.
    """
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return latency_seconds * frequency_ghz * GHZ_TO_HZ


def seconds_for_cycles(cycles: float, frequency_ghz: float) -> float:
    """Wall-clock time taken by ``cycles`` core cycles at ``frequency_ghz``."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return cycles / (frequency_ghz * GHZ_TO_HZ)


def bips(instructions: float, seconds: float) -> float:
    """Throughput in billions of instructions per second."""
    if seconds <= 0.0:
        raise ValueError(f"interval must be positive, got {seconds}")
    return instructions / seconds / 1e9
