"""Shared array reductions for per-core → per-island aggregation.

The chip model, the simulator's telemetry accumulation, and the analysis
layer all need the same segmented sum: fold a per-core vector into a
per-island vector using the chip's ``island_of_core`` map.  Keeping the
reduction in one place avoids the four hand-rolled copies this tree used
to carry, and lets all of them share the fast implementation:
``np.bincount`` with weights, which runs a tight C loop, instead of
``np.add.at`` whose generalized ufunc dispatch is notoriously slow for
exactly this shape of problem.

Both functions sum elements in ascending index order per output slot, so
for the library's contiguous, ascending ``island_of_core`` maps the
floating-point result is bit-identical to the ``np.add.at`` formulation
they replace.
"""

from __future__ import annotations

import numpy as np

__all__ = ["island_mean", "island_sums"]


def island_sums(
    island_of_core: np.ndarray, values: np.ndarray, n_islands: int
) -> np.ndarray:
    """Sum ``values`` (per-core) into a length-``n_islands`` vector.

    Equivalent to::

        out = np.zeros(n_islands)
        np.add.at(out, island_of_core, values)

    but via :func:`np.bincount`, which is substantially faster.
    """
    return np.bincount(
        island_of_core, weights=values, minlength=n_islands
    ).astype(float, copy=False)


def island_mean(
    island_of_core: np.ndarray, values: np.ndarray, n_islands: int
) -> np.ndarray:
    """Average ``values`` (per-core) within each island."""
    counts = np.bincount(island_of_core, minlength=n_islands)
    if np.any(counts == 0):
        raise ValueError("every island must own at least one core")
    return island_sums(island_of_core, values, n_islands) / counts
