"""Command-line interface: ``python -m repro.lintkit src/`` (or ``repro-lint``).

Exit codes: 0 — clean (no findings beyond the baseline); 1 — new
findings; 2 — usage error (argparse) or unreadable path/baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .baseline import Baseline
from .dimensions import DIM_RULES
from .effects import EFF_RULES
from .engine import ALL_ANALYSES, lint_paths
from .rules import all_rules
from .sarif import render_sarif

__all__ = ["DEFAULT_BASELINE", "build_parser", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description=(
            "AST-based invariant checker for the repro codebase: "
            "determinism, unit discipline, dimensional analysis, config "
            "immutability, control safety and API hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--analysis",
        choices=("all",) + ALL_ANALYSES,
        default="all",
        help=(
            "which analysis to run: 'rules' — the per-module rule "
            "catalogue; 'dimensions' — the interprocedural physical-unit "
            "checker; 'effects' — the interprocedural effect/purity "
            "analysis; 'all' — everything (default)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif renders as GitHub annotations)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to tolerate all current findings, then exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    for rule_id, title, rationale in DIM_RULES + EFF_RULES:
        lines.append(f"{rule_id}  {title}")
        lines.append(f"        {rationale}")
    return "\n".join(lines)


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        baseline = (
            Baseline() if args.no_baseline else Baseline.load(args.baseline)
        )
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: invalid baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    analyses = ALL_ANALYSES if args.analysis == "all" else (args.analysis,)
    try:
        report = lint_paths(args.paths, baseline=baseline, analyses=analyses)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_findings(list(report.raw_findings)).save(args.baseline)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(report.raw_findings)} finding(s)"
        )
        return 0

    if args.format == "json":
        _emit(json.dumps(report.as_dict(), indent=2), args.output)
    elif args.format == "sarif":
        _emit(render_sarif(report), args.output)
    else:
        _emit(report.render_text(), args.output)
    return 0 if report.ok else 1
