"""Shared whole-program plumbing for the interprocedural analyses.

Both multi-module passes — :mod:`repro.lintkit.dimensions` (physical
units) and :mod:`repro.lintkit.effects` (purity/effects) — need the same
three ingredients before they can reason across files: a dotted module
name for every display path, an import-alias table resolving local names
to canonical dotted targets (including relative imports and package
re-exports), and a reader for dotted attribute chains.  They live here
so the two analyses cannot drift apart on how a name resolves.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Mapping

from .rules.base import ModuleInfo

__all__ = [
    "dotted",
    "matches_suffix",
    "module_aliases",
    "module_identity",
    "modules_from_sources",
    "relative_base",
]


def module_identity(path: str) -> tuple[str, bool]:
    """(dotted module name, is_package) for a display path.

    ``src/repro/power/model.py`` -> ``repro.power.model``; anything not
    under a ``src`` directory keeps its full relative dotted path.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    return ".".join(parts), is_package


def relative_base(module: str, is_package: bool, level: int) -> list[str]:
    """Package parts a ``level``-dot relative import is anchored at."""
    parts = module.split(".") if module else []
    if not is_package and parts:
        parts = parts[:-1]
    extra = level - 1
    if extra:
        parts = parts[: max(len(parts) - extra, 0)]
    return parts


def module_aliases(
    tree: ast.Module, module: str, is_package: bool
) -> dict[str, str]:
    """Local name -> canonical dotted target, for every import statement."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    first = alias.name.split(".")[0]
                    aliases[first] = first
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = relative_base(module, is_package, node.level)
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{target}.{alias.name}" if target else alias.name
    return aliases


def dotted(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def matches_suffix(fq: str, suffix: str) -> bool:
    """True when ``fq`` is ``suffix`` or ends with ``.suffix``.

    Matching on dotted-boundary suffixes is what lets the analysis roots
    (``Simulation.run``, ``runner._execute``) bind both to the real tree
    and to the mirror fixtures under ``tests/fixtures/``.
    """
    return fq == suffix or fq.endswith("." + suffix)


def modules_from_sources(sources: Mapping[str, str]) -> list[ModuleInfo]:
    """Parse in-memory sources into :class:`ModuleInfo` records.

    ``sources`` maps display paths (e.g. ``src/repro/foo.py``) to source
    text — the shared entry point for the analyses' test harnesses.
    """
    modules = []
    for path, source in sources.items():
        tree = ast.parse(source, filename=path)
        modules.append(
            ModuleInfo(
                path=path,
                source=source,
                tree=tree,
                lines=tuple(source.splitlines()),
            )
        )
    return modules
