"""The lint engine: files -> parsed modules -> rules -> filtered report.

The pipeline per file is: parse (a syntax error becomes an ``E000``
finding rather than a crash), run every applicable rule, drop findings
suppressed by an inline ``# lint: ignore[RULE]`` comment, then split the
remainder against the committed baseline.  Only *new* findings fail the
build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline
from .dimensions import DimensionAnalysis
from .effects import EffectAnalysis
from .findings import Finding
from .rules import LintRule, ModuleInfo, all_rules
from .suppress import is_suppressed, suppressions_for

__all__ = [
    "ALL_ANALYSES",
    "LintReport",
    "PARSE_ERROR_ID",
    "clear_module_cache",
    "display_path",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_module",
]

#: Every analysis the engine can run: the per-module rule catalogue and
#: the two whole-program passes (dimensional analysis and effects).
ALL_ANALYSES: tuple[str, ...] = ("rules", "dimensions", "effects")

#: The whole-program passes, in the order they run after ``rules``.
_WHOLE_PROGRAM_ANALYSES = (DimensionAnalysis, EffectAnalysis)

#: Pseudo-rule id for files the parser rejects.
PARSE_ERROR_ID = "E000"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    baselined: tuple[Finding, ...] = ()
    suppressed: int = 0
    files_checked: int = 0
    #: Every pre-baseline finding, for --update-baseline.
    raw_findings: tuple[Finding, ...] = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({self.suppressed} suppressed inline,"
            f" {len(self.baselined)} baselined)"
        )
        return "\n".join(lines + [summary])

    def as_dict(self) -> dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "count": len(self.findings),
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "files_checked": self.files_checked,
            "ok": self.ok,
        }


def display_path(path: Path) -> str:
    """POSIX-style path, relative to the working directory when possible."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``*.py`` file under ``paths`` (files accepted verbatim)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            files.append(candidate)
    return files


#: Parsed-module cache shared by every analysis and every lint_paths
#: call in one process: resolved path -> (signature, module, suppression
#: map).  The (mtime_ns, size) signature invalidates stale entries, and
#: the display path is part of the key because it depends on the cwd.
_MODULE_CACHE: dict[tuple[str, str], tuple[tuple[int, int], ModuleInfo, dict[int, set[str]]]] = {}


def clear_module_cache() -> None:
    """Drop every cached parse (test isolation hook)."""
    _MODULE_CACHE.clear()


def load_module(path: Path) -> ModuleInfo:
    """Parse ``path``; raises SyntaxError for the caller to report."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=display_path(path),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def _load_module_cached(
    path: Path,
) -> tuple[ModuleInfo, dict[int, set[str]]]:
    """``load_module`` plus its suppression map, memoized per process.

    The three passes (and repeated lint runs in one test session) share
    one parse per file instead of re-reading and re-parsing the tree.
    """
    key = (str(path.resolve()), str(Path.cwd()))
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = (-1, -1)
    cached = _MODULE_CACHE.get(key)
    if cached is not None and cached[0] == signature:
        return cached[1], cached[2]
    module = load_module(path)
    suppressions = suppressions_for(module.source)
    _MODULE_CACHE[key] = (signature, module, suppressions)
    return module, suppressions


def _check_module(
    module: ModuleInfo,
    rules: Iterable[LintRule],
    suppressions: dict[int, set[str]],
) -> tuple[list[Finding], int]:
    """(active findings, inline-suppressed count) for one module."""
    active: list[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if is_suppressed(suppressions, finding.line, finding.rule_id):
                suppressed += 1
            else:
                active.append(finding)
    return active, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[LintRule] | None = None,
) -> list[Finding]:
    """Lint a source string (the test-suite entry point).

    Inline suppressions are honoured; no baseline is applied.
    """
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(
        path=path, source=source, tree=tree, lines=tuple(source.splitlines())
    )
    findings, _ = _check_module(
        module,
        list(rules) if rules else all_rules(),
        suppressions_for(module.source),
    )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[LintRule] | None = None,
    baseline: Baseline | None = None,
    analyses: Sequence[str] = ALL_ANALYSES,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the report.

    ``analyses`` selects what runs: ``"rules"`` — the per-module rule
    catalogue; ``"dimensions"`` and ``"effects"`` — the whole-program
    passes (which need every module parsed before any is checked).
    """
    unknown = set(analyses) - set(ALL_ANALYSES)
    if unknown:
        raise ValueError(f"unknown analyses: {sorted(unknown)}")
    rule_list = list(rules) if rules else all_rules()
    raw: list[Finding] = []
    suppressed_total = 0
    files = iter_python_files(paths)
    modules: list[ModuleInfo] = []
    suppression_maps: dict[str, dict[int, set[str]]] = {}
    for file_path in files:
        try:
            module, suppressions = _load_module_cached(file_path)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    path=display_path(file_path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"syntax error: {exc.msg}",
                    source_line=(exc.text or "").rstrip("\n"),
                )
            )
            continue
        modules.append(module)
        suppression_maps[module.path] = suppressions
    if "rules" in analyses:
        for module in modules:
            findings, suppressed = _check_module(
                module, rule_list, suppression_maps[module.path]
            )
            raw.extend(findings)
            suppressed_total += suppressed
    for analysis_cls in _WHOLE_PROGRAM_ANALYSES:
        if analysis_cls.name not in analyses:
            continue
        for finding in analysis_cls().run(modules):
            if is_suppressed(
                suppression_maps.get(finding.path, {}),
                finding.line,
                finding.rule_id,
            ):
                suppressed_total += 1
            else:
                raw.append(finding)
    raw.sort()
    new, old = (baseline or Baseline()).partition(raw)
    return LintReport(
        findings=tuple(new),
        baselined=tuple(old),
        suppressed=suppressed_total,
        files_checked=len(files),
        raw_findings=tuple(raw),
    )
