"""API-hygiene rules: every public module declares its surface.

``__all__`` is the contract between a module and its users: star-imports,
``help()``, doc generators and mypy's re-export checking all read it.  A
missing or stale ``__all__`` means the public surface is whatever happens
to be importable — which is how internals leak and refactors break
downstream code undetected.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintRule, ModuleInfo

__all__ = ["DeclaredAllRule", "StaleAllRule", "module_exports"]

_EXEMPT_BASENAMES = {"__main__.py", "conftest.py", "setup.py"}


def _in_scope(module: ModuleInfo) -> bool:
    """Private modules (``_helpers.py``) are exempt; ``__init__.py`` is the
    package's public surface and is very much in scope."""
    name = module.basename
    if name in _EXEMPT_BASENAMES:
        return False
    return module.is_package_init or not name.startswith("_")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _assigned_names(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                el.id for el in target.elts if isinstance(el, ast.Name)
            )
    return names


def module_exports(module: ModuleInfo) -> tuple[set[str], set[str]]:
    """(all bound top-level names, names that *should* be exported).

    Definitions and assignments are exports everywhere.  Imported names
    are exports only in a package ``__init__.py`` (where ``from .mod
    import X`` is a deliberate re-export); in a leaf module an import is a
    dependency, not API.
    """
    bound: set[str] = set()
    public: set[str] = set()

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                if _is_public(stmt.name):
                    public.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for name in _assigned_names(stmt):
                    bound.add(name)
                    if _is_public(name) and not (
                        name.startswith("__") and name.endswith("__")
                    ):
                        public.add(name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    bound.add(name)
                    if module.is_package_init and _is_public(name):
                        public.add(name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(stmt.body)
                visit(stmt.orelse)
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)
                visit(getattr(stmt, "finalbody", []))

    visit(module.tree.body)
    return bound, public


def _find_all(module: ModuleInfo) -> tuple[ast.stmt | None, list[str] | None]:
    """(the ``__all__`` statement, its names) — names None if not literal."""
    for stmt in module.tree.body:
        if "__all__" not in _assigned_names(stmt):
            continue
        value = getattr(stmt, "value", None)
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(el, ast.Constant) and isinstance(el.value, str)
            for el in value.elts
        ):
            return stmt, [el.value for el in value.elts]
        return stmt, None
    return None, None


class DeclaredAllRule(LintRule):
    """API001 — public modules must declare ``__all__``."""

    rule_id = "API001"
    title = "public module without __all__"
    rationale = (
        "Without __all__ the public surface is accidental: star-imports "
        "and doc tools pick up whatever is importable, and refactors "
        "change the API silently."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return _in_scope(module)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        stmt, _ = _find_all(module)
        if stmt is not None:
            return
        _, public = module_exports(module)
        if not public:
            return
        suggestion = ", ".join(f'"{name}"' for name in sorted(public))
        yield self.finding(
            module,
            module.tree,
            f"module defines public names but no __all__; suggest "
            f"__all__ = [{suggestion}]",
        )


class StaleAllRule(LintRule):
    """API002 — ``__all__`` must match the module's actual exports."""

    rule_id = "API002"
    title = "__all__ out of sync with exports"
    rationale = (
        "A stale __all__ is worse than none: it actively misdescribes the "
        "API to star-imports, doc tools and mypy's re-export checks."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return _in_scope(module)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        stmt, names = _find_all(module)
        if stmt is None:
            return
        if names is None:
            yield self.finding(
                module,
                stmt,
                "__all__ is not a literal list/tuple of strings, so it "
                "cannot be statically checked",
            )
            return
        bound, public = module_exports(module)
        unknown = sorted(set(names) - bound)
        missing = sorted(public - set(names))
        if unknown:
            yield self.finding(
                module,
                stmt,
                "__all__ names not defined in the module: "
                + ", ".join(unknown),
            )
        if missing:
            yield self.finding(
                module,
                stmt,
                "public names missing from __all__: " + ", ".join(missing),
            )
