"""Robustness rules: failures must be surfaced, not silently absorbed.

The resilience layer (``repro.resilience``, ``repro.runner`` hardening)
is built on the premise that every fault is *observable*: a guard can
only count, quarantine, or retry what some handler reported.  A broad
``except Exception`` that catches the error and then carries on without
re-raising it or using the exception object anywhere breaks that chain —
the fault happened, and nothing downstream can ever know.

CTL002 already rejects bare ``except:`` and broad handlers with *empty*
bodies.  ROB001 covers the sneakier sibling: a broad handler with a
real body that nevertheless discards the exception (no ``raise``, the
bound name unused or never bound).  Handlers that deliberately absorb a
failure — a cache read treating corruption as a miss, a crash-is-the-
finding chaos probe — must say so with ``# lint: ignore[ROB001]`` and a
justification, so every silent swallow in the tree is an explicit,
reviewable decision.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintRule, ModuleInfo, dotted_name

__all__ = ["SwallowedExceptionRule"]


def _is_broad(type_node: ast.AST) -> bool:
    """True when the handler type includes Exception/BaseException."""
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for node in nodes:
        parts = dotted_name(node)
        if parts is not None and parts[-1] in ("Exception", "BaseException"):
            return True
    return False


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """Empty-in-effect body (pass/docstring/... only) — CTL002's case."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class SwallowedExceptionRule(LintRule):
    """ROB001 — broad except handlers must surface the exception."""

    rule_id = "ROB001"
    title = "broad exception handler swallows the error"
    rationale = (
        "A broad 'except Exception' whose body neither re-raises nor "
        "uses the caught exception makes the failure unobservable: the "
        "resilience layer cannot count, quarantine, or retry what was "
        "never reported. Re-raise, include the exception in what you "
        "record, or mark the deliberate swallow with "
        "'# lint: ignore[ROB001]' and a justification."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None or not _is_broad(node.type):
                continue  # narrow handlers are a deliberate contract
            if _is_silent_body(node.body):
                continue  # CTL002's finding; do not double-report
            if self._surfaces(node):
                continue
            yield self.finding(
                module,
                node,
                "broad handler discards the exception (no raise, bound "
                "name unused): surface the error or justify the swallow "
                "with '# lint: ignore[ROB001]'",
            )

    @staticmethod
    def _surfaces(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or uses the caught exception."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if (
                    handler.name is not None
                    and isinstance(node, ast.Name)
                    and node.id == handler.name
                ):
                    return True
        return False
