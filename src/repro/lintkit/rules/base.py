"""Rule plumbing: the module snapshot rules see, and the Rule base class."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Iterable, Iterator

from ..findings import Finding

__all__ = [
    "LintRule",
    "ModuleInfo",
    "dotted_name",
    "import_aliases",
    "iter_findings",
    "resolve_call_target",
]


@dataclass(frozen=True)
class ModuleInfo:
    """Everything a rule may inspect about one parsed module."""

    path: str  # display path, POSIX separators
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    @property
    def basename(self) -> str:
        return PurePosixPath(self.path).name

    @property
    def parts(self) -> tuple[str, ...]:
        return PurePosixPath(self.path).parts

    @property
    def is_package_init(self) -> bool:
        return self.basename == "__init__.py"

    def line_text(self, lineno: int) -> str:
        """The physical source line at 1-based ``lineno`` (or '')."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class LintRule:
    """One invariant, identified by ``rule_id``, checked per module.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` lets a rule exempt the module that *defines* the
    convention (``units.py`` for the unit rule, ``rng.py`` for the
    determinism rules).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            source_line=module.line_text(line),
        )


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map each locally-bound import name to the dotted path it refers to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random`` maps ``random -> numpy.random``; ``from time import time``
    maps ``time -> time.time``.  Relative imports are prefixed with dots
    so they can never collide with a stdlib/third-party dotted path.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    first = alias.name.split(".")[0]
                    aliases[first] = first
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def dotted_name(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def resolve_call_target(
    func: ast.AST, aliases: dict[str, str]
) -> str | None:
    """Fully-qualified dotted name a call expression refers to, if static."""
    parts = dotted_name(func)
    if parts is None:
        return None
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def iter_findings(
    rule: LintRule, module: ModuleInfo
) -> Iterator[Finding]:
    """All findings of ``rule`` for ``module`` (applying the exemption)."""
    if not rule.applies_to(module):
        return
    yield from rule.check(module)
