"""Control-safety rules: bounded actuation, no silent failure.

The paper's controllers only behave because their actuation is saturated
(frequency deltas clamped to the DVFS ladder) *and* the PID knows about
the saturation (anti-windup).  A PID constructed without output limits
reproduces the textbook failure — integral windup and huge overshoot
after long saturation at a low budget.  Separately, a swallowed exception
in the control/simulation path turns a loud numerical bug into a silently
wrong power trace.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintRule, ModuleInfo, dotted_name

__all__ = ["SilentExceptRule", "UnboundedPIDRule"]

#: Constructors that must receive explicit saturation bounds, mapped to
#: (bound parameter name, its positional index).
_BOUNDED_CONSTRUCTORS = {
    "DiscretePID": ("output_limits", 1),
}


class UnboundedPIDRule(LintRule):
    """CTL001 — PID constructors must receive explicit saturation bounds."""

    rule_id = "CTL001"
    title = "PID constructed without saturation bounds"
    rationale = (
        "An unclamped PID output lets the integral term wind up during "
        "saturation at a binding power budget, producing the large "
        "overshoots the paper's anti-windup design exists to prevent. "
        "Pass output_limits=(low, high) explicitly."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_name(node.func)
            if parts is None:
                continue
            spec = _BOUNDED_CONSTRUCTORS.get(parts[-1])
            if spec is None:
                continue
            param, index = spec
            bound: ast.AST | None = None
            if len(node.args) > index:
                bound = node.args[index]
            for kw in node.keywords:
                if kw.arg == param:
                    bound = kw.value
            if bound is None or (
                isinstance(bound, ast.Constant) and bound.value is None
            ):
                yield self.finding(
                    module,
                    node,
                    f"{parts[-1]} constructed without {param}: saturation "
                    "bounds must be explicit so anti-windup can engage",
                )


class SilentExceptRule(LintRule):
    """CTL002 — no bare ``except:`` / silently-swallowed broad excepts."""

    rule_id = "CTL002"
    title = "bare or silently-swallowed exception handler"
    rationale = (
        "In the control/simulator path a swallowed exception converts a "
        "loud numerical failure into a silently wrong power/performance "
        "trace. Catch specific exceptions, and never with an empty body."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:': catches SystemExit/KeyboardInterrupt "
                    "too; name the exceptions you expect",
                )
                continue
            if self._is_broad(node.type) and self._is_silent(node.body):
                yield self.finding(
                    module,
                    node,
                    "'except Exception' with an empty body silently hides "
                    "failures in the control path; handle or re-raise",
                )

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        parts = dotted_name(type_node)
        return parts is not None and parts[-1] in ("Exception", "BaseException")

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True
