"""Config rules: configurations are immutable values, defaults are safe.

A configuration that can mutate after construction invalidates every
derived quantity (calibration, reference runs, memoized baselines keyed
on the config).  And a mutable default argument is shared state across
calls — the classic Python trap — which in an experiment harness shows up
as results bleeding between runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintRule, ModuleInfo, dotted_name

__all__ = ["FrozenConfigRule", "MutableDefaultRule"]

_CONFIG_SUFFIXES = ("Config", "Spec", "Result")

_MUTABLE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}


def _dataclass_decorator(
    cls: ast.ClassDef,
) -> tuple[ast.AST | None, bool]:
    """(decorator node, frozen=True present) for a dataclass, else (None, False)."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = dotted_name(target)
        if parts is None or parts[-1] != "dataclass":
            continue
        frozen = False
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    frozen = bool(kw.value.value)
        return dec, frozen
    return None, False


class FrozenConfigRule(LintRule):
    """CFG001 — config/spec dataclasses must be ``frozen=True``."""

    rule_id = "CFG001"
    title = "configuration dataclass not frozen"
    rationale = (
        "Configurations and experiment specs are values: simulations, "
        "calibration caches and memoized reference runs key on them. "
        "Mutation after construction silently desynchronizes all of those. "
        "Use dataclasses.replace() to build variants."
    )

    def _in_scope(self, module: ModuleInfo, cls: ast.ClassDef) -> bool:
        if module.basename == "config.py" or "experiments" in module.parts:
            return True
        return cls.name.endswith(_CONFIG_SUFFIXES)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dec, frozen = _dataclass_decorator(node)
            if dec is None or frozen:
                continue
            if not self._in_scope(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"dataclass {node.name!r} must be declared frozen=True "
                "(configs and experiment specs are immutable values; "
                "build variants with dataclasses.replace)",
            )


class MutableDefaultRule(LintRule):
    """CFG002 — no mutable default arguments, anywhere."""

    rule_id = "CFG002"
    title = "mutable default argument"
    rationale = (
        "A mutable default is evaluated once and shared across every call; "
        "in an experiment harness that bleeds state between runs. Default "
        "to None (or use dataclasses.field(default_factory=...))."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {name!r}: defaults are "
                        "shared across calls; use None and construct inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, _MUTABLE_NODES):
            return True
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            return parts is not None and parts[-1] in _MUTABLE_CALLS
        return False
