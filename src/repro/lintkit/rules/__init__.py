"""Rule registry: every invariant lintkit enforces, in catalogue order.

Rule ids are grouped by family — DET (determinism), UNIT (unit
discipline), CFG (config discipline), CTL (control safety), API (API
hygiene), ROB (robustness).  See ``docs/INVARIANTS.md`` for the full
catalogue with rationale and suppression guidance.
"""

from __future__ import annotations

from .api_rules import DeclaredAllRule, StaleAllRule
from .base import LintRule, ModuleInfo
from .config_rules import FrozenConfigRule, MutableDefaultRule
from .control_rules import SilentExceptRule, UnboundedPIDRule
from .determinism import RandomModuleImportRule, RngConstructionRule, WallClockRule
from .robustness_rules import SwallowedExceptionRule
from .units_rules import MagicUnitLiteralRule

__all__ = [
    "DeclaredAllRule",
    "FrozenConfigRule",
    "LintRule",
    "MagicUnitLiteralRule",
    "ModuleInfo",
    "MutableDefaultRule",
    "RandomModuleImportRule",
    "RngConstructionRule",
    "SilentExceptRule",
    "StaleAllRule",
    "SwallowedExceptionRule",
    "UnboundedPIDRule",
    "WallClockRule",
    "all_rules",
]


def all_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, in catalogue order."""
    return [
        RngConstructionRule(),
        RandomModuleImportRule(),
        WallClockRule(),
        MagicUnitLiteralRule(),
        FrozenConfigRule(),
        MutableDefaultRule(),
        UnboundedPIDRule(),
        SilentExceptRule(),
        SwallowedExceptionRule(),
        DeclaredAllRule(),
        StaleAllRule(),
    ]
