"""Units rule: magic conversion literals live only in ``repro/units.py``.

The library keeps one internal unit system (seconds, GHz, watts or
fraction-of-max, Celsius, joules).  Conversion factors written inline —
``* 1e9`` to get Hz or nanoseconds, ``1e-9`` as an ad-hoc tolerance —
are exactly how silent unit bugs enter controller gains (a 10^3 slip in a
gain is invisible in code review and catastrophic in closed loop).  Every
such factor must be a *named* constant or helper from ``repro.units``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ... import units
from ..findings import Finding
from .base import LintRule, ModuleInfo

__all__ = ["MagicUnitLiteralRule"]

#: The module that is allowed to spell conversion factors as literals.
_UNITS_MODULE = "units.py"

#: Literal values that are (almost) always a unit conversion or an ad-hoc
#: epsilon, mapped to the named replacement.  Values are imported from
#: repro.units itself so rule and convention cannot drift apart.
_MAGIC: dict[float, str] = {
    units.GHZ_TO_HZ: (
        "use units.GHZ_TO_HZ (frequency), units.NS_PER_S (durations), "
        "units.NJ_PER_J (energy) or units.bips(...)"
    ),
    units.MILLI: "use units.MILLI, or units.ms(...) for millisecond durations",
    units.MICRO: "use units.MICRO, or units.us(...) for microsecond durations",
    units.EPS: (
        "use units.EPS / units.approx_eq(...) for tolerances, or "
        "units.NANOSECONDS / units.ns(...) for durations"
    ),
}

#: Only literals *written* in scientific notation are flagged: `1e-3` is a
#: conversion-factor idiom, `0.001` is an ordinary number.
_SCIENTIFIC = re.compile(r"^\d+(?:\.\d*)?[eE][+-]?\d+$")


class MagicUnitLiteralRule(LintRule):
    """UNIT001 — scientific-notation conversion literals outside units.py."""

    rule_id = "UNIT001"
    title = "magic unit-conversion literal"
    rationale = (
        "Inline 1e9/1e-3/1e-6/1e-9 factors are unlabelled unit conversions; "
        "a wrong exponent silently corrupts controller gains and power "
        "accounting. Name the factor via repro.units."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.basename != _UNITS_MODULE

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            suggestion = _MAGIC.get(float(value))
            if suggestion is None:
                continue
            segment = ast.get_source_segment(module.source, node)
            if segment is None or not _SCIENTIFIC.match(segment.strip()):
                continue
            yield self.finding(
                module,
                node,
                f"magic conversion literal {segment.strip()}: {suggestion}",
            )
