"""Determinism rules: all randomness flows through ``repro.rng``.

The whole experiment harness rests on seed-deterministic runs (same root
seed, same result — bit for bit).  That property dies the moment any
module creates its own generator, touches numpy's legacy global RNG, or
reads the wall clock.  These rules pin every entropy source to one
module, ``repro/rng.py``, whose role-derived streams are reproducible,
independent and addressable.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintRule, ModuleInfo, import_aliases, resolve_call_target

__all__ = ["RandomModuleImportRule", "RngConstructionRule", "WallClockRule"]

#: The one module allowed to construct numpy generators.
_RNG_MODULE = "rng.py"

_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.perf_counter": "time.perf_counter()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class RngConstructionRule(LintRule):
    """DET001 — no ``numpy.random`` entry points outside ``rng.py``."""

    rule_id = "DET001"
    title = "numpy.random used outside repro/rng.py"
    rationale = (
        "Ad-hoc generators (np.random.default_rng, the legacy global RNG) "
        "break seed-determinism and stream independence. Accept a "
        "numpy.random.Generator argument, or derive one with "
        "repro.rng.derive / SeedSequenceFactory."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.basename != _RNG_MODULE

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target is None:
                continue
            if target == "numpy.random" or target.startswith("numpy.random."):
                yield self.finding(
                    module,
                    node,
                    f"call to {target!r}: construct generators only in "
                    "repro.rng (use rng.derive(root_seed, role) or pass a "
                    "Generator in)",
                )


class RandomModuleImportRule(LintRule):
    """DET002 — the stdlib ``random`` module is banned everywhere."""

    rule_id = "DET002"
    title = "stdlib random imported"
    rationale = (
        "random's global Mersenne Twister is process-wide mutable state; "
        "any import invites unseeded, order-dependent draws. All entropy "
        "must come from repro.rng's role-derived numpy Generators."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module,
                            node,
                            "import of stdlib 'random': use repro.rng's "
                            "role-derived numpy generators instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield self.finding(
                        module,
                        node,
                        "import from stdlib 'random': use repro.rng's "
                        "role-derived numpy generators instead",
                    )


class WallClockRule(LintRule):
    """DET003 — no wall-clock reads outside ``rng.py``."""

    rule_id = "DET003"
    title = "wall-clock read in library code"
    rationale = (
        "time.time()/datetime.now() make behaviour depend on when a run "
        "happens, which no seed can reproduce. Simulated time comes from "
        "the simulator; timestamps belong to the caller, not the library."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.basename != _RNG_MODULE

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {_WALL_CLOCK_CALLS[target]}: library "
                    "code must be reproducible; take times as parameters",
                )
