"""Pass 1 of the effect analysis: per-function effect summaries.

Each function (or method) in the analyzed tree is reduced to a
:class:`FunctionSummary`: the primitive *effects* its body performs
directly (environment/file/network/clock/process I/O, module-global
reads and writes, RNG-stream creation and aliasing, unordered numeric
accumulation) plus the *calls* it makes, split into statically resolved
dotted targets and bare method names for class-hierarchy resolution.

The summaries are purely local — no propagation happens here.  Pass 2
(:mod:`repro.lintkit.effects.propagate`) stitches them into a call graph
and walks reachability from the analysis roots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..modgraph import dotted, module_aliases, module_identity
from ..rules.base import ModuleInfo

__all__ = [
    "Effect",
    "EffectProgram",
    "FunctionSummary",
    "summarize",
]

# -- primitive-effect tables -------------------------------------------------

#: Resolved dotted call target -> effect kind.  ``os.environ`` is handled
#: separately (it is an attribute *read*, not only a call).
_CALL_EFFECTS: dict[str, tuple[str, str]] = {
    "os.getenv": ("env-read", "os.getenv()"),
    "os.environ.get": ("env-read", "os.environ.get()"),
    "time.time": ("clock", "time.time()"),
    "time.time_ns": ("clock", "time.time_ns()"),
    "time.monotonic": ("clock", "time.monotonic()"),
    "time.monotonic_ns": ("clock", "time.monotonic_ns()"),
    "time.perf_counter": ("clock", "time.perf_counter()"),
    "time.perf_counter_ns": ("clock", "time.perf_counter_ns()"),
    "time.sleep": ("clock", "time.sleep()"),
    "datetime.datetime.now": ("clock", "datetime.now()"),
    "datetime.datetime.utcnow": ("clock", "datetime.utcnow()"),
    "datetime.datetime.today": ("clock", "datetime.today()"),
    "datetime.date.today": ("clock", "date.today()"),
    "numpy.load": ("file-read", "np.load()"),
    "numpy.loadtxt": ("file-read", "np.loadtxt()"),
    "numpy.genfromtxt": ("file-read", "np.genfromtxt()"),
    "numpy.fromfile": ("file-read", "np.fromfile()"),
    "numpy.save": ("file-write", "np.save()"),
    "numpy.savez": ("file-write", "np.savez()"),
    "numpy.savez_compressed": ("file-write", "np.savez_compressed()"),
    "numpy.savetxt": ("file-write", "np.savetxt()"),
    "os.remove": ("file-write", "os.remove()"),
    "os.unlink": ("file-write", "os.unlink()"),
    "os.rename": ("file-write", "os.rename()"),
    "os.replace": ("file-write", "os.replace()"),
    "os.makedirs": ("file-write", "os.makedirs()"),
    "os.mkdir": ("file-write", "os.mkdir()"),
    "os.rmdir": ("file-write", "os.rmdir()"),
    "os.system": ("process", "os.system()"),
    "os.popen": ("process", "os.popen()"),
    "print": ("stdout", "print()"),
    "input": ("stdout", "input()"),
    "sys.stdout.write": ("stdout", "sys.stdout.write()"),
    "sys.stderr.write": ("stdout", "sys.stderr.write()"),
}

#: Dotted-prefix matches (module families where any entry point is I/O).
_CALL_PREFIX_EFFECTS: tuple[tuple[str, str, str], ...] = (
    ("subprocess.", "process", "subprocess call"),
    ("shutil.", "file-write", "shutil call"),
    ("socket.", "network", "socket call"),
    ("urllib.", "network", "urllib call"),
    ("http.", "network", "http call"),
    ("requests.", "network", "requests call"),
)

#: Method names (unknown receiver) that are filesystem operations: the
#: pathlib.Path surface.  Ambiguous names (``replace`` is also a str
#: method) are deliberately excluded.
_FS_METHOD_EFFECTS: dict[str, str] = {
    "read_text": "file-read",
    "read_bytes": "file-read",
    "write_text": "file-write",
    "write_bytes": "file-write",
    "unlink": "file-write",
    "rmdir": "file-write",
    "touch": "file-write",
    "symlink_to": "file-write",
    "hardlink_to": "file-write",
}

#: Call targets whose return value is a fresh ``numpy.random.Generator``
#: (or a collection of them).
_RNG_CREATORS = frozenset(
    {
        "repro.rng.derive",
        "repro.rng.split",
        "numpy.random.default_rng",
    }
)

#: Method names that mint generators (``SeedSequenceFactory.generator``).
_RNG_CREATOR_METHODS = frozenset({"generator"})

#: Container-mutating method names: calling one on a module-level binding
#: is a write to shared module state.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)

#: Set-algebra method names whose result is unordered.
_UNORDERED_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)


@dataclass(frozen=True)
class Effect:
    """One primitive effect observed at one source location.

    ``kind`` is one of: ``env-read``, ``file-read``, ``file-write``,
    ``network``, ``clock``, ``process``, ``stdout``, ``global-read``,
    ``global-write``, ``rng-aliased``, ``unordered-acc``.  ``symbol``
    carries the fully-qualified global name for the global kinds.
    """

    kind: str
    detail: str
    line: int
    col: int
    symbol: str = ""


@dataclass
class FunctionSummary:
    """Local effects and outgoing calls of one function or method."""

    fq: str
    name: str
    path: str
    line: int
    #: Statically resolved dotted callee names (module functions, classes).
    calls_named: set[str] = field(default_factory=set)
    #: Unresolved ``obj.m(...)`` method names, for CHA resolution.
    calls_methods: set[str] = field(default_factory=set)
    effects: list[Effect] = field(default_factory=list)


@dataclass
class EffectProgram:
    """Whole-program tables produced by the summary pass."""

    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: method name -> fq of every in-tree method with that name.
    methods_by_name: dict[str, set[str]] = field(default_factory=dict)
    #: class fq -> method names (for constructor-call resolution).
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: ``module.local`` -> canonical dotted target (import re-exports).
    exports: dict[str, str] = field(default_factory=dict)
    #: Module-level *data* bindings (assignments, not defs/classes).
    data_globals: set[str] = field(default_factory=set)
    #: path -> ModuleInfo, for finding construction in pass 2.
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def resolve(self, fq: str) -> str:
        """Follow import/re-export chains to a canonical defining name."""
        seen = set()
        while fq not in self.functions and fq not in self.classes:
            if fq in seen:
                break
            seen.add(fq)
            target = self.exports.get(fq)
            if target is None:
                break
            fq = target
        return fq


def summarize(modules: Sequence[ModuleInfo]) -> EffectProgram:
    """Run the summary pass over every module."""
    program = EffectProgram()
    for module in modules:
        program.modules[module.path] = module
        _summarize_module(program, module)
    return program


def _summarize_module(program: EffectProgram, module: ModuleInfo) -> None:
    modname, is_package = module_identity(module.path)
    aliases = module_aliases(module.tree, modname, is_package)
    for local, target in aliases.items():
        program.exports[f"{modname}.{local}"] = target
    # Every name the module itself defines at top level: a bare call to
    # anything *not* in this set (and not imported) is a builtin.
    module_names: set[str] = set(aliases)
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for name in _assigned_names(stmt):
                program.data_globals.add(f"{modname}.{name}")
                module_names.add(name)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            module_names.add(stmt.name)
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _summarize_function(
                program,
                module,
                stmt,
                f"{modname}.{stmt.name}",
                aliases,
                module_names,
            )
        elif isinstance(stmt, ast.ClassDef):
            class_fq = f"{modname}.{stmt.name}"
            methods = set()
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(sub.name)
                    fq = f"{class_fq}.{sub.name}"
                    _summarize_function(
                        program, module, sub, fq, aliases, module_names
                    )
                    program.methods_by_name.setdefault(sub.name, set()).add(fq)
            program.classes[class_fq] = methods


def _assigned_names(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(el.id for el in target.elts if isinstance(el, ast.Name))
    return names


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name bound inside the function (params, assignments, loops,
    ``with``/``except`` targets, comprehension variables, nested defs)."""
    bound: set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)

    def collect_target(target: ast.AST) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                bound.add(sub.id)

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)):
                    collect_target(target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            collect_target(sub.target)
        elif isinstance(sub, ast.comprehension):
            collect_target(sub.target)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    collect_target(item.optional_vars)
        elif isinstance(sub, ast.ExceptHandler):
            if sub.name:
                bound.add(sub.name)
        elif isinstance(sub, ast.NamedExpr):
            collect_target(sub.target)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not node:
                bound.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(sub, ast.Global):
            # ``global X`` makes X a *module* binding, never a local.
            bound.difference_update(sub.names)
    return bound


class _FunctionVisitor(ast.NodeVisitor):
    """Collect one function's primitive effects and outgoing calls."""

    def __init__(
        self,
        program: EffectProgram,
        summary: FunctionSummary,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        modname: str,
        aliases: Mapping[str, str],
        module_names: set[str],
    ) -> None:
        self.program = program
        self.summary = summary
        self.modname = modname
        self.aliases = aliases
        self.module_names = module_names
        self.locals = _local_bindings(node)
        self.global_names: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.global_names.update(sub.names)
        self.loop_depth = 0
        #: rng local name -> loop depth at creation.
        self.rng_created: dict[str, int] = {}
        #: rng local name -> consumption weight accumulated so far.
        self.rng_consumed: dict[str, int] = {}
        #: rng locals the enclosing scope itself has drawn from.
        self.rng_drawn: set[str] = set()
        #: rng local names already reported (one finding per stream).
        self.rng_reported: set[str] = set()
        #: local name -> True when bound to an unordered (set-like) value.
        self.unordered_locals: set[str] = set()
        self._mark_generator_params(node)

    # -- helpers ------------------------------------------------------------

    def _mark_generator_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ann = arg.annotation
            if ann is None:
                continue
            parts = dotted(ann)
            if parts and parts[-1] == "Generator":
                self.rng_created[arg.arg] = 0
                self.rng_consumed.setdefault(arg.arg, 0)

    def _effect(
        self, node: ast.AST, kind: str, detail: str, symbol: str = ""
    ) -> None:
        self.summary.effects.append(
            Effect(
                kind=kind,
                detail=detail,
                line=getattr(node, "lineno", self.summary.line),
                col=getattr(node, "col_offset", 0),
                symbol=symbol,
            )
        )

    def _resolve_dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted name for an expression rooted at a non-local
        name, or None (rooted at a local variable / not a name chain)."""
        parts = dotted(node)
        if parts is None:
            return None
        if parts[0] in self.locals:
            return None
        head = self.aliases.get(parts[0])
        if head is None:
            head = f"{self.modname}.{parts[0]}"
        return ".".join([head] + parts[1:])

    def _is_module_global(self, fq: str | None) -> bool:
        if fq is None:
            return False
        return self.program.resolve(fq) in self.program.data_globals or (
            fq in self.program.data_globals
        )

    def _consume_rng(
        self, name: str, node: ast.AST, what: str, retained: bool = False
    ) -> None:
        """Record one consumer of the generator bound to ``name``.

        Weight 2 means "definitely a second consumer": the consumption
        happens in a wider loop than the stream was created in, or the
        stream is *retained* (closure capture / aliasing) by a scope
        that has already drawn from it.  A single plain hand-off stays
        at weight 1 — giving a stream away permanently is fine.
        """
        created_depth = self.rng_created.get(name)
        if created_depth is None:
            return
        weight = 1
        if self.loop_depth > created_depth:
            weight = 2
        elif retained and name in self.rng_drawn:
            weight = 2
        self.rng_consumed[name] = self.rng_consumed.get(name, 0) + weight
        if self.rng_consumed[name] >= 2 and name not in self.rng_reported:
            self.rng_reported.add(name)
            self._effect(
                node,
                "rng-aliased",
                f"generator {name!r} is consumed by more than one party "
                f"({what} makes a second consumer advance the same stream); "
                f"split the stream with repro.rng.split, or derive a fresh "
                f"role stream per consumer",
            )

    def _is_rng_create(self, call: ast.Call) -> bool:
        fq = self._resolve_dotted(call.func)
        if fq is not None and fq in _RNG_CREATORS:
            return True
        if fq is not None and fq.rsplit(".", 1)[-1] in ("derive", "split"):
            # ``from repro.rng import derive`` resolves fully; a re-export
            # chain ending elsewhere is not a creator.
            return fq.rsplit(".", 1)[0].endswith("rng")
        if isinstance(call.func, ast.Attribute):
            return call.func.attr in _RNG_CREATOR_METHODS
        return False

    def _is_unordered_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call):
            parts = dotted(node.func)
            if parts and parts[0] not in self.locals and parts[-1] in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _UNORDERED_METHODS
            ):
                return True
        if isinstance(node, ast.Name) and node.id in self.unordered_locals:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            # set algebra via operators: both sides set-like.
            return self._is_unordered_expr(node.left) or self._is_unordered_expr(
                node.right
            )
        return False

    # -- statements ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested_def(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_closure_body(node, node.body)

    def _visit_nested_def(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._visit_closure_body(node, *node.body)

    def _visit_closure_body(self, closure: ast.AST, *body: ast.AST) -> None:
        """A nested function capturing an RNG local is a consumer of it."""
        captured: set[str] = set()
        for part in body:
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and sub.id in self.rng_created:
                    captured.add(sub.id)
        for name in sorted(captured):
            self._consume_rng(
                name, closure, "the closure defined here", retained=True
            )
        # Do not descend: the closure body runs in its own scope; its
        # effects surface when (if) it is a named function of its own.

    def visit_For(self, node: ast.For) -> None:
        self._handle_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._handle_for(node)

    def _handle_for(self, node: ast.For | ast.AsyncFor) -> None:
        if self._is_unordered_expr(node.iter) and any(
            isinstance(sub, ast.AugAssign)
            for stmt in node.body
            for sub in ast.walk(stmt)
        ):
            self._effect(
                node,
                "unordered-acc",
                "accumulation over an unordered set iteration: float "
                "addition is not associative, so the result depends on "
                "hash order; iterate over sorted(...) instead",
            )
        self.visit(node.iter)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._handle_assign(node.targets, node.value)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_assign([node.target], node.value)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_global_store(node.target, node)
        self.visit(node.value)

    def _handle_assign(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        is_rng = isinstance(value, ast.Call) and self._is_rng_create(value)
        is_unordered = self._is_unordered_expr(value)
        for target in targets:
            self._check_global_store(target, target)
            if isinstance(target, ast.Name):
                if is_rng:
                    self.rng_created[target.id] = self.loop_depth
                    self.rng_consumed.setdefault(target.id, 0)
                    self.rng_reported.discard(target.id)
                elif target.id in self.rng_created and isinstance(
                    value, ast.Name
                ) and value.id in self.rng_created:
                    self._consume_rng(value.id, target, "this aliasing assignment")
                else:
                    self.rng_created.pop(target.id, None)
                if is_unordered:
                    self.unordered_locals.add(target.id)
                else:
                    self.unordered_locals.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)) and is_rng:
                # ``a, b, c = split(rng, 3)`` — every element is a stream.
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.rng_created[elt.id] = self.loop_depth
                        self.rng_consumed.setdefault(elt.id, 0)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                if isinstance(value, ast.Name) and value.id in self.rng_created:
                    self._consume_rng(
                        value.id, target, "storing it on an object"
                    )

    def _check_global_store(self, target: ast.AST, node: ast.AST) -> None:
        """Flag writes that land in module-level (shared) state."""
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._effect(
                    node,
                    "global-write",
                    f"assignment to module global {target.id!r}",
                    symbol=f"{self.modname}.{target.id}",
                )
            return
        if isinstance(target, ast.Starred):
            self._check_global_store(target.value, node)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_global_store(elt, node)
            return
        if isinstance(target, ast.Attribute):
            base_fq = self._resolve_dotted(target.value)
            if base_fq is not None:
                self._effect(
                    node,
                    "global-write",
                    f"assignment to attribute {target.attr!r} of module-level "
                    f"object {base_fq}",
                    symbol=f"{base_fq}.{target.attr}",
                )
            return
        if isinstance(target, ast.Subscript):
            base_fq = self._resolve_dotted(target.value)
            if base_fq is not None and self._is_module_global(base_fq):
                self._effect(
                    node,
                    "global-write",
                    f"item assignment into module-level container {base_fq}",
                    symbol=base_fq,
                )

    # -- expressions --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fq = self._resolve_dotted(node.func)
        if fq is not None:
            self._record_named_call(node, fq)
        elif isinstance(node.func, ast.Attribute):
            self._record_method_call(node, node.func)
        # A draw on the stream itself (``rng.normal()``) is the owning
        # scope's consumption, not a second consumer — but remember it.
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            receiver = node.func.value.id
            if receiver in self.rng_created:
                self.rng_drawn.add(receiver)
        # Arguments: generator locals passed onward are consumers —
        # except into split/derive, the sanctioned fork operations.
        func_parts = dotted(node.func)
        sanctioned_fork = bool(
            func_parts and func_parts[-1] in ("split", "derive", "spawn")
        )
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in self.rng_created:
                receiver_node = (
                    node.func.value
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if sanctioned_fork or (
                    isinstance(receiver_node, ast.Name)
                    and receiver_node.id == arg.id
                ):
                    continue
                self._consume_rng(arg.id, arg, "passing it to this call")
        if any(
            self._is_unordered_expr(arg)
            for arg in node.args
        ):
            parts = dotted(node.func)
            if parts and parts[-1] in ("sum", "fsum"):
                self._effect(
                    node,
                    "unordered-acc",
                    "summing an unordered set: float addition is not "
                    "associative, so the result depends on hash order; "
                    "sum over sorted(...) instead",
                )
        self.generic_visit(node)

    def _record_named_call(self, node: ast.Call, fq: str) -> None:
        resolved = self.program.resolve(fq)
        effect = _CALL_EFFECTS.get(resolved) or _CALL_EFFECTS.get(fq)
        tail = fq.rsplit(".", 1)[-1]
        if (
            effect is None
            and isinstance(node.func, ast.Name)
            and node.func.id not in self.module_names
        ):
            # A bare name the module neither defines nor imports is a
            # builtin (``print``, ``input``); look it up unqualified.
            effect = _CALL_EFFECTS.get(node.func.id)
        if effect is None and tail == "open":
            effect = self._open_effect(node)
        if effect is None:
            for prefix, kind, detail in _CALL_PREFIX_EFFECTS:
                if resolved.startswith(prefix) or fq.startswith(prefix):
                    effect = (kind, detail)
                    break
        if effect is not None:
            self._effect(node, effect[0], effect[1])
            return
        # A call on a known mutable module global (``CACHE.append(...)``).
        if isinstance(node.func, ast.Attribute):
            base_fq = self._resolve_dotted(node.func.value)
            if (
                base_fq is not None
                and node.func.attr in _MUTATOR_METHODS
                and self._is_module_global(base_fq)
            ):
                self._effect(
                    node,
                    "global-write",
                    f"mutating call .{node.func.attr}() on module-level "
                    f"container {base_fq}",
                    symbol=base_fq,
                )
                return
        if tail == "setattr" and node.args:
            target_fq = self._resolve_dotted(node.args[0])
            if target_fq is not None:
                self._effect(
                    node,
                    "global-write",
                    f"setattr() on module-level object {target_fq}",
                    symbol=target_fq,
                )
        self.summary.calls_named.add(fq)

    def _record_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        name = func.attr
        fs_kind = _FS_METHOD_EFFECTS.get(name)
        if fs_kind is not None:
            self._effect(node, fs_kind, f".{name}() (pathlib-style file I/O)")
            return
        if name == "open":
            effect = self._open_effect(node)
            if effect is not None:
                self._effect(node, effect[0], effect[1])
                return
        if name == "mkdir":
            self._effect(node, "file-write", ".mkdir()")
            return
        self.summary.calls_methods.add(name)

    def _open_effect(self, node: ast.Call) -> tuple[str, str] | None:
        """Classify an ``open(...)`` call by its mode argument."""
        mode = "r"
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            if isinstance(node.args[1].value, str):
                mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    mode = kw.value.value
        if any(ch in mode for ch in "wax+"):
            return ("file-write", f"open(..., {mode!r})")
        return ("file-read", f"open(..., {mode!r})")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        fq = self._resolve_dotted(node)
        if fq is not None:
            if fq == "os.environ" or fq.startswith("os.environ."):
                self._effect(node, "env-read", "os.environ")
                return
            if self._is_module_global(fq):
                self._effect(
                    node,
                    "global-read",
                    f"read of module-level binding {fq}",
                    symbol=self.program.resolve(fq),
                )
                return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id not in self.locals:
            fq = f"{self.modname}.{node.id}"
            if fq in self.program.data_globals:
                self._effect(
                    node,
                    "global-read",
                    f"read of module-level binding {fq}",
                    symbol=fq,
                )


def _summarize_function(
    program: EffectProgram,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    fq: str,
    aliases: Mapping[str, str],
    module_names: set[str],
) -> None:
    modname, _ = module_identity(module.path)
    summary = FunctionSummary(
        fq=fq, name=node.name, path=module.path, line=node.lineno
    )
    visitor = _FunctionVisitor(
        program, summary, node, modname, aliases, module_names
    )
    for stmt in node.body:
        visitor.visit(stmt)
    program.functions[fq] = summary
