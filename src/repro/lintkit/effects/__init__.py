"""Interprocedural effect-and-purity analysis (CLI name: ``effects``).

Two passes over the whole tree: :mod:`summaries` reduces every function
to its local effects and outgoing calls; :mod:`propagate` walks the
resulting call graph from three roots (simulation purity, parallel
safety, cache-key soundness) and turns violating effects into EFF001 -
EFF005 findings.  Plugged into the engine as one more entry of
``ALL_ANALYSES`` so suppressions, baselines, SARIF and the CLI all work
unchanged.
"""

from __future__ import annotations

from typing import Mapping as _Mapping

from ..findings import Finding as _Finding
from ..modgraph import modules_from_sources as _modules_from_sources
from ..suppress import is_suppressed as _is_suppressed
from ..suppress import suppressions_for as _suppressions_for
from .propagate import EFF_RULES, ROOTS, EffectAnalysis
from .summaries import Effect, EffectProgram, FunctionSummary, summarize

__all__ = [
    "EFF_RULES",
    "Effect",
    "EffectAnalysis",
    "EffectProgram",
    "FunctionSummary",
    "ROOTS",
    "analyze_sources_effects",
    "summarize",
]


def analyze_sources_effects(sources: _Mapping[str, str]) -> list[_Finding]:
    """Run the effects pass over in-memory sources (test entry point).

    ``sources`` maps display paths (e.g. ``src/repro/foo.py``) to source
    text; inline ``# lint: ignore[...]`` suppressions are honoured.
    """
    modules = _modules_from_sources(sources)
    findings = EffectAnalysis().run(modules)
    by_path = {m.path: _suppressions_for(m.source) for m in modules}
    return [
        finding
        for finding in findings
        if not _is_suppressed(
            by_path.get(finding.path, {}), finding.line, finding.rule_id
        )
    ]
