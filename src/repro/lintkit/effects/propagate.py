"""Pass 2 of the effect analysis: reachability from the analysis roots.

The summary pass reduced every function to its local effects plus its
outgoing calls.  Here those summaries become a call graph: named calls
resolve through import re-export chains; calls to a class name become an
edge to its ``__init__``; bare ``obj.m(...)`` method calls resolve by
class-hierarchy analysis (every in-tree method named ``m``), which is
what lets the walk see through the ``PowerScheme`` protocol's dynamic
``bind``/``on_gpm``/``on_pic`` dispatch.

Three roots anchor three guarantees:

* **simulation** (``Simulation.run``) — simulation purity: no hidden
  I/O or wall-clock reads may influence seeded results (EFF003).
* **parallel** (``runner._execute``, ``runner._supervised_worker``) —
  parallel safety: no shared module state may be mutated inside a
  worker (EFF001).
* **cache** (``Simulation.__init__`` + ``Simulation.run``) — cache-key
  soundness: every observable input on the cached run path must flow
  through the content hash, so env/file/written-global reads there are
  unsound (EFF002).

EFF004 (RNG stream aliasing) and EFF005 (order-sensitive accumulation)
come out of the local summaries; EFF005 fires only for functions
reachable from at least one root, EFF004 everywhere (a shared stream is
wrong wherever it happens) except in ``rng.py`` itself, whose whole job
is stream bookkeeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..findings import Finding
from ..modgraph import matches_suffix
from ..rules.base import ModuleInfo
from .summaries import Effect, EffectProgram, FunctionSummary, summarize

__all__ = [
    "EFF_RULES",
    "EffectAnalysis",
    "ROOTS",
    "Root",
]

#: Rule catalogue mirroring ``DIM_RULES``: (id, title, description).
EFF_RULES: tuple[tuple[str, str, str], ...] = (
    (
        "EFF001",
        "shared-state mutation in a parallel worker",
        "Code reachable from the runner's worker entry points mutates "
        "module-level (shared) state. Under fork-based parallelism the "
        "mutation is invisible to siblings and the parent, so results "
        "become schedule-dependent. Pass state explicitly through the "
        "RunRequest instead.",
    ),
    (
        "EFF002",
        "cache-key-unsound input on the cached run path",
        "Code reachable from the cache-keyed run path (Simulation "
        "construction + run) reads an observable input — an environment "
        "variable, a file, or a mutated module global — that never "
        "entered runner.py's content hash. Two runs with equal cache "
        "keys could then produce different results and the cache would "
        "serve stale data. Thread the input through the RunRequest so it "
        "is hashed, or hoist the read out of the cached path.",
    ),
    (
        "EFF003",
        "hidden I/O or wall-clock in simulation-reachable code",
        "Code reachable from Simulation.run performs I/O or reads the "
        "wall clock. Seeded runs must be bit-identical functions of "
        "their inputs; ambient reads and writes break replay and make "
        "telemetry diverge between hosts. Inject the value at "
        "construction time instead.",
    ),
    (
        "EFF004",
        "RNG stream aliased across consumers",
        "One numpy Generator is advanced by more than one consumer "
        "(stored/captured/passed on after local draws, or drawn from in "
        "a wider loop than it was created in). Interleaved draws make "
        "each consumer's sequence depend on the other's call pattern, so "
        "refactors silently change seeded results. Derive a fresh role "
        "stream per consumer (repro.rng.derive/split).",
    ),
    (
        "EFF005",
        "order-sensitive accumulation over an unordered collection",
        "A numeric accumulation reachable from an analysis root iterates "
        "a set (or other unordered collection). Float addition is not "
        "associative, so the total depends on hash order, which varies "
        "across platforms and PYTHONHASHSEED. Iterate over sorted(...) "
        "or an ordered container.",
    ),
)


@dataclass(frozen=True)
class Root:
    """One reachability root: a guarantee, its entry suffixes, and the
    effect kinds that violate it."""

    label: str
    rule_id: str
    suffixes: tuple[str, ...]
    kinds: frozenset[str]


ROOTS: tuple[Root, ...] = (
    Root(
        label="parallel worker entry (runner.run_many)",
        rule_id="EFF001",
        suffixes=("runner._execute", "runner._supervised_worker"),
        kinds=frozenset({"global-write"}),
    ),
    Root(
        label="cache-keyed run path (Simulation.__init__/run)",
        rule_id="EFF002",
        suffixes=("Simulation.__init__", "Simulation.run"),
        kinds=frozenset({"env-read", "file-read", "global-read"}),
    ),
    Root(
        label="Simulation.run",
        rule_id="EFF003",
        suffixes=("Simulation.run",),
        kinds=frozenset(
            {
                "env-read",
                "file-read",
                "file-write",
                "network",
                "clock",
                "process",
                "stdout",
            }
        ),
    ),
)

#: Basenames whose purpose exempts them from EFF004: the RNG module is
#: the stream-bookkeeping layer itself.
_RNG_EXEMPT_BASENAMES = frozenset({"rng.py"})

#: Maximum call-chain hops rendered in a finding message.
_CHAIN_CAP = 5


class EffectAnalysis:
    """The whole-program effects pass (CLI name: ``effects``)."""

    name = "effects"

    def run(self, modules: Sequence[ModuleInfo]) -> list[Finding]:
        program = summarize(modules)
        findings: list[Finding] = []
        reachable_any: set[str] = set()
        for root in ROOTS:
            reached = _reach(program, root.suffixes)
            reachable_any.update(reached)
            findings.extend(_root_findings(program, root, reached))
        findings.extend(_local_findings(program, reachable_any))
        return sorted(set(findings))


def _entry_points(program: EffectProgram, suffixes: Iterable[str]) -> list[str]:
    entries = []
    for fq in program.functions:
        if any(matches_suffix(fq, suffix) for suffix in suffixes):
            entries.append(fq)
    return sorted(entries)


def _callees(program: EffectProgram, summary: FunctionSummary) -> set[str]:
    """Resolved call-graph successors of one function."""
    out: set[str] = set()
    for raw in summary.calls_named:
        fq = program.resolve(raw)
        if fq in program.functions:
            out.add(fq)
        elif fq in program.classes:
            init = f"{fq}.__init__"
            if init in program.functions:
                out.add(init)
    for name in summary.calls_methods:
        out.update(program.methods_by_name.get(name, ()))
    return out


def _reach(
    program: EffectProgram, suffixes: Iterable[str]
) -> dict[str, str | None]:
    """BFS from the suffix-matched entries; fq -> parent fq (None at a
    root), which is what reconstructs the diagnostic call chain."""
    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for entry in _entry_points(program, suffixes):
        parents[entry] = None
        queue.append(entry)
    while queue:
        current = queue.popleft()
        for callee in sorted(_callees(program, program.functions[current])):
            if callee not in parents:
                parents[callee] = current
                queue.append(callee)
    return parents


def _chain(parents: dict[str, str | None], fq: str) -> str:
    """Human-readable call chain from the root down to ``fq``."""
    hops: list[str] = []
    cursor: str | None = fq
    while cursor is not None:
        hops.append(cursor)
        cursor = parents.get(cursor)
    hops.reverse()
    display = [_short(h) for h in hops]
    if len(display) > _CHAIN_CAP:
        display = display[:2] + ["..."] + display[-(_CHAIN_CAP - 3) :]
    return " -> ".join(display)


def _short(fq: str) -> str:
    """Last two dotted components: ``Simulation.run``, ``runner._execute``."""
    parts = fq.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else fq


def _source_line(module: ModuleInfo | None, line: int) -> str:
    if module is None or not (1 <= line <= len(module.lines)):
        return ""
    return module.lines[line - 1]


def _written_globals(program: EffectProgram) -> set[str]:
    """Symbols some function in the program actually mutates."""
    written: set[str] = set()
    for summary in program.functions.values():
        for effect in summary.effects:
            if effect.kind == "global-write" and effect.symbol:
                written.add(effect.symbol)
    return written


def _root_findings(
    program: EffectProgram,
    root: Root,
    parents: dict[str, str | None],
) -> list[Finding]:
    findings: list[Finding] = []
    written = (
        _written_globals(program) if "global-read" in root.kinds else frozenset()
    )
    for fq in parents:
        summary = program.functions[fq]
        module = program.modules.get(summary.path)
        for effect in summary.effects:
            if effect.kind not in root.kinds:
                continue
            if effect.kind == "global-read" and effect.symbol not in written:
                # A read of a never-mutated module constant is a fixed
                # input: it cannot make equal cache keys diverge.
                continue
            chain = _chain(parents, fq)
            findings.append(
                Finding(
                    path=summary.path,
                    line=effect.line,
                    col=effect.col,
                    rule_id=root.rule_id,
                    message=(
                        f"{effect.detail} — reachable from {root.label}"
                        f" via {chain}"
                    ),
                    source_line=_source_line(module, effect.line),
                )
            )
    return findings


def _local_findings(
    program: EffectProgram, reachable_any: set[str]
) -> list[Finding]:
    """EFF004 everywhere (minus the RNG layer); EFF005 where reachable."""
    findings: list[Finding] = []
    for fq, summary in program.functions.items():
        module = program.modules.get(summary.path)
        basename = summary.path.rsplit("/", 1)[-1]
        for effect in summary.effects:
            if effect.kind == "rng-aliased":
                if basename in _RNG_EXEMPT_BASENAMES:
                    continue
                rule_id = "EFF004"
            elif effect.kind == "unordered-acc" and fq in reachable_any:
                rule_id = "EFF005"
            else:
                continue
            findings.append(
                Finding(
                    path=summary.path,
                    line=effect.line,
                    col=effect.col,
                    rule_id=rule_id,
                    message=f"{effect.detail} (in {_short(fq)})",
                    source_line=_source_line(module, effect.line),
                )
            )
    return findings
