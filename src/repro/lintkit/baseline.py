"""The committed baseline: grandfathered findings that do not fail the build.

The baseline is a JSON file mapping each finding's movement-tolerant key
(``path::rule::source-line``, see :class:`~repro.lintkit.findings.Finding`)
to the number of identical findings that are tolerated.  New code can
therefore never add a violation silently: a new finding either has a new
key, or pushes an existing key's count above its tolerated number, and
either way the lint run fails.

``python -m repro.lintkit --update-baseline`` regenerates the file from
the current findings; reviewers see grandfathered debt explicitly in the
diff.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """Grandfathered finding counts, loaded from / saved to JSON."""

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self.entries: dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise ValueError(f"baseline {p} must contain a JSON object")
        raw = data.get("findings", {})
        entries: dict[str, int] = {}
        for key, count in raw.items():
            if not isinstance(count, int) or count < 1:
                raise ValueError(f"baseline count for {key!r} must be a positive int")
            entries[key] = count
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Baseline that tolerates exactly the given findings."""
        return cls(dict(Counter(f.baseline_key for f in findings)))

    def save(self, path: str | Path) -> None:
        """Write the baseline as deterministic (sorted-key) JSON."""
        payload = {
            "version": _VERSION,
            "findings": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, grandfathered).

        Each baseline entry absorbs at most its tolerated count; findings
        beyond that count — and findings with unknown keys — are new.
        """
        remaining = Counter(self.entries)
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in sorted(findings):
            key = finding.baseline_key
            if remaining[key] > 0:
                remaining[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def __len__(self) -> int:
        return sum(self.entries.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Baseline({len(self)} tolerated findings)"
