"""repro.lintkit — AST-based invariant checker for this codebase.

The reproduction's fidelity rests on conventions that documentation alone
cannot defend: one internal unit system (``repro.units``), role-derived
deterministic RNG streams (``repro.rng``), frozen configuration values,
saturated controllers, and declared public APIs.  lintkit turns each
convention into a rule that runs over the source tree with nothing but
the standard library's :mod:`ast`::

    python -m repro.lintkit src/                 # lint, exit 1 on findings
    python -m repro.lintkit src/ --format json   # machine-readable output
    python -m repro.lintkit --list-rules         # the rule catalogue

Findings can be silenced three ways, in order of preference: fix the
code, suppress one site with an inline ``# lint: ignore[RULE-ID]``
comment (justify it next to the comment), or grandfather existing debt in
the committed ``lint-baseline.json`` via ``--update-baseline``.  See
``docs/INVARIANTS.md`` for the catalogue of rule ids and rationale.
"""

from __future__ import annotations

from .baseline import Baseline
from .dimensions import DimensionAnalysis, analyze_sources
from .engine import ALL_ANALYSES, LintReport, lint_paths, lint_source
from .findings import Finding
from .rules import LintRule, ModuleInfo, all_rules

__all__ = [
    "ALL_ANALYSES",
    "Baseline",
    "DimensionAnalysis",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleInfo",
    "all_rules",
    "analyze_sources",
    "lint_paths",
    "lint_source",
]
