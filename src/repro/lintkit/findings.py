"""The unit of lintkit output: one finding at one source location.

A finding is a value: rules yield them, the engine filters them against
inline suppressions and the committed baseline, and the CLI renders the
survivors.  The *baseline key* deliberately excludes the line number so a
grandfathered finding does not churn the baseline file every time code
above it moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Attributes
    ----------
    path:
        Display path of the offending file (POSIX separators, relative to
        the invocation directory when possible).
    line, col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the rule that fired, e.g. ``UNIT001``.
    message:
        Human-readable explanation, including the suggested fix.
    source_line:
        The physical source line the finding points at (used for display
        and for the movement-tolerant baseline key).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    source_line: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> str:
        """Stable identity used by the baseline file (no line number)."""
        return f"{self.path}::{self.rule_id}::{self.source_line.strip()}"

    def render(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
