"""SARIF 2.1.0 output for lintkit reports.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: uploading the file produced by ``--format sarif``
renders each finding as an inline pull-request annotation.  Only the
small stable core of the format is emitted — one run, one driver, a rule
catalogue, and one result per finding with a physical location.
"""

from __future__ import annotations

import json

from .dimensions import DIM_RULES
from .effects import EFF_RULES
from .engine import PARSE_ERROR_ID, LintReport
from .rules import all_rules

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "sarif_payload"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalogue() -> list[dict[str, object]]:
    """Every rule id the driver can emit, in catalogue order."""
    rules: list[dict[str, object]] = [
        {
            "id": rule.rule_id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in all_rules()
    ]
    rules.extend(
        {
            "id": rule_id,
            "name": title,
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
        }
        for rule_id, title, rationale in DIM_RULES + EFF_RULES
    )
    rules.append(
        {
            "id": PARSE_ERROR_ID,
            "name": "syntax error",
            "shortDescription": {"text": "file could not be parsed"},
            "fullDescription": {
                "text": "The Python parser rejected this file; no rules ran."
            },
        }
    )
    return rules


def sarif_payload(report: LintReport) -> dict[str, object]:
    """The report as a SARIF ``dict`` (serialize with :func:`render_sarif`)."""
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lintkit",
                        "rules": _rule_catalogue(),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """The report serialized as a SARIF 2.1.0 JSON document."""
    return json.dumps(sarif_payload(report), indent=2)
