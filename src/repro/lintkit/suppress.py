"""Inline suppression comments: ``# lint: ignore[RULE-ID]``.

A finding is suppressed when the physical line it points at carries a
suppression comment naming its rule id (or naming no rule at all, which
suppresses every rule on that line)::

    freq = raw_hz / 1e9  # lint: ignore[UNIT001] — display-only conversion

Comments are located with :mod:`tokenize`, not string search, so the text
``# lint: ignore`` inside a string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SUPPRESS_ALL", "is_suppressed", "parse_comment", "suppressions_for"]

#: Sentinel stored for a bare ``# lint: ignore`` (no rule list): every
#: rule on the line is suppressed.
SUPPRESS_ALL = "*"

_PATTERN = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?", re.IGNORECASE
)


def parse_comment(comment: str) -> set[str] | None:
    """Rule ids suppressed by ``comment``, or None if not a suppression.

    Returns ``{SUPPRESS_ALL}`` for a bare ``# lint: ignore``.
    """
    match = _PATTERN.search(comment)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return {SUPPRESS_ALL}
    ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return ids or {SUPPRESS_ALL}


def suppressions_for(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids for ``source``.

    Tokenization errors (the engine reports syntax errors separately)
    degrade to "no suppressions" rather than raising.
    """
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            ids = parse_comment(tok.string)
            if ids is not None:
                suppressed.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressed


def is_suppressed(
    suppressed: dict[int, set[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is suppressed on ``line``."""
    ids = suppressed.get(line)
    if not ids:
        return False
    return SUPPRESS_ALL in ids or rule_id.upper() in ids
