"""Interprocedural dimensional analysis (rules DIM001–DIM005).

A two-pass, whole-program static analysis over the unit vocabulary of
:mod:`repro.unit_types`:

1. **Harvest** — every module is scanned for unit annotations
   (``Watts``, ``Seconds``, ``PowerFraction``, ...) on function
   parameters, return types, dataclass fields, properties and
   module-level constants.  Import aliases are resolved to canonical
   dotted names so signatures compose across modules, including through
   package ``__init__`` re-exports.

2. **Check** — every function body (and module top level) is abstractly
   interpreted: each expression evaluates to a *dimension* (or unknown),
   dimensions propagate through assignments, attribute access,
   subscripts and arithmetic, and five rule families fire on
   contradictions:

   ========  ==========================================================
   DIM001    incompatible units combined in ``+``/``-``/comparisons
             (watts plus gigahertz, seconds compared to milliseconds)
   DIM002    same quantity at a different scale crossing a call,
             return or assignment boundary (seconds into a
             milliseconds parameter)
   DIM003    absolute power (W) where a fraction-of-max-chip-power is
             expected, or vice versa
   DIM004    wrong physical quantity crossing a boundary (volts into a
             frequency parameter)
   DIM005    manual scale conversion (``t * 1000`` or
             ``t * units.NS_PER_S``) on a unit-carrying value instead
             of a :mod:`repro.units` helper
   ========  ==========================================================

The analysis is deliberately conservative: a finding requires *both*
sides of a boundary to carry known units, so unannotated code stays
silent rather than noisy.  ``units.py`` and ``unit_types.py`` — the
modules that define the conventions — are exempt from checking (their
whole purpose is to cross scales).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .findings import Finding
from .modgraph import dotted as _dotted
from .modgraph import module_aliases as _module_aliases
from .modgraph import module_identity as _module_identity
from .modgraph import modules_from_sources
from .rules.base import ModuleInfo
from .suppress import is_suppressed, suppressions_for

__all__ = [
    "DIM_RULES",
    "Dim",
    "DimensionAnalysis",
    "analyze_sources",
]

#: Rule catalogue for ``--list-rules`` and the documentation table.
DIM_RULES: tuple[tuple[str, str, str], ...] = (
    (
        "DIM001",
        "incompatible units in arithmetic",
        "Adding, subtracting or comparing values of different physical "
        "quantities (or scales) is meaningless; the result silently "
        "corrupts whatever consumes it.",
    ),
    (
        "DIM002",
        "unit scale mismatch at a boundary",
        "Passing seconds where milliseconds are expected (or vice versa) "
        "is off by 10^3 with no runtime symptom; convert via repro.units "
        "helpers at the boundary.",
    ),
    (
        "DIM003",
        "absolute power confused with a power fraction",
        "Budgets and set-points are fractions of max chip power; absolute "
        "watts flowing into a fraction-typed parameter (or back) breaks "
        "every controller gain derived from them.",
    ),
    (
        "DIM004",
        "wrong physical quantity at a boundary",
        "A value annotated with one quantity (volts, GHz, Celsius, ...) "
        "reaching a parameter annotated with another is a type error the "
        "runtime cannot see.",
    ),
    (
        "DIM005",
        "manual unit conversion bypasses repro.units",
        "Scaling a unit-carrying value by a raw factor hides the "
        "conversion from review and from this analysis; use the named "
        "repro.units helpers instead.",
    ),
)

#: Unit symbol -> (physical quantity, scale label).  The scale label only
#: needs to *differ* between scales of one quantity; no arithmetic is
#: ever performed on it.
_UNIT_TABLE: dict[str, tuple[str, str]] = {
    "s": ("time", "s"),
    "ms": ("time", "ms"),
    "us": ("time", "us"),
    "ns": ("time", "ns"),
    "GHz": ("frequency", "GHz"),
    "Hz": ("frequency", "Hz"),
    "V": ("voltage", "V"),
    "W": ("power", "W"),
    "frac": ("power fraction", "frac"),
    "degC": ("temperature", "degC"),
    "J": ("energy", "J"),
    "nJ": ("energy", "nJ"),
    "BIPS": ("throughput", "BIPS"),
}

#: Annotation alias name -> unit symbol.  Scalar, ``*Like`` and
#: ``*Array`` spellings all carry the same symbol.
_VOCABULARY: dict[str, str] = {
    "Seconds": "s",
    "SecondsLike": "s",
    "SecondsArray": "s",
    "Milliseconds": "ms",
    "Microseconds": "us",
    "Nanoseconds": "ns",
    "GigaHz": "GHz",
    "GigaHzLike": "GHz",
    "GigaHzArray": "GHz",
    "Hertz": "Hz",
    "Volts": "V",
    "VoltsLike": "V",
    "VoltsArray": "V",
    "Watts": "W",
    "WattsLike": "W",
    "WattsArray": "W",
    "PowerFraction": "frac",
    "PowerFractionLike": "frac",
    "PowerFractionArray": "frac",
    "Celsius": "degC",
    "CelsiusLike": "degC",
    "CelsiusArray": "degC",
    "Joules": "J",
    "JoulesLike": "J",
    "JoulesArray": "J",
    "Nanojoules": "nJ",
    "Bips": "BIPS",
    "BipsLike": "BIPS",
    "BipsArray": "BIPS",
}

#: Literal factors whose multiplication/division against a unit-carrying
#: value is (almost) always an inline scale conversion (DIM005).  Spelled
#: in decimal notation deliberately: scientific spellings of these values
#: are already UNIT001 violations.
_SCALE_LITERALS = frozenset(
    {1000.0, 0.001, 1000000.0, 0.000001, 1000000000.0, 0.000000001}
)

#: Named conversion constants from ``repro.units``; multiplying an
#: already-unit-typed value by one of these bypasses the helper functions.
_SCALE_CONSTANTS = frozenset(
    {
        "MILLISECONDS",
        "MICROSECONDS",
        "NANOSECONDS",
        "GHZ_TO_HZ",
        "NS_PER_S",
        "NJ_PER_J",
        "MILLI",
        "MICRO",
    }
)

#: Modules that define the unit conventions and are allowed to cross
#: scales freely.
_EXEMPT_BASENAMES = frozenset({"units.py", "unit_types.py"})


@dataclass(frozen=True)
class Dim:
    """A physical dimension: quantity plus scale label."""

    quantity: str
    scale: str

    @classmethod
    def from_symbol(cls, symbol: str) -> "Dim | None":
        entry = _UNIT_TABLE.get(symbol)
        if entry is None:
            return None
        return cls(quantity=entry[0], scale=entry[1])

    def describe(self) -> str:
        return f"{self.quantity} [{self.scale}]"


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _DimValue:
    """An expression known to carry a physical unit."""

    dim: Dim


@dataclass(frozen=True)
class _Number:
    """A literal numeric constant (dimensionless until proven otherwise)."""

    value: float


@dataclass(frozen=True)
class _Instance:
    """A value known to be an instance of a harvested class."""

    class_fq: str


@dataclass(frozen=True)
class _SymbolRef:
    """A dotted reference to a module / class / function, not yet called."""

    fq: str


@dataclass(frozen=True)
class _MethodRef:
    """A method looked up on an :class:`_Instance`."""

    class_fq: str
    name: str


_Value = _DimValue | _Number | _Instance | _SymbolRef | _MethodRef | None


# ---------------------------------------------------------------------------
# Harvested signatures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Param:
    name: str
    dim: Dim | None
    class_fq: str | None


@dataclass(frozen=True)
class _FuncSig:
    fq: str
    params: tuple[_Param, ...]
    returns_dim: Dim | None
    returns_class: str | None
    is_method: bool


@dataclass
class _ClassSig:
    fq: str
    fields: dict[str, Dim] = field(default_factory=dict)
    field_classes: dict[str, str] = field(default_factory=dict)
    field_order: list[str] = field(default_factory=list)
    methods: dict[str, _FuncSig] = field(default_factory=dict)
    is_dataclass: bool = False


@dataclass
class _Program:
    """Whole-program symbol tables built by the harvest pass."""

    functions: dict[str, _FuncSig] = field(default_factory=dict)
    classes: dict[str, _ClassSig] = field(default_factory=dict)
    #: ``module.name`` -> canonical target for import re-exports.
    exports: dict[str, str] = field(default_factory=dict)
    #: Unit-annotated module-level constants.
    attrs: dict[str, Dim] = field(default_factory=dict)

    def resolve(self, fq: str) -> str:
        """Follow re-export chains to a canonical defining name."""
        seen = set()
        while fq not in self.functions and fq not in self.classes:
            if fq in seen:
                break
            seen.add(fq)
            target = self.exports.get(fq)
            if target is None:
                break
            fq = target
        return fq

    def callable_at(self, fq: str) -> "_FuncSig | _ClassSig | None":
        fq = self.resolve(fq)
        return self.functions.get(fq) or self.classes.get(fq)

    def class_at(self, fq: str) -> _ClassSig | None:
        return self.classes.get(self.resolve(fq))

    def attr_dim(self, fq: str) -> Dim | None:
        return self.attrs.get(self.resolve(fq))


# ---------------------------------------------------------------------------
# Annotation reading
# ---------------------------------------------------------------------------


def _annotation_info(
    node: ast.AST | None, aliases: Mapping[str, str]
) -> tuple[Dim | None, str | None]:
    """(dimension, class fq) described by an annotation expression."""
    if node is None:
        return None, None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` unions: the unit (or class) of the non-None side.
        left = _annotation_info(node.left, aliases)
        right = _annotation_info(node.right, aliases)
        if _is_none_ann(node.right):
            return left
        if _is_none_ann(node.left):
            return right
        return None, None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head and head[-1] == "Annotated":
            return _annotated_info(node, aliases)
        if head and head[-1] in ("Optional", "Final", "ClassVar"):
            return _annotation_info(node.slice, aliases)
        return None, None
    parts = _dotted(node)
    if parts is None:
        return None, None
    tail = parts[-1]
    symbol = _VOCABULARY.get(tail)
    if symbol is not None:
        return Dim.from_symbol(symbol), None
    head = aliases.get(parts[0], parts[0])
    return None, ".".join([head] + parts[1:])


def _is_none_ann(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _qualify(class_fq: str | None, modname: str) -> str | None:
    """Anchor a bare class name from an annotation to its module.

    ``_annotation_info`` resolves imported names through the alias table,
    so a name still bare afterwards is either defined in the module being
    read or a builtin; prefixing the module makes the former resolvable
    from any other module (builtins simply never resolve, which keeps the
    analysis conservative).
    """
    if class_fq is not None and "." not in class_fq:
        return f"{modname}.{class_fq}"
    return class_fq


def _annotated_info(
    node: ast.Subscript, aliases: Mapping[str, str]
) -> tuple[Dim | None, str | None]:
    """Read ``Annotated[T, Unit("...")]`` written inline."""
    inner = node.slice
    if not isinstance(inner, ast.Tuple) or len(inner.elts) < 2:
        return None, None
    for meta in inner.elts[1:]:
        if not isinstance(meta, ast.Call):
            continue
        func = _dotted(meta.func)
        if not func or func[-1] != "Unit" or not meta.args:
            continue
        first = meta.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return Dim.from_symbol(first.value), None
    return _annotation_info(inner.elts[0], aliases)


# ---------------------------------------------------------------------------
# Pass 1 — harvest
# ---------------------------------------------------------------------------


def _harvest(modules: Sequence[ModuleInfo]) -> _Program:
    program = _Program()
    for module in modules:
        modname, is_package = _module_identity(module.path)
        aliases = _module_aliases(module.tree, modname, is_package)
        for local, target in aliases.items():
            program.exports[f"{modname}.{local}"] = target
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = _harvest_function(
                    stmt, f"{modname}.{stmt.name}", modname, aliases
                )
                program.functions[sig.fq] = sig
            elif isinstance(stmt, ast.ClassDef):
                _harvest_class(program, stmt, modname, aliases)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                dim, _cls = _annotation_info(stmt.annotation, aliases)
                if dim is not None:
                    program.attrs[f"{modname}.{stmt.target.id}"] = dim
    return program


def _harvest_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    fq: str,
    modname: str,
    aliases: Mapping[str, str],
    is_method: bool = False,
) -> _FuncSig:
    params: list[_Param] = []
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        dim, class_fq = _annotation_info(arg.annotation, aliases)
        params.append(
            _Param(name=arg.arg, dim=dim, class_fq=_qualify(class_fq, modname))
        )
    ret_dim, ret_class = _annotation_info(node.returns, aliases)
    return _FuncSig(
        fq=fq,
        params=tuple(params),
        returns_dim=ret_dim,
        returns_class=_qualify(ret_class, modname),
        is_method=is_method,
    )


def _decorator_names(node: ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = _dotted(target)
        if parts:
            names.append(parts[-1])
    return names


def _harvest_class(
    program: _Program,
    node: ast.ClassDef,
    modname: str,
    aliases: Mapping[str, str],
) -> None:
    fq = f"{modname}.{node.name}"
    sig = _ClassSig(fq=fq, is_dataclass="dataclass" in _decorator_names(node))
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            dim, class_fq = _annotation_info(stmt.annotation, aliases)
            sig.field_order.append(name)
            if dim is not None:
                sig.fields[name] = dim
            elif class_fq is not None:
                sig.field_classes[name] = _qualify(class_fq, modname)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _harvest_function(
                stmt, f"{fq}.{stmt.name}", modname, aliases, is_method=True
            )
            sig.methods[stmt.name] = method
            if "property" in _decorator_names(stmt):
                if method.returns_dim is not None:
                    sig.fields[stmt.name] = method.returns_dim
                elif method.returns_class is not None:
                    sig.field_classes[stmt.name] = method.returns_class
            if stmt.name == "__init__":
                _harvest_init_attrs(sig, stmt, method, modname, aliases)
    program.classes[fq] = sig


def _harvest_init_attrs(
    sig: _ClassSig,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    init: _FuncSig,
    modname: str,
    aliases: Mapping[str, str],
) -> None:
    """Self-attribute units/classes assigned inside ``__init__``."""
    param_by_name = {p.name: p for p in init.params}
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.AnnAssign) and _is_self_attr(stmt.target):
            name = stmt.target.attr  # type: ignore[union-attr]
            dim, class_fq = _annotation_info(stmt.annotation, aliases)
            if dim is not None:
                sig.fields.setdefault(name, dim)
            elif class_fq is not None:
                class_fq = _qualify(class_fq, modname)
                sig.field_classes.setdefault(name, class_fq)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not _is_self_attr(target):
                continue
            name = target.attr  # type: ignore[union-attr]
            value = stmt.value
            if isinstance(value, ast.Name) and value.id in param_by_name:
                param = param_by_name[value.id]
                if param.dim is not None:
                    sig.fields.setdefault(name, param.dim)
                elif param.class_fq is not None:
                    sig.field_classes.setdefault(name, param.class_fq)
            elif isinstance(value, ast.Call):
                parts = _dotted(value.func)
                if parts:
                    head = aliases.get(parts[0], parts[0])
                    sig.field_classes.setdefault(
                        name, _qualify(".".join([head] + parts[1:]), modname)
                    )


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


# ---------------------------------------------------------------------------
# Pass 2 — check
# ---------------------------------------------------------------------------


class _ModuleChecker:
    """Abstract interpreter for one module against the program tables."""

    def __init__(self, program: _Program, module: ModuleInfo) -> None:
        self.program = program
        self.module = module
        self.modname, is_package = _module_identity(module.path)
        self.aliases = _module_aliases(module.tree, self.modname, is_package)
        self.findings: list[Finding] = []

    # -- reporting ----------------------------------------------------------

    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.module.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
                source_line=self.module.line_text(line),
            )
        )

    def _check_boundary(
        self, node: ast.AST, expected: Dim, actual: Dim, where: str
    ) -> None:
        if expected == actual:
            return
        if expected.quantity == actual.quantity:
            self._report(
                node,
                "DIM002",
                f"{where} receives {actual.describe()} but expects "
                f"{expected.describe()}; convert with the repro.units "
                f"helpers at the boundary",
            )
        elif {expected.quantity, actual.quantity} == {"power", "power fraction"}:
            direction = (
                "absolute power [W] flows into a fraction-of-max-chip-power slot"
                if actual.quantity == "power"
                else "a power fraction flows into an absolute-watts slot"
            )
            self._report(
                node,
                "DIM003",
                f"{where}: {direction}; normalize via the chip's max-power "
                f"constant before crossing this boundary",
            )
        else:
            self._report(
                node,
                "DIM004",
                f"{where} receives {actual.describe()} but expects "
                f"{expected.describe()}",
            )

    # -- entry point --------------------------------------------------------

    def check(self) -> list[Finding]:
        env: dict[str, _Value] = {}
        self._exec_block(self.module.tree.body, env, return_dim=None)
        return self.findings

    # -- statements ---------------------------------------------------------

    def _exec_block(
        self,
        stmts: Sequence[ast.stmt],
        env: dict[str, _Value],
        return_dim: Dim | None,
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, return_dim)

    def _exec_stmt(
        self, stmt: ast.stmt, env: dict[str, _Value], return_dim: Dim | None
    ) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared_dim, declared_class = _annotation_info(
                stmt.annotation, self.aliases
            )
            value = self._eval(stmt.value, env) if stmt.value else None
            if (
                declared_dim is not None
                and isinstance(value, _DimValue)
                and stmt.value is not None
            ):
                self._check_boundary(
                    stmt.value, declared_dim, value.dim, "the annotated assignment"
                )
            if isinstance(stmt.target, ast.Name):
                if declared_dim is not None:
                    env[stmt.target.id] = _DimValue(declared_dim)
                elif declared_class is not None:
                    env[stmt.target.id] = _Instance(
                        self.program.resolve(
                            _qualify(declared_class, self.modname)
                        )
                    )
                else:
                    env[stmt.target.id] = value
        elif isinstance(stmt, ast.AugAssign):
            target_val = self._eval(stmt.target, env)
            value = self._eval(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._combine_additive(stmt, target_val, value)
            elif isinstance(stmt.op, (ast.Mult, ast.Div)):
                self._check_manual_scale(stmt, target_val, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if return_dim is not None and isinstance(value, _DimValue):
                    self._check_boundary(
                        stmt.value, return_dim, value.dim, "the return value"
                    )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            self._exec_block(stmt.body, env, return_dim)
            self._exec_block(stmt.orelse, env, return_dim)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter, env)
            element = iter_value if isinstance(iter_value, _DimValue) else None
            self._bind_target(stmt.target, element, env)
            self._exec_block(stmt.body, env, return_dim)
            self._exec_block(stmt.orelse, env, return_dim)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            self._exec_block(stmt.body, env, return_dim)
            self._exec_block(stmt.orelse, env, return_dim)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None, env)
            self._exec_block(stmt.body, env, return_dim)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, return_dim)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env, return_dim)
            self._exec_block(stmt.orelse, env, return_dim)
            self._exec_block(stmt.finalbody, env, return_dim)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(stmt, enclosing_class=None)
        elif isinstance(stmt, ast.ClassDef):
            self._check_class(stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject, env)
            for case in stmt.cases:
                self._exec_block(case.body, env, return_dim)

    def _bind_target(
        self, target: ast.AST, value: _Value, env: dict[str, _Value]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None, env)
        elif isinstance(target, ast.Attribute):
            # ``obj.field = value`` is a boundary when the field has a unit.
            owner = self._eval(target.value, env)
            if isinstance(owner, _Instance) and isinstance(value, _DimValue):
                cls = self.program.class_at(owner.class_fq)
                if cls is not None:
                    expected = cls.fields.get(target.attr)
                    if expected is not None:
                        self._check_boundary(
                            target,
                            expected,
                            value.dim,
                            f"attribute {target.attr!r}",
                        )

    # -- classes and functions ---------------------------------------------

    def _check_class(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt, enclosing_class=f"{self.modname}.{node.name}")
            elif isinstance(stmt, ast.ClassDef):
                self._check_class(stmt)

    def _check_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing_class: str | None,
    ) -> None:
        env: dict[str, _Value] = {}
        args = node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for index, arg in enumerate(all_args):
            if index == 0 and enclosing_class is not None and arg.arg in ("self", "cls"):
                env[arg.arg] = _Instance(enclosing_class)
                continue
            dim, class_fq = _annotation_info(arg.annotation, self.aliases)
            if dim is not None:
                env[arg.arg] = _DimValue(dim)
            elif class_fq is not None:
                resolved = self.program.resolve(
                    _qualify(class_fq, self.modname)
                )
                if resolved in self.program.classes:
                    env[arg.arg] = _Instance(resolved)
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self._eval(default, env)
        return_dim, _ = _annotation_info(node.returns, self.aliases)
        self._exec_block(node.body, env, return_dim)

    # -- expressions --------------------------------------------------------

    def _eval(self, node: ast.AST | None, env: dict[str, _Value]) -> _Value:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return _Number(float(node.value))
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            target = self.aliases.get(node.id)
            if target is not None:
                return self._symbol_value(target)
            return self._symbol_value(f"{self.modname}.{node.id}", weak=True)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.Compare):
            self._eval_compare(node, env)
            return None
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(operand, _Number):
                return _Number(-operand.value)
            return operand
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            body = self._eval(node.body, env)
            orelse = self._eval(node.orelse, env)
            return body if body == orelse else None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env)
            return None
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            self._eval(node.slice, env)
            # Indexing/slicing an annotated array keeps the unit.
            return value if isinstance(value, _DimValue) else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return None
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self._eval(part.value, env)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind_target(node.target, value, env)
            return value
        if isinstance(node, ast.Starred):
            self._eval(node.value, env)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_comprehension(node.generators, env)
            self._eval(node.elt, env)
            return None
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node.generators, env)
            self._eval(node.key, env)
            self._eval(node.value, env)
            return None
        if isinstance(node, ast.Slice):
            self._eval(node.lower, env)
            self._eval(node.upper, env)
            self._eval(node.step, env)
            return None
        return None

    def _eval_comprehension(
        self, generators: Sequence[ast.comprehension], env: dict[str, _Value]
    ) -> None:
        for gen in generators:
            iter_value = self._eval(gen.iter, env)
            element = iter_value if isinstance(iter_value, _DimValue) else None
            self._bind_target(gen.target, element, env)
            for cond in gen.ifs:
                self._eval(cond, env)

    def _symbol_value(self, fq: str, weak: bool = False) -> _Value:
        dim = self.program.attr_dim(fq)
        if dim is not None:
            return _DimValue(dim)
        if weak:
            # Unresolved bare name: only names the harvest pass actually
            # saw count (module constants, same-module functions/classes);
            # anything else — builtins, loop temporaries — stays unknown.
            if self.program.callable_at(fq) is not None:
                return _SymbolRef(fq)
            return None
        return _SymbolRef(fq)

    def _eval_attribute(self, node: ast.Attribute, env: dict[str, _Value]) -> _Value:
        base = self._eval(node.value, env)
        if isinstance(base, _Instance):
            cls = self.program.class_at(base.class_fq)
            if cls is None:
                return None
            if node.attr in cls.fields:
                return _DimValue(cls.fields[node.attr])
            if node.attr in cls.field_classes:
                resolved = self.program.resolve(cls.field_classes[node.attr])
                if resolved in self.program.classes:
                    return _Instance(resolved)
                return None
            if node.attr in cls.methods:
                return _MethodRef(base.class_fq, node.attr)
            return None
        if isinstance(base, _SymbolRef):
            return self._symbol_value(f"{base.fq}.{node.attr}")
        return None

    # -- calls --------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env: dict[str, _Value]) -> _Value:
        callee = self._eval(node.func, env)
        sig: _FuncSig | None = None
        cls: _ClassSig | None = None
        skip_self = False
        if isinstance(callee, _MethodRef):
            owner = self.program.class_at(callee.class_fq)
            if owner is not None:
                sig = owner.methods.get(callee.name)
                skip_self = True
        elif isinstance(callee, _SymbolRef):
            resolved = self.program.callable_at(callee.fq)
            if isinstance(resolved, _FuncSig):
                sig = resolved
            elif isinstance(resolved, _ClassSig):
                cls = resolved

        if cls is not None:
            self._check_constructor(node, cls, env)
            return _Instance(cls.fq)
        if sig is None:
            for arg in node.args:
                self._eval(arg, env)
            for keyword in node.keywords:
                self._eval(keyword.value, env)
            return None

        params = list(sig.params)
        if skip_self and params and params[0].name in ("self", "cls"):
            params = params[1:]
        self._check_arguments(node, params, env, sig.fq)
        if sig.returns_dim is not None:
            return _DimValue(sig.returns_dim)
        if sig.returns_class is not None:
            resolved_class = self.program.resolve(sig.returns_class)
            if resolved_class in self.program.classes:
                return _Instance(resolved_class)
        return None

    def _check_constructor(
        self, node: ast.Call, cls: _ClassSig, env: dict[str, _Value]
    ) -> None:
        init = cls.methods.get("__init__")
        if init is not None:
            params = list(init.params)
            if params and params[0].name in ("self", "cls"):
                params = params[1:]
        elif cls.is_dataclass:
            params = [
                _Param(
                    name=name,
                    dim=cls.fields.get(name),
                    class_fq=cls.field_classes.get(name),
                )
                for name in cls.field_order
            ]
        else:
            params = []
        self._check_arguments(node, params, env, cls.fq)

    def _check_arguments(
        self,
        node: ast.Call,
        params: Sequence[_Param],
        env: dict[str, _Value],
        callee_fq: str,
    ) -> None:
        callee_name = callee_fq.rsplit(".", 1)[-1]
        by_name = {p.name: p for p in params}
        for index, arg in enumerate(node.args):
            value = self._eval(arg, env)
            if isinstance(arg, ast.Starred):
                continue
            if index < len(params) and isinstance(value, _DimValue):
                param = params[index]
                if param.dim is not None:
                    self._check_boundary(
                        arg,
                        param.dim,
                        value.dim,
                        f"parameter {param.name!r} of {callee_name}()",
                    )
        for keyword in node.keywords:
            value = self._eval(keyword.value, env)
            if keyword.arg is None:
                continue
            param = by_name.get(keyword.arg)
            if (
                param is not None
                and param.dim is not None
                and isinstance(value, _DimValue)
            ):
                self._check_boundary(
                    keyword.value,
                    param.dim,
                    value.dim,
                    f"parameter {param.name!r} of {callee_name}()",
                )

    # -- arithmetic ---------------------------------------------------------

    def _eval_binop(self, node: ast.BinOp, env: dict[str, _Value]) -> _Value:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._combine_additive(node, left, right)
        if isinstance(node.op, (ast.Mult, ast.Div)):
            flagged = self._check_manual_scale(node, left, right)
            if flagged:
                return None
            if isinstance(left, _DimValue) and isinstance(
                right, (_Number, type(None))
            ):
                return left
            if (
                isinstance(node.op, ast.Mult)
                and isinstance(right, _DimValue)
                and isinstance(left, (_Number, type(None)))
            ):
                return right
            return None
        return None

    def _combine_additive(
        self, node: ast.AST, left: _Value, right: _Value
    ) -> _Value:
        if isinstance(left, _DimValue) and isinstance(right, _DimValue):
            if left.dim != right.dim:
                if left.dim.quantity == right.dim.quantity:
                    detail = (
                        f"same quantity at different scales "
                        f"({left.dim.scale} vs {right.dim.scale}); convert "
                        f"one side with the repro.units helpers"
                    )
                else:
                    detail = "these quantities cannot be combined"
                self._report(
                    node,
                    "DIM001",
                    f"arithmetic mixes {left.dim.describe()} with "
                    f"{right.dim.describe()}: {detail}",
                )
                return None
            return left
        if isinstance(left, _DimValue):
            return left
        if isinstance(right, _DimValue):
            return right
        return None

    def _eval_compare(self, node: ast.Compare, env: dict[str, _Value]) -> None:
        values = [self._eval(node.left, env)]
        for comparator in node.comparators:
            values.append(self._eval(comparator, env))
        dims = [
            (i, v.dim) for i, v in enumerate(values) if isinstance(v, _DimValue)
        ]
        for (_, a), (_, b) in zip(dims, dims[1:]):
            if a.quantity != b.quantity or a.scale != b.scale:
                self._report(
                    node,
                    "DIM001",
                    f"comparison mixes {a.describe()} with {b.describe()}",
                )

    def _check_manual_scale(
        self, node: ast.AST, left: _Value, right: _Value
    ) -> bool:
        """DIM005: unit-carrying value scaled by a raw conversion factor."""
        for dimmed, other in ((left, right), (right, left)):
            if not isinstance(dimmed, _DimValue):
                continue
            if isinstance(other, _Number) and other.value in _SCALE_LITERALS:
                self._report(
                    node,
                    "DIM005",
                    f"manual scale conversion of a {dimmed.dim.describe()} "
                    f"value by {other.value!r}; use the repro.units helpers "
                    f"(ms/us/ns/to_ms/to_ns/hz/to_nj) instead",
                )
                return True
            if isinstance(other, _SymbolRef):
                tail = other.fq.rsplit(".", 1)[-1]
                if tail in _SCALE_CONSTANTS and "units" in other.fq:
                    self._report(
                        node,
                        "DIM005",
                        f"manual scale conversion of a "
                        f"{dimmed.dim.describe()} value by units.{tail}; "
                        f"use the repro.units helpers instead",
                    )
                    return True
        return False


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


class DimensionAnalysis:
    """The whole-program dimensions pass (CLI name: ``dimensions``)."""

    name = "dimensions"

    def run(self, modules: Sequence[ModuleInfo]) -> list[Finding]:
        """Harvest every module, then check each non-exempt one."""
        program = _harvest(modules)
        findings: list[Finding] = []
        for module in modules:
            if module.basename in _EXEMPT_BASENAMES:
                continue
            findings.extend(_ModuleChecker(program, module).check())
        return sorted(set(findings))


def analyze_sources(sources: Mapping[str, str]) -> list[Finding]:
    """Run the dimensions pass over in-memory sources (test entry point).

    ``sources`` maps display paths (e.g. ``src/repro/foo.py``) to source
    text; inline ``# lint: ignore[...]`` suppressions are honoured.
    """
    modules = modules_from_sources(sources)
    findings = DimensionAnalysis().run(modules)
    kept: list[Finding] = []
    by_path: dict[str, dict[int, set[str]]] = {
        m.path: suppressions_for(m.source) for m in modules
    }
    for finding in findings:
        suppressions = by_path.get(finding.path, {})
        if not is_suppressed(suppressions, finding.line, finding.rule_id):
            kept.append(finding)
    return kept
