"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``run``        — simulate one power-management scheme and report/export.
* ``calibrate``  — run the offline calibration pipeline and print it.
* ``compare``    — CPM vs MaxBIPS vs no-management at one budget.
* ``sweep``      — one scheme across a range of budgets.
* ``experiment`` — run one (or all) paper experiments by name.
* ``chaos``      — scheduled-fault resilience report (guarded vs not).

Examples::

    python -m repro run --budget 0.8 --cores 16 --islands 4 --out results/
    python -m repro calibrate --cores 8 --islands 4
    python -m repro compare --budget 0.8
    python -m repro experiment fig12_perf_degradation
    python -m repro experiment all --quick
"""

from __future__ import annotations

import argparse
import functools
import importlib
import inspect
import sys
from typing import Sequence

import numpy as np

from .baselines.maxbips import MaxBIPSScheme
from .baselines.no_management import NoManagementScheme
from .baselines.static_uniform import StaticUniformScheme
from .cmpsim.simulator import Simulation
from .config import CMPConfig, DEFAULT_CONFIG
from .core.cpm import CPMScheme
from .core.metrics import performance_degradation
from .gpm import (
    EnergyAwarePolicy,
    PerformanceAwarePolicy,
    ThermalAwarePolicy,
    UniformPolicy,
    VariationAwarePolicy,
)
from .reporting import as_percent, format_series, format_table
from .rng import DEFAULT_SEED
from . import units

__all__ = [
    "POLICIES",
    "SCHEMES",
    "build_parser",
    "cmd_calibrate",
    "cmd_chaos",
    "cmd_compare",
    "cmd_experiment",
    "cmd_run",
    "cmd_sweep",
    "main",
]

POLICIES = {
    "performance": PerformanceAwarePolicy,
    "thermal": ThermalAwarePolicy,
    "variation": VariationAwarePolicy,
    "energy": EnergyAwarePolicy,
    "uniform": UniformPolicy,
}

SCHEMES = ("cpm", "maxbips", "none", "static")


def _build_config(args: argparse.Namespace) -> CMPConfig:
    config = DEFAULT_CONFIG
    if args.cores != config.n_cores or args.islands != config.n_islands:
        config = config.with_islands(args.cores, args.islands)
    return config


def _scheme_from_names(scheme: str, policy: str):
    """Build a scheme from its CLI names.

    Module-level (not a closure over ``args``) so
    ``functools.partial(_scheme_from_names, ...)`` pickles into runner
    worker processes.
    """
    if scheme == "cpm":
        return CPMScheme(policy=POLICIES[policy]())
    if scheme == "maxbips":
        return MaxBIPSScheme()
    if scheme == "static":
        return StaticUniformScheme()
    return NoManagementScheme()


def _build_scheme(args: argparse.Namespace):
    return _scheme_from_names(args.scheme, args.policy)


def _jobs_value(raw: str) -> int | None:
    """Parse ``--jobs``: a worker count, or ``all`` for every core."""
    return None if raw == "all" else int(raw)


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=8, help="core count")
    parser.add_argument("--islands", type=int, default=4, help="island count")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)


def cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args)
    scheme = _build_scheme(args)
    sim = Simulation(
        config, scheme, budget_fraction=args.budget, seed=args.seed
    )
    result = sim.run(args.intervals)

    chip = result.telemetry["chip_power_frac"]
    print(
        format_table(
            ["quantity", "value"],
            [
                ["scheme", result.scheme_name],
                ["mix", result.mix_name],
                ["budget", as_percent(args.budget, 0)],
                ["mean chip power", as_percent(result.mean_chip_power_frac)],
                ["max chip power", as_percent(float(chip.max()))],
                ["throughput (BIPS)", result.mean_chip_bips],
                ["instructions retired", f"{result.total_instructions:.3e}"],
            ],
            title=f"{config.n_cores}-core / {config.n_islands}-island run "
            f"({args.intervals} GPM intervals)",
        )
    )
    print()
    print(format_series({"chip power": chip}, width=64))
    if args.out:
        from .io import save_run

        paths = save_run(result, args.out, stem=f"{result.scheme_name}")
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from .core.calibration import calibrate

    config = _build_config(args)
    cal = calibrate(config, seed=args.seed)
    rows = [
        ["system gain a", cal.system_gain],
        ["K_P / K_I / K_D",
         f"{cal.pid_gains.kp:.4f} / {cal.pid_gains.ki:.4f} / {cal.pid_gains.kd:.4f}"],
        ["validation error (holdout)", as_percent(cal.validation_error)],
        ["stability gain limit g", cal.stability_limit],
        ["mean transducer R^2", cal.mean_transducer_r_squared],
    ]
    for name, fit in sorted(cal.per_benchmark_gains.items()):
        marker = " (holdout)" if name == cal.holdout else ""
        rows.append([f"gain: {name}{marker}", fit.gain])
    print(format_table(["quantity", "value"], rows, title="Calibration"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _build_config(args)
    reference = Simulation(
        config, NoManagementScheme(), budget_fraction=1.0, seed=args.seed
    ).run(args.intervals)
    rows = [
        [
            "no-management",
            as_percent(reference.mean_chip_power_frac),
            as_percent(0.0),
        ]
    ]
    for name, scheme in (
        ("cpm (performance-aware)", CPMScheme()),
        ("maxbips", MaxBIPSScheme()),
        ("static-uniform", StaticUniformScheme()),
    ):
        result = Simulation(
            config, scheme, budget_fraction=args.budget, seed=args.seed
        ).run(args.intervals)
        rows.append(
            [
                name,
                as_percent(result.mean_chip_power_frac),
                as_percent(performance_degradation(result, reference)),
            ]
        )
    print(
        format_table(
            ["scheme", "mean chip power", "perf degradation"],
            rows,
            title=f"Scheme comparison @ budget {as_percent(args.budget, 0)}",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import budget_sweep

    config = _build_config(args)
    try:
        start, stop, step = (float(x) for x in args.budgets.split(":"))
    except ValueError:
        print("--budgets must be start:stop:step, e.g. 0.75:1.0:0.05",
              file=sys.stderr)
        return 2
    budgets = [round(b, 6) for b in
               list(np.arange(start, stop + units.EPS, step))]
    result = budget_sweep(
        functools.partial(_scheme_from_names, args.scheme, args.policy),
        budgets=budgets,
        config=config,
        n_gpm_intervals=args.intervals,
        seed=args.seed,
        title=f"{args.scheme} across budgets on "
        f"{config.n_cores}c/{config.n_islands}i",
        jobs=args.jobs,
    )
    print(result.as_table())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS

    names = ALL_EXPERIMENTS if args.name == "all" else (args.name,)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; choose from: "
            f"{', '.join(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        kwargs = {"seed": args.seed, "quick": args.quick}
        # Only sweep-style experiments (independent runs) take jobs.
        if "jobs" in inspect.signature(module.run).parameters:
            kwargs["jobs"] = args.jobs
        result = module.run(**kwargs)
        print(result.render())
        print()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments.chaos import run as run_chaos

    result = run_chaos(seed=args.seed, quick=args.quick)
    print(result.render())
    if args.out:
        import json
        import pathlib

        payload = {
            "experiment": result.experiment,
            "description": result.description,
            "headers": list(result.headers),
            "rows": [[str(cell) for cell in row] for row in result.rows],
            "notes": list(result.notes),
        }
        path = pathlib.Path(args.out)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote report: {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPM-in-CMPs: coordinated CMP power management (SC 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one scheme")
    _add_platform_args(run)
    run.add_argument("--scheme", choices=SCHEMES, default="cpm")
    run.add_argument("--policy", choices=sorted(POLICIES), default="performance")
    run.add_argument("--budget", type=float, default=0.8,
                     help="chip budget, fraction of max power")
    run.add_argument("--intervals", type=int, default=25,
                     help="GPM intervals to simulate")
    run.add_argument("--out", help="directory for CSV/JSON export")
    run.set_defaults(func=cmd_run)

    cal = sub.add_parser("calibrate", help="run the offline calibration")
    _add_platform_args(cal)
    cal.set_defaults(func=cmd_calibrate)

    cmp_ = sub.add_parser("compare", help="CPM vs baselines at one budget")
    _add_platform_args(cmp_)
    cmp_.add_argument("--budget", type=float, default=0.8)
    cmp_.add_argument("--intervals", type=int, default=25)
    cmp_.set_defaults(func=cmd_compare)

    swp = sub.add_parser("sweep", help="one scheme across budgets")
    _add_platform_args(swp)
    swp.add_argument("--scheme", choices=SCHEMES, default="cpm")
    swp.add_argument("--policy", choices=sorted(POLICIES), default="performance")
    swp.add_argument("--budgets", default="0.75:1.0:0.05",
                     help="start:stop:step budget range")
    swp.add_argument("--intervals", type=int, default=25)
    swp.add_argument("--jobs", type=_jobs_value, default=1,
                     help="worker processes (a count, or 'all')")
    swp.set_defaults(func=cmd_sweep)

    exp = sub.add_parser("experiment", help="run paper experiments")
    exp.add_argument("name", help="experiment module name, or 'all'")
    exp.add_argument("--quick", action="store_true",
                     help="shortened horizons")
    exp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    exp.add_argument("--jobs", type=_jobs_value, default=1,
                     help="worker processes (a count, or 'all')")
    exp.set_defaults(func=cmd_experiment)

    chaos = sub.add_parser(
        "chaos", help="scheduled-fault resilience report (guarded vs not)"
    )
    chaos.add_argument("--quick", action="store_true",
                       help="shortened fault grid")
    chaos.add_argument("--seed", type=int, default=DEFAULT_SEED)
    chaos.add_argument("--out", help="write the report as JSON")
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
