"""GPM — the Global Power Manager tier (first tier of CPM).

The GPM provisions the chip-wide power budget across the islands every
``T_global``; *how* it splits the budget is a pluggable
:class:`~repro.gpm.policy.ProvisioningPolicy`.  Three policies from the
paper ship here: performance-aware (Equations 4–6), thermal-aware
(adjacency-constrained) and variation-aware (greedy energy-per-
instruction search); a uniform policy serves as the ablation baseline.
"""

from .energy_aware import EnergyAwarePolicy
from .guard import GPMGuard, GPMGuardConfig
from .manager import GlobalPowerManager
from .performance_aware import PerformanceAwarePolicy
from .policy import GPMContext, ProvisioningPolicy, UniformPolicy
from .thermal_aware import ThermalAwarePolicy
from .variation_aware import VariationAwarePolicy

__all__ = [
    "EnergyAwarePolicy",
    "GPMContext",
    "GPMGuard",
    "GPMGuardConfig",
    "GlobalPowerManager",
    "PerformanceAwarePolicy",
    "ProvisioningPolicy",
    "ThermalAwarePolicy",
    "UniformPolicy",
    "VariationAwarePolicy",
]
