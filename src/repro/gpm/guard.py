"""GPM guard: provision conservation and graceful island degradation.

The :class:`~repro.gpm.manager.GlobalPowerManager` already sanitizes a
*policy's* output, but nothing above it defends against a *plant* that
stops obeying: an island whose actuator sticks (or whose PIC is fed a
lying sensor) keeps drawing more than its set-point no matter what the
GPM provisions, and the chip silently busts its budget.  This guard
closes that loop at the supervisor tier:

* **quarantine** — an island whose *measured* window power exceeds its
  set-point for ``strikes_to_quarantine`` consecutive windows is
  quarantined: it is commanded to its feasible floor, its *apparent*
  draw (measured power plus headroom) is reserved out of the budget, and
  only the remainder is provisioned to the healthy islands.  Total chip
  draw therefore stays within budget even though the bad island ignores
  its cap — graceful degradation, paid for by the healthy islands;
* **restore** — obedience is judged by *frequency*, not power (an island
  pinned at the DVFS floor still draws workload-dependent power, so its
  static idle floor is unreachable).  A quarantined island observed at
  the ladder floor for ``windows_to_restore`` consecutive windows has
  demonstrably resumed following commands and is released;
* **reclaim** — an island pinned at the floor that consumes below its
  set-point (a fail-safed sensor, a clamped thermal emergency) cannot
  use its budget; the surplus is re-provisioned to healthy islands and
  flows back automatically as the island's draw recovers;
* **conservation** — whatever else happens, the enforced vector is
  rescaled (and the event logged) if it would provision more than the
  distributable budget.

The reserve shrinks window by window as a misbehaving island's draw
decays, so reclaimed budget returns to healthy islands immediately.  All
decisions are pure functions of telemetry — no randomness, no clock —
so guarded runs stay bit-identical across ``jobs=N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cmpsim.telemetry import ResilienceLog, WindowStats
from ..unit_types import GigaHz, GigaHzArray, PowerFraction, PowerFractionArray
from ..units import EPS
from .policy import clamp_and_redistribute

__all__ = ["GPMGuard", "GPMGuardConfig"]

#: Frequency slack (GHz) when deciding an island sits at the ladder floor.
_FREQ_EPS = EPS


@dataclass(frozen=True)
class GPMGuardConfig:
    """Thresholds for the supervisor-tier guard."""

    #: Margin, as a fraction of the island's own maximum power, by which
    #: a window's measured power may exceed its set-point before counting
    #: a strike.  The PIC regulates *sensed* (transduced) power, so true
    #: measured power legitimately sits a transducer error away from the
    #: set-point — worst near the bottom of the operating range, where
    #: the linear fit's bias reaches ~10% of island power.  The margin
    #: must dominate that, or obedient islands regulating a low
    #: set-point get quarantined on sensing bias alone.
    violation_margin: float = 0.15
    #: Consecutive violating windows before an island is quarantined.
    strikes_to_quarantine: int = 2
    #: Consecutive floor-obeying windows before quarantine is lifted.
    windows_to_restore: int = 2
    #: Relative headroom over a quarantined island's measured power kept
    #: reserved for it (its draw dithers; reserving the exact mean would
    #: leave half the dither outside the budget).
    reserve_headroom: float = 0.10

    def __post_init__(self) -> None:
        if self.violation_margin <= 0:
            raise ValueError("violation_margin must be positive")
        if self.strikes_to_quarantine < 1:
            raise ValueError("strikes_to_quarantine must be at least 1")
        if self.windows_to_restore < 1:
            raise ValueError("windows_to_restore must be at least 1")
        if self.reserve_headroom < 0:
            raise ValueError("reserve_headroom must be non-negative")


class GPMGuard:
    """Stateful supervisor-tier guard for one run (build at ``bind``).

    With healthy telemetry :meth:`review` returns its input untouched —
    the guard is transparent until something misbehaves.
    """

    def __init__(
        self,
        island_min: PowerFractionArray,
        island_max: PowerFractionArray,
        config: GPMGuardConfig | None = None,
        log: ResilienceLog | None = None,
        self_constrained: bool = False,
    ) -> None:
        self.config = config if config is not None else GPMGuardConfig()
        self.log = log if log is not None else ResilienceLog()
        self.island_min = np.asarray(island_min, dtype=float)
        self.island_max = np.asarray(island_max, dtype=float)
        if self.island_min.shape != self.island_max.shape:
            raise ValueError("island bounds must have matching shapes")
        #: Self-constrained policies (thermal-aware) encode couplings a
        #: redistribution would undo; for those the guard only ever
        #: shrinks set-points, never grows them.
        self.self_constrained = self_constrained
        n = self.island_min.size
        self.quarantined = np.zeros(n, dtype=bool)
        self._strikes = np.zeros(n, dtype=int)
        self._compliant = np.zeros(n, dtype=int)
        self._reserved = np.zeros(n, dtype=float)

    @property
    def n_islands(self) -> int:
        return int(self.island_min.size)

    # ------------------------------------------------------------------
    def _reserve_for(self, measured: PowerFraction, island: int) -> float:
        return float(
            np.clip(
                measured * (1.0 + self.config.reserve_headroom),
                self.island_min[island],
                self.island_max[island],
            )
        )

    def _update_health(
        self,
        window: WindowStats,
        island_frequency: GigaHzArray,
        f_floor: GigaHz,
    ) -> None:
        """Advance the strike/compliance counters from one window."""
        cfg = self.config
        measured = window.island_power_frac
        commanded = window.island_setpoints
        margin = cfg.violation_margin * self.island_max
        violating = measured > commanded + margin
        at_floor = island_frequency <= f_floor + _FREQ_EPS
        for i in range(self.n_islands):
            if self.quarantined[i]:
                # Obeying = at the ladder floor (nothing more it could
                # do) or back within margin of its command (transducer
                # bias can hold an obedient island's equilibrium above
                # the floor, so the floor test alone is too strict).
                obeying = at_floor[i] or not violating[i]
                self._compliant[i] = self._compliant[i] + 1 if obeying else 0
                if self._compliant[i] >= cfg.windows_to_restore:
                    self.quarantined[i] = False
                    self._strikes[i] = 0
                    self._compliant[i] = 0
                    self._reserved[i] = 0.0
                    self.log.record("island_restored", island=i)
                else:
                    # Track the apparent draw so the reserve decays as
                    # the island comes down.
                    self._reserved[i] = self._reserve_for(measured[i], i)
            elif violating[i] and not at_floor[i]:
                # An island already at the DVFS floor is doing all it can
                # — its draw above an idle-floor set-point is workload,
                # not disobedience, so it never accrues strikes.
                self.log.count("cap_violation_window")
                self._strikes[i] += 1
                if self._strikes[i] >= cfg.strikes_to_quarantine:
                    self.quarantined[i] = True
                    self._compliant[i] = 0
                    self._reserved[i] = self._reserve_for(measured[i], i)
                    self.log.record(
                        "island_quarantined",
                        island=i,
                        detail=f"measured {measured[i]:.4f} > "
                        f"setpoint {commanded[i]:.4f}",
                    )
            else:
                self._strikes[i] = 0

    # ------------------------------------------------------------------
    def review(
        self,
        setpoints: PowerFractionArray,
        windows: Sequence[WindowStats],
        budget: PowerFraction,
        island_frequency: GigaHzArray | None = None,
        f_floor: GigaHz | None = None,
    ) -> PowerFractionArray:
        """Vet one provisioning decision; returns the vector to enforce.

        ``island_frequency`` is the last interval's per-island frequency
        and ``f_floor`` the DVFS ladder floor; without them (start of
        run) the health bookkeeping is skipped.
        """
        out = np.array(setpoints, dtype=float, copy=True)
        if out.shape != (self.n_islands,):
            raise ValueError(
                f"expected {self.n_islands} set-points, got shape {out.shape}"
            )
        window = windows[-1] if windows else None
        telemetry_ok = (
            window is not None
            and island_frequency is not None
            and f_floor is not None
        )
        if telemetry_ok:
            self._update_health(window, island_frequency, f_floor)

        # Underuse reclaim: an island pinned at the floor and consuming
        # below its set-point cannot spend the budget it was given.
        caps: np.ndarray | None = None
        if telemetry_ok:
            measured = window.island_power_frac
            margin = self.config.violation_margin * self.island_max
            reclaim = (
                (island_frequency <= f_floor + _FREQ_EPS)
                & (measured < window.island_setpoints - margin)
                & ~self.quarantined
            )
            if bool(reclaim.any()):
                caps = self.island_max.copy()
                caps[reclaim] = np.clip(
                    measured[reclaim] * (1.0 + self.config.reserve_headroom),
                    self.island_min[reclaim],
                    self.island_max[reclaim],
                )
                self.log.count("budget_reclaimed", int(reclaim.sum()))

        bad = self.quarantined
        if bool(bad.any()) or caps is not None:
            if caps is None:
                caps = self.island_max.copy()
            total_in = float(out.sum())
            out[bad] = self.island_min[bad]
            caps[bad] = self.island_min[bad]
            healthy = ~bad
            available = max(0.0, budget - float(self._reserved[bad].sum()))
            # Preserve a policy's deliberate underuse: never provision the
            # healthy islands more than the policy's own total allowed.
            target = min(available, total_in) - float(out[bad].sum())
            target = max(target, 0.0)
            if self.self_constrained:
                # Shrink-only: growing redistributed shares could violate
                # the couplings a self-constrained policy enforced.
                out[healthy] = np.minimum(out[healthy], caps[healthy])
                healthy_total = float(out[healthy].sum())
                if healthy_total > target and healthy_total > 0.0:
                    out[healthy] = np.maximum(
                        out[healthy] * (target / healthy_total),
                        self.island_min[healthy],
                    )
            else:
                out[healthy] = clamp_and_redistribute(
                    out[healthy],
                    target,
                    self.island_min[healthy],
                    caps[healthy],
                )

        # Conservation backstop: whatever happened above, the enforced
        # vector must never provision more than the budget.
        total = float(out.sum())
        if total > budget + EPS:
            self.log.record(
                "conservation_rescale",
                detail=f"provisioned {total:.4f} > budget {budget:.4f}",
            )
            floor_total = float(self.island_min.sum())
            if floor_total >= budget:
                out = self.island_min.copy()
            else:
                excess = total - budget
                footroom = out - self.island_min
                movable = float(footroom.sum())
                if movable > 0:
                    out = out - footroom * min(1.0, excess / movable)
        return out
