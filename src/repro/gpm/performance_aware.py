"""Performance-aware provisioning (Equations 4–6).

The policy's reasoning: dynamic power is cubic in frequency (Eq. 1) and
single-island throughput is linear in frequency for compute-limited code
(Eq. 3), so if island *i*'s power moved by a ratio ``r`` its throughput
should have scaled by ``r**(1/3)``::

    BIPS_e_i(t) = BIPS_a_i(t-1) * (P_i(t-1) / P_i(t-2)) ** (1/3)     (Eq. 4)

The ratio ``phi_i = BIPS_a_i(t) / BIPS_e_i(t)`` (Eq. 5) measures how well
the island converted its power into performance — memory-bound islands
that received more power without speeding up score below 1 — and the next
provisioning weights islands by phi (Eq. 6).

Two update modes are provided:

* ``"proportional"`` (default) — phi reweights the *current* provisions:
  ``P_i(t+1) ∝ P_i(t) * phi_i``.  Islands that convert power into
  throughput keep accumulating budget, and the differentiation persists
  once phi settles back to 1.  This is the behaviour the paper's
  Figures 7/8 exhibit (sustained, drifting differentiation between
  islands over many GPM intervals).
* ``"eq6"`` — the literal text of Equation 6,
  ``P_i(t+1) = P_target * phi_i / sum(phi)``.  Because phi tends to 1 for
  every island at a provisioning steady state, this form relaxes back to
  an equal split between transients; it is kept for the ablation study.

The surrounding :class:`~repro.gpm.manager.GlobalPowerManager` adds the
paper's prose mechanism on top of either mode: islands that ran at the
top of the ladder yet consumed below their set-point are demand-limited,
and their surplus budget is reclaimed for the others.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..unit_types import PowerFractionArray
from .policy import GPMContext

__all__ = ["PerformanceAwarePolicy"]


class PerformanceAwarePolicy:
    """Maximize chip throughput within the budget via the phi heuristic."""

    name = "performance-aware"

    def __init__(
        self,
        phi_bounds: tuple[float, float] = (0.5, 2.0),
        smoothing: float = 0.5,
        mode: str = "proportional",
    ) -> None:
        """
        Parameters
        ----------
        phi_bounds:
            Clamp on the per-island performance ratio.  Equation 5's raw
            ratio can spike when a window's power barely changed (the
            expected-BIPS denominator is then pure noise); the clamp keeps
            one noisy window from starving an island, the concern the
            paper discusses below Equation 6.
        smoothing:
            EWMA weight on the newest phi (1.0 = no smoothing).
        mode:
            ``"proportional"`` or ``"eq6"`` — see the module docstring.
        """
        low, high = phi_bounds
        if not 0.0 < low <= 1.0 <= high:
            raise ValueError("phi_bounds must straddle 1.0 with low > 0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if mode not in ("proportional", "eq6"):
            raise ValueError(f"unknown mode {mode!r}")
        self.phi_bounds = phi_bounds
        self.smoothing = smoothing
        self.mode = mode
        self._phi_state: np.ndarray | None = None
        self._shares: np.ndarray | None = None

    def reset(self) -> None:
        self._phi_state = None
        self._shares = None

    def _phi(self, context: GPMContext) -> np.ndarray:
        w_now = context.windows[-1]
        w_prev = context.windows[-2]

        power_now = np.maximum(w_now.island_power_frac, units.EPS)
        power_prev = np.maximum(w_prev.island_power_frac, units.EPS)
        bips_prev = np.maximum(w_prev.island_bips, units.EPS)
        bips_now = np.maximum(w_now.island_bips, units.EPS)

        # Eq. 4 with the power and BIPS ratios taken over the *same*
        # window pair: the expected throughput of the latest window is the
        # previous window's throughput scaled by the cube root of the
        # power ratio across those two windows.
        expected = bips_prev * (power_now / power_prev) ** (1.0 / 3.0)  # Eq. 4
        phi = bips_now / np.maximum(expected, units.EPS)  # Eq. 5
        return np.clip(phi, *self.phi_bounds)

    def provision(self, context: GPMContext) -> PowerFractionArray:
        # Equation 4 needs two completed windows; until then, provision
        # equally (Eq. 6's initial condition).
        if self._shares is None or self._shares.shape != (context.n_islands,):
            self._shares = np.full(context.n_islands, 1.0 / context.n_islands)
        if len(context.windows) < 2:
            return context.equal_split()

        phi = self._phi(context)
        if self._phi_state is None or self._phi_state.shape != phi.shape:
            self._phi_state = phi
        else:
            s = self.smoothing
            self._phi_state = s * phi + (1.0 - s) * self._phi_state

        if self.mode == "eq6":
            weights = self._phi_state / self._phi_state.sum()
        else:
            raw = self._shares * self._phi_state
            weights = raw / raw.sum()
            self._shares = weights
        return context.budget * weights  # Eq. 6
