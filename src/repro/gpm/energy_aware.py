"""Energy-aware provisioning with a minimum performance guarantee.

Section II of the paper lists this as one of the "many other policies"
its decoupled architecture admits: "power provisioning for reducing
energy consumption by providing a minimum guarantee on the performance".
This module implements it.

Per GPM interval the policy estimates, from the last window's
measurements, each island's *power demand* and its *frequency
sensitivity* (the same counter-derived quantities MaxBIPS uses), then
provisions the least total power that keeps predicted chip throughput at
or above ``performance_floor`` of its unthrottled value.  The search is
a marginal-cost greedy: repeatedly trim budget from the island whose
predicted BIPS loss per reclaimed watt is smallest, until the
performance floor would be crossed.

Unlike the performance-aware policy (which spends the whole budget), the
energy-aware policy deliberately *underspends* — that is its purpose —
so runs under it show chip power below the configured budget.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..cmpsim.core import frequency_speedup
from ..unit_types import PowerFractionArray
from .policy import GPMContext

__all__ = ["EnergyAwarePolicy"]


class EnergyAwarePolicy:
    """Minimize provisioned power subject to a chip-throughput floor."""

    name = "energy-aware"

    def __init__(
        self,
        performance_floor: float = 0.95,
        trim_step: float = 0.02,
        max_trims: int = 200,
    ) -> None:
        """
        Parameters
        ----------
        performance_floor:
            Minimum predicted chip BIPS as a fraction of the unthrottled
            (full-provision) estimate.  0.95 = "give back power until
            throughput would drop 5%".
        trim_step:
            Budget removed per greedy step, as a fraction of an island's
            equal share.
        max_trims:
            Safety bound on greedy iterations per invocation.
        """
        if not 0.0 < performance_floor <= 1.0:
            raise ValueError("performance_floor must be in (0, 1]")
        if not 0.0 < trim_step < 1.0:
            raise ValueError("trim_step must be in (0, 1)")
        if max_trims < 1:
            raise ValueError("max_trims must be positive")
        self.performance_floor = performance_floor
        self.trim_step = trim_step
        self.max_trims = max_trims

    def reset(self) -> None:
        """Stateless: nothing to clear (kept for the policy interface)."""

    # ------------------------------------------------------------------
    def _estimates(self, context: GPMContext):
        """Per-island (demand, bips, elasticity) from the last window.

        Elasticity is d ln BIPS / d ln f at the island's operating point,
        inferred from utilization — memory-bound islands have low values.
        The window's utilization is activity-weighted cycle rate; islands
        far below full utilization at their frequency are stall-dominated.
        """
        w = context.windows[-1]
        demand = np.maximum(w.island_power_frac, units.MICRO)
        bips = np.maximum(w.island_bips, units.EPS)
        # De-throttle to the island's *unthrottled* demand and throughput:
        # the last window ran at context.island_frequency, possibly well
        # below f_max because of this very policy — rebasing on throttled
        # measurements would ratchet the baseline down every interval.
        if context.island_frequency is not None and np.isfinite(context.f_max):
            f_ratio = np.clip(
                context.f_max / np.maximum(context.island_frequency, units.MILLI),
                1.0,
                context.f_max / 0.3,
            )
            demand = demand * f_ratio**2  # local P ~ f^2 (V tracks f)
            bips = bips * f_ratio  # optimistic linear rescale; the busy
            # term below discounts memory-bound islands in the speedup
            # model, so the optimism cancels where it matters.
        # Busy proxy: utilization relative to its ceiling.  Map to the
        # CPI-stack elasticity cpi_on / cpi_total ~ busy.
        busy = np.clip(w.island_utilization / max(w.island_utilization.max(), units.EPS),
                       0.05, 1.0)
        return demand, bips, busy

    def provision(self, context: GPMContext) -> PowerFractionArray:
        if not context.windows:
            return context.equal_split()
        demand, bips, busy = self._estimates(context)
        n = context.n_islands

        # Start from each island's demand (nothing to gain above it),
        # bounded by the budget.
        full = np.minimum(demand * 1.02, context.island_max)
        scale_cap = context.budget / max(full.sum(), units.EPS)
        provision = full * min(1.0, scale_cap)

        # Predicted BIPS at a provisioning level: power maps to an
        # effective frequency ratio (P ~ V^2 f ~ f^2 locally), and BIPS
        # follows the counter-derived speedup model.
        def predicted_bips(p: np.ndarray) -> float:
            ratio = np.clip(p / np.maximum(full, units.EPS), 0.05, 1.0)
            f_ratio = np.sqrt(ratio)  # local P ~ f^2
            total = 0.0
            for i in range(n):
                mem_coeff = (1.0 - busy[i]) / max(busy[i], units.MILLI)
                total += bips[i] * frequency_speedup(
                    1.0, float(f_ratio[i]), 1.0, mem_coeff
                )
            return total

        baseline = predicted_bips(full)
        floor = self.performance_floor * baseline
        step = self.trim_step * context.budget / n

        for _ in range(self.max_trims):
            current = predicted_bips(provision)
            if current < floor:
                break
            # Marginal loss per watt for trimming each island.
            best_island, best_loss = -1, np.inf
            for i in range(n):
                if provision[i] - step < context.island_min[i]:
                    continue
                trial = provision.copy()
                trial[i] -= step
                loss = current - predicted_bips(trial)
                if loss < best_loss:
                    best_loss, best_island = loss, i
            if best_island < 0:
                break
            trial = provision.copy()
            trial[best_island] -= step
            if predicted_bips(trial) < floor:
                break
            provision = trial
        return np.clip(provision, context.island_min, context.island_max)
