"""Provisioning-policy interface and shared helpers.

A policy sees a :class:`GPMContext` — the measurement history and static
platform facts a supervisor-level power manager plausibly has — and
returns per-island power set-points.  Decoupling policies from the
controller tier is the architectural point of the paper: the PICs will
track whatever a policy provisions, so policies only reason about *how
much* each island should get.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..cmpsim.telemetry import WindowStats
from ..unit_types import (
    GigaHz,
    GigaHzArray,
    PowerFraction,
    PowerFractionArray,
)

__all__ = [
    "GPMContext",
    "ProvisioningPolicy",
    "UniformPolicy",
    "clamp_and_redistribute",
]


@dataclass(frozen=True)
class GPMContext:
    """What a provisioning policy may look at when dividing the budget."""

    #: Budget available to the islands (chip budget minus the uncore
    #: share), as a fraction of max chip power.
    budget: PowerFraction
    n_islands: int
    #: Completed GPM-window aggregates, oldest first.
    windows: Sequence[WindowStats]
    #: Static per-island feasible power range (fractions).
    island_min: PowerFractionArray
    island_max: PowerFractionArray
    #: Adjacent island pairs from the floorplan (thermal policies).
    adjacent_pairs: frozenset[tuple[int, int]]
    #: Per-island leakage multipliers (variation policies).
    island_leakage: np.ndarray
    #: Island frequencies during the last interval (None before any
    #: measurement) — lets the manager detect demand-limited islands.
    island_frequency: GigaHzArray | None = None
    #: Top of the DVFS ladder, GHz.
    f_max: GigaHz = float("nan")

    def equal_split(self) -> PowerFractionArray:
        """The initial provisioning: the budget divided equally."""
        return np.full(self.n_islands, self.budget / self.n_islands)


@runtime_checkable
class ProvisioningPolicy(Protocol):
    """The GPM's pluggable brain."""

    name: str

    def provision(self, context: GPMContext) -> PowerFractionArray:
        """Return per-island set-points summing to (at most) the budget."""


class UniformPolicy:
    """Always split the budget equally (the no-GPM-intelligence ablation)."""

    name = "uniform"

    def provision(self, context: GPMContext) -> PowerFractionArray:
        return context.equal_split()


def clamp_and_redistribute(
    shares: PowerFractionArray,
    total: PowerFraction,
    lower: PowerFractionArray,
    upper: PowerFractionArray,
    max_rounds: int = 8,
) -> PowerFractionArray:
    """Scale ``shares`` to sum to ``total`` while honouring per-island bounds.

    Water-filling: clamp everything into [lower, upper], then move the
    remaining surplus/deficit proportionally among the islands that still
    have headroom.  If the bounds make ``total`` infeasible the closest
    feasible vector is returned (all-lower or all-upper).
    """
    shares = np.asarray(shares, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if shares.shape != lower.shape or shares.shape != upper.shape:
        raise ValueError("shares and bounds must have matching shapes")
    if np.any(lower > upper):
        raise ValueError("lower bound exceeds upper bound")
    if total <= float(lower.sum()):
        return lower.copy()
    if total >= float(upper.sum()):
        return upper.copy()

    result = np.clip(shares, lower, upper)
    for _ in range(max_rounds):
        gap = total - float(result.sum())
        if abs(gap) < 1e-12:
            break
        if gap > 0:
            headroom = upper - result
            movable = headroom.sum()
            if movable <= 0:
                break
            result = result + headroom * min(1.0, gap / movable)
        else:
            footroom = result - lower
            movable = footroom.sum()
            if movable <= 0:
                break
            result = result - footroom * min(1.0, -gap / movable)
        result = np.clip(result, lower, upper)
    return result
