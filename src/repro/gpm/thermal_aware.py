"""Thermal-aware provisioning (the Figure 18 policy).

Wraps a base policy (performance-aware by default) and *preventively*
enforces the paper's spatial constraints on its output:

* an adjacent island pair may exceed ``pair_share_cap`` of the budget for
  at most ``pair_consecutive_limit`` consecutive GPM intervals;
* a single island may exceed ``single_share_cap`` for at most
  ``single_consecutive_limit`` consecutive intervals.

When granting the base policy's request would extend a streak past its
limit, the offenders are clamped to the cap; the trimmed power is then
redistributed among islands whose caps are *not* active (the clamped
islands' upper bounds stay frozen during redistribution, so enforcement
cannot be undone).  Because enforcement happens before actuation, a CPM
running this policy never violates — the claim of Figure 18(b)/(c) — at
the cost of extra performance degradation relative to the unconstrained
performance-aware policy.

Feasibility caveat: with ``k`` disjoint constrained pairs the caps must
satisfy ``k * pair_share_cap >= 1`` (and analogously for the single
caps), otherwise the budget cannot be fully placed; the policy then
deliberately leaves budget unused rather than violate.
"""

from __future__ import annotations

import numpy as np

from ..thermal.hotspot import ThermalConstraints
from ..unit_types import PowerFractionArray
from .performance_aware import PerformanceAwarePolicy
from .policy import GPMContext, ProvisioningPolicy, clamp_and_redistribute

__all__ = ["ThermalAwarePolicy"]


class ThermalAwarePolicy:
    """Spatial-constraint wrapper around any base provisioning policy."""

    name = "thermal-aware"
    #: Tells the GlobalPowerManager that this policy's output already
    #: satisfies all bounds and must not be redistributed (per-island
    #: clamps cannot express the pair constraints).
    self_constrained = True

    def __init__(
        self,
        base: ProvisioningPolicy | None = None,
        pair_share_cap: float = 0.50,
        pair_consecutive_limit: int = 2,
        single_share_cap: float = 0.40,
        single_consecutive_limit: int = 4,
        adjacent_pairs: frozenset[tuple[int, int]] | None = None,
    ) -> None:
        """``adjacent_pairs`` overrides the floorplan-derived adjacency in
        the :class:`~repro.gpm.policy.GPMContext` (the paper's Figure 18a
        study constrains specific side-by-side pairs)."""
        self.base = base or PerformanceAwarePolicy()
        self.pair_share_cap = pair_share_cap
        self.pair_consecutive_limit = pair_consecutive_limit
        self.single_share_cap = single_share_cap
        self.single_consecutive_limit = single_consecutive_limit
        self.adjacent_pairs = adjacent_pairs
        self._pair_streaks: dict[tuple[int, int], int] = {}
        self._single_streaks: np.ndarray | None = None

    def reset(self) -> None:
        self._pair_streaks.clear()
        self._single_streaks = None
        if hasattr(self.base, "reset"):
            self.base.reset()

    def _pairs(self, context: GPMContext) -> frozenset[tuple[int, int]]:
        return (
            self.adjacent_pairs
            if self.adjacent_pairs is not None
            else context.adjacent_pairs
        )

    def constraints(self, context: GPMContext) -> ThermalConstraints:
        """The constraint set this policy enforces on ``context``'s chip."""
        return ThermalConstraints(
            adjacent_pairs=self._pairs(context),
            pair_share_cap=self.pair_share_cap,
            pair_consecutive_limit=self.pair_consecutive_limit,
            single_share_cap=self.single_share_cap,
            single_consecutive_limit=self.single_consecutive_limit,
        )

    def provision(self, context: GPMContext) -> PowerFractionArray:
        proposal = np.asarray(self.base.provision(context), dtype=float).copy()
        # An over-asking base policy is capped at the budget here; the
        # manager skips redistribution for self-constrained policies, so
        # this is the last line of defence.
        total = min(float(proposal.sum()), context.budget)
        if total <= 0:
            return proposal
        pairs = self._pairs(context)
        if self._single_streaks is None:
            self._single_streaks = np.zeros(context.n_islands, dtype=np.int64)
            self._pair_streaks = {pair: 0 for pair in pairs}

        budget = context.budget
        pair_cap = self.pair_share_cap * budget
        single_cap = self.single_share_cap * budget

        # Upper bounds for redistribution; tightened wherever a cap is
        # about to bind so redistribution cannot undo the enforcement.
        upper = context.island_max.copy()

        # Redistribute, then enforce, and repeat: each enforcement pass
        # freezes the offenders' upper bounds, so redistribution (which
        # moves trimmed power to islands with headroom, possibly pushing
        # a streak-limited pair over its cap) converges in at most one
        # pass per constrained pair.  The loop only exits through a pass
        # whose redistribution produced no violation, or by giving up on
        # redistribution entirely (budget left unspent, never violated).
        single_limited = self._single_streaks >= self.single_consecutive_limit
        limited_pairs = [
            p for p in sorted(pairs)
            if self._pair_streaks[p] >= self.pair_consecutive_limit
        ]
        clean = False
        for _ in range(len(limited_pairs) + 3):
            lower = np.minimum(context.island_min, upper)
            proposal = clamp_and_redistribute(proposal, total, lower, upper)
            violated = False
            over_single = single_limited & (proposal > single_cap + 1e-12)
            if over_single.any():
                proposal = np.where(over_single, single_cap, proposal)
                upper = np.where(over_single, single_cap, upper)
                violated = True
            for (a, b) in limited_pairs:
                pair_sum = proposal[a] + proposal[b]
                if pair_sum > pair_cap + 1e-12:
                    scale = pair_cap / pair_sum
                    proposal[a] *= scale
                    proposal[b] *= scale
                    upper[a] = min(upper[a], proposal[a])
                    upper[b] = min(upper[b], proposal[b])
                    violated = True
            if not violated:
                clean = True
                break
        if not clean:
            # Iteration budget exhausted mid-enforcement: keep the (valid)
            # clamped proposal without redistributing the last trim.
            proposal = np.clip(
                proposal, np.minimum(context.island_min, upper), upper
            )

        # Advance streaks based on what was actually granted.
        granted_over = proposal > single_cap + 1e-12
        self._single_streaks = np.where(
            granted_over, self._single_streaks + 1, 0
        )
        for pair in pairs:
            a, b = pair
            if proposal[a] + proposal[b] > pair_cap + 1e-12:
                self._pair_streaks[pair] += 1
            else:
                self._pair_streaks[pair] = 0
        return proposal
