"""Variation-aware provisioning (§IV-B: greedy energy-per-instruction search).

Implements the greedy-search policy the paper adapts from Magklis et al.
via Herbert/Marculescu: each island's provisioning level performs
hill-climbing on *energy per instruction* (power/throughput), assuming
EPI is convex in the provisioning level.  Per GPM invocation and island:

* if the island is in a **hold**, count it down and keep the level;
* otherwise compare the island's EPI over the last window to the one
  before: if it improved, take another step in the same direction; if it
  degraded, the optimum was overshot — reverse direction, step back, and
  hold for a fixed number of intervals before continuing to explore.

Leakier islands (higher process multiplier) see worse EPI at high V/F, so
the search naturally parks them at lower provisioning — "operate the more
leaky islands at lower V/F levels" — trading a little throughput for a
better power/throughput ratio, which is what Figures 19/20 report.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..cmpsim.telemetry import WindowStats
from ..unit_types import PowerFractionArray
from .policy import GPMContext, clamp_and_redistribute

__all__ = ["VariationAwarePolicy"]


class VariationAwarePolicy:
    """Per-island greedy EPI hill-climbing under the chip budget."""

    name = "variation-aware"

    def __init__(
        self,
        step_fraction: float = 0.06,
        hold_intervals: int = 1,
        epi_smoothing: float = 0.5,
    ) -> None:
        """
        Parameters
        ----------
        step_fraction:
            Exploration step as a fraction of the island's equal share.
        hold_intervals:
            GPM intervals to stay put after overshooting the optimum
            (the paper holds for 10 PIC intervals = 1 GPM interval at the
            default cadence).
        epi_smoothing:
            EWMA weight on the newest EPI sample; per-window EPI is noisy
            (workload phases) and an unsmoothed comparison turns the
            hill-climb into a random walk.
        """
        if not 0.0 < step_fraction < 1.0:
            raise ValueError("step_fraction must be in (0, 1)")
        if hold_intervals < 0:
            raise ValueError("hold_intervals must be non-negative")
        if not 0.0 < epi_smoothing <= 1.0:
            raise ValueError("epi_smoothing must be in (0, 1]")
        self.step_fraction = step_fraction
        self.hold_intervals = hold_intervals
        self.epi_smoothing = epi_smoothing
        self._levels: np.ndarray | None = None
        self._directions: np.ndarray | None = None
        self._holds: np.ndarray | None = None
        self._previous_epi: np.ndarray | None = None
        self._epi_state: np.ndarray | None = None

    def reset(self) -> None:
        self._levels = None
        self._directions = None
        self._holds = None
        self._previous_epi = None
        self._epi_state = None

    @staticmethod
    def _epi(window: WindowStats) -> np.ndarray:
        """Energy per instruction over a window, nJ/instruction."""
        instructions = np.maximum(window.island_instructions, 1.0)
        return units.to_nj(window.island_energy_j / instructions)

    def provision(self, context: GPMContext) -> PowerFractionArray:
        n = context.n_islands
        equal = context.budget / n
        if self._levels is None:
            self._levels = np.full(n, equal)
            # Explore downward first: at a binding budget every island
            # starts at its ceiling, so an upward move is a no-op after
            # renormalization and teaches the search nothing.
            self._directions = -np.ones(n)
            self._holds = np.zeros(n, dtype=np.int64)
            self._previous_epi = None

        if len(context.windows) >= 1:
            raw_epi = self._epi(context.windows[-1])
            if self._epi_state is None:
                self._epi_state = raw_epi
            else:
                s = self.epi_smoothing
                self._epi_state = s * raw_epi + (1.0 - s) * self._epi_state
            current_epi = self._epi_state
            if self._previous_epi is not None:
                step = self.step_fraction * equal
                for i in range(n):
                    if self._holds[i] > 0:
                        self._holds[i] -= 1
                        continue
                    if current_epi[i] <= self._previous_epi[i]:
                        # EPI improved (or held): keep exploring this way.
                        self._levels[i] += self._directions[i] * step
                    else:
                        # Overshot the optimum: reverse, back off, hold.
                        self._directions[i] = -self._directions[i]
                        self._levels[i] += self._directions[i] * step
                        self._holds[i] = self.hold_intervals
            self._previous_epi = current_epi

        # The greedy may under-use the budget (that is the point: leaky
        # islands are parked low); only scale *down* if it over-asks.
        levels = np.clip(self._levels, context.island_min, context.island_max)
        total = float(levels.sum())
        if total > context.budget:
            levels = clamp_and_redistribute(
                levels, context.budget, context.island_min, context.island_max
            )
        self._levels = levels.copy()
        return levels
