"""The Global Power Manager: runs a policy and sanitizes its output.

The GPM is the supervisor-level component of Figure 3: every ``T_global``
it builds the measurement context, asks its policy for a split, then
guarantees the invariants the PIC tier relies on —

* set-points are clamped into each island's feasible power range;
* the sum never exceeds the distributable budget (Equation 6's property
  that provisioned power always totals the budget is preserved when the
  policy already sums there, and enforced when it does not).
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..unit_types import PowerFractionArray
from .policy import GPMContext, ProvisioningPolicy, clamp_and_redistribute

__all__ = ["GlobalPowerManager"]


class GlobalPowerManager:
    """First-tier manager: policy + feasibility enforcement."""

    def __init__(
        self, policy: ProvisioningPolicy, demand_headroom: float = 0.04
    ) -> None:
        """
        Parameters
        ----------
        demand_headroom:
            Relative margin above a demand-limited island's measured power
            kept when reclaiming its surplus budget (the paper: "the GPM
            would realize this fact and provision less power budget ...
            allocate the extra budget ... to some other application").
        """
        if demand_headroom < 0:
            raise ValueError("demand_headroom must be non-negative")
        self.policy = policy
        self.demand_headroom = demand_headroom

    def _demand_caps(self, context: GPMContext) -> PowerFractionArray:
        """Per-island effective upper bounds, tightened for islands that
        ran at the top of the ladder yet consumed below their set-point —
        those cannot use more budget, so granting it would only be wasted.
        """
        caps = context.island_max.copy()
        if context.island_frequency is None or not context.windows:
            return caps
        window = context.windows[-1]
        pinned = context.island_frequency >= context.f_max - units.EPS
        unused = window.island_power_frac < window.island_setpoints - 1e-4
        limited = pinned & unused
        caps[limited] = np.minimum(
            caps[limited],
            window.island_power_frac[limited] * (1.0 + self.demand_headroom),
        )
        return np.maximum(caps, context.island_min)

    def provision(self, context: GPMContext) -> PowerFractionArray:
        """Produce the final per-island set-points for the next window."""
        raw = np.asarray(self.policy.provision(context), dtype=float)
        if raw.shape != (context.n_islands,):
            raise ValueError(
                f"policy {self.policy.name!r} returned {raw.shape}, "
                f"expected ({context.n_islands},)"
            )
        if np.any(~np.isfinite(raw)) or np.any(raw < 0):
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid set-points {raw}"
            )
        # Self-constrained policies (thermal-aware) enforce couplings a
        # per-island clamp cannot express; redistribution here would undo
        # them, so their output is only validated against the budget.
        if getattr(self.policy, "self_constrained", False):
            if float(raw.sum()) > context.budget + units.EPS:
                raise ValueError(
                    f"self-constrained policy {self.policy.name!r} exceeded "
                    f"the budget: {raw.sum():.4f} > {context.budget:.4f}"
                )
            return raw
        # Policies may deliberately leave budget unused (variation-aware);
        # preserve their total unless it exceeds the budget.
        target_total = min(float(raw.sum()), context.budget)
        if target_total <= 0.0:
            return context.island_min.copy()
        caps = self._demand_caps(context)
        return clamp_and_redistribute(
            raw, target_total, context.island_min, caps
        )
