"""Declarative parameter sweeps over the simulator.

Most of the paper's figures are sweeps: run a scheme across budgets, or
several schemes at one budget, always against the paired no-management
reference.  This module centralizes that pattern so experiments, the
CLI and user notebooks share one implementation with memoized
references.

Example::

    from repro.analysis import budget_sweep
    from repro.core.cpm import CPMScheme

    result = budget_sweep(
        lambda: CPMScheme(), budgets=[0.75, 0.8, 0.85, 0.9],
    )
    print(result.as_table())
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from ..cmpsim.simulator import PowerScheme, SimulationResult
from ..config import CMPConfig, DEFAULT_CONFIG
from ..core.metrics import performance_degradation
from ..experiments.common import reference_run
from ..reporting import format_table
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_many
from ..workloads.mixes import Mix

__all__ = [
    "SchemeFactory",
    "SweepPoint",
    "SweepResult",
    "budget_sweep",
    "scheme_sweep",
]

#: A factory is required (not an instance) because schemes are stateful:
#: every sweep point needs a fresh one.
SchemeFactory = Callable[[], PowerScheme]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point of a sweep."""

    label: str
    budget_fraction: float
    result: SimulationResult
    degradation: float

    @property
    def mean_power(self) -> float:
        return self.result.mean_chip_power_frac

    @property
    def max_power(self) -> float:
        return float(self.result.telemetry["chip_power_frac"].max())


@dataclass(frozen=True)
class SweepResult:
    """All points of a sweep plus rendering helpers."""

    title: str
    points: List[SweepPoint] = field(default_factory=list)

    def as_table(self) -> str:
        rows = [
            [
                p.label,
                p.budget_fraction,
                p.mean_power,
                p.max_power,
                p.degradation,
            ]
            for p in self.points
        ]
        return format_table(
            ["point", "budget", "mean power", "max power", "degradation"],
            rows,
            title=self.title,
        )

    def degradations(self) -> np.ndarray:
        return np.array([p.degradation for p in self.points])

    def mean_powers(self) -> np.ndarray:
        return np.array([p.mean_power for p in self.points])


def _to_points(
    labels: Sequence[str],
    requests: Sequence[RunRequest],
    results: Sequence[SimulationResult],
    reference: SimulationResult,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            label=label,
            budget_fraction=request.budget_fraction,
            result=result,
            degradation=performance_degradation(result, reference),
        )
        for label, request, result in zip(labels, requests, results)
    ]


def budget_sweep(
    scheme_factory: SchemeFactory,
    budgets: Sequence[float],
    config: CMPConfig = DEFAULT_CONFIG,
    mix: Mix | None = None,
    n_gpm_intervals: int = 25,
    seed: int = DEFAULT_SEED,
    title: str = "budget sweep",
    jobs: int | None = 1,
    cache_dir: str | pathlib.Path | None = None,
) -> SweepResult:
    """One scheme across several budgets, paired against no-management.

    The points are independent runs; ``jobs``/``cache_dir`` forward to
    :func:`repro.runner.run_many` (results are ordered and identical
    across ``jobs`` settings).
    """
    if not budgets:
        raise ValueError("need at least one budget")
    for budget in budgets:
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"budget {budget} out of (0, 1]")
    reference = reference_run(config, mix, seed=seed, n_gpm=n_gpm_intervals)
    requests = [
        RunRequest(
            config=config,
            scheme_factory=scheme_factory,
            mix=mix,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm_intervals,
        )
        for budget in budgets
    ]
    results = run_many(requests, jobs=jobs, cache_dir=cache_dir)
    labels = [f"budget {budget:.2f}" for budget in budgets]
    return SweepResult(
        title=title, points=_to_points(labels, requests, results, reference)
    )


def scheme_sweep(
    scheme_factories: dict[str, SchemeFactory],
    budget: float,
    config: CMPConfig = DEFAULT_CONFIG,
    mix: Mix | None = None,
    n_gpm_intervals: int = 25,
    seed: int = DEFAULT_SEED,
    title: str | None = None,
    jobs: int | None = 1,
    cache_dir: str | pathlib.Path | None = None,
) -> SweepResult:
    """Several schemes at one budget, paired against no-management.

    ``jobs``/``cache_dir`` forward to :func:`repro.runner.run_many`.
    """
    if not scheme_factories:
        raise ValueError("need at least one scheme")
    if not 0.0 < budget <= 1.0:
        raise ValueError(f"budget {budget} out of (0, 1]")
    reference = reference_run(config, mix, seed=seed, n_gpm=n_gpm_intervals)
    requests = [
        RunRequest(
            config=config,
            scheme_factory=factory,
            mix=mix,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm_intervals,
        )
        for factory in scheme_factories.values()
    ]
    results = run_many(requests, jobs=jobs, cache_dir=cache_dir)
    return SweepResult(
        title=title or f"schemes @ budget {budget:.2f}",
        points=_to_points(
            list(scheme_factories), requests, results, reference
        ),
    )
