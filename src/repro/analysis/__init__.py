"""Higher-level analysis utilities built on the simulator.

* :mod:`repro.analysis.sweeps` — declarative parameter sweeps (budgets,
  platform shapes, schemes) with paired no-management references and
  tabular summaries; the machinery behind the CLI's ``sweep`` command.
* :mod:`repro.analysis.breakdown` — offline energy accounting: by
  island, dynamic/static/uncore, and per microarchitectural structure,
  with a verification of the reconstruction against recorded totals.
"""

from .breakdown import EnergyBreakdown, energy_breakdown, verify_reconstruction
from .sweeps import SweepPoint, SweepResult, budget_sweep, scheme_sweep

__all__ = [
    "EnergyBreakdown",
    "SweepPoint",
    "SweepResult",
    "budget_sweep",
    "energy_breakdown",
    "scheme_sweep",
    "verify_reconstruction",
]
