"""Energy accounting: where did the joules go?

Decomposes a run's chip energy three ways:

* **by island** — directly from the telemetry windows;
* **dynamic vs static vs uncore** — re-evaluating the power model over
  the recorded operating points;
* **by microarchitectural structure** — pushing the dynamic component
  through the Wattch-style per-structure breakdown.

The telemetry deliberately records only totals (what sensors would see);
this module reconstructs the decomposition offline from the recorded
(frequency, utilization, temperature) trajectories, and
:func:`verify_reconstruction` quantifies the reconstruction error so the
accounting is auditable rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..arrayops import island_sums
from ..cmpsim.chip import Chip
from ..cmpsim.simulator import SimulationResult
from ..power.dynamic import STRUCTURES
from ..reporting import format_table
from ..workloads.mixes import mix_for_config

__all__ = ["EnergyBreakdown", "energy_breakdown", "verify_reconstruction"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules over the analyzed run, decomposed."""

    total_j: float
    uncore_j: float
    island_j: np.ndarray
    dynamic_j: float
    static_j: float
    structure_j: Dict[str, float]
    #: |reconstructed − recorded| / recorded chip energy.
    reconstruction_error: float

    def as_table(self) -> str:
        rows = [
            ["total", self.total_j, 1.0],
            ["  uncore", self.uncore_j, self.uncore_j / self.total_j],
            ["  cores: dynamic", self.dynamic_j, self.dynamic_j / self.total_j],
            ["  cores: static", self.static_j, self.static_j / self.total_j],
        ]
        for i, joules in enumerate(self.island_j):
            rows.append([f"island {i + 1}", float(joules),
                         float(joules) / self.total_j])
        for name, joules in sorted(
            self.structure_j.items(), key=lambda kv: -kv[1]
        ):
            rows.append([f"  dyn: {name}", joules, joules / self.total_j])
        rows.append(["reconstruction error", self.reconstruction_error, float("nan")])
        return format_table(["component", "joules", "share"], rows,
                            title="Energy breakdown")


def _rebuild_chip(result: SimulationResult) -> Chip:
    mix = mix_for_config(result.config)
    return Chip(result.config, mix.specs())


def energy_breakdown(result: SimulationResult) -> EnergyBreakdown:
    """Decompose ``result``'s chip energy (see module docstring).

    Reconstruction re-evaluates the power model at each recorded interval
    from island frequency, per-core utilization and temperature.  Core
    activity is recovered from utilization (``U = A·f/f_max``), which is
    exact by construction of the telemetry.
    """
    telemetry = result.telemetry
    chip = _rebuild_chip(result)
    dt = result.config.control.pic_interval_s

    freq_islands = telemetry["island_frequency_ghz"]      # (T, I)
    core_util = telemetry["core_utilization"]             # (T, C)
    core_temp = telemetry["core_temperature_c"]           # (T, C)
    island_of_core = chip.island_of_core
    f_max = chip.dvfs.f_max

    freq_cores = freq_islands[:, island_of_core]          # (T, C)
    volt_cores = np.asarray(chip.dvfs.voltage_at(freq_cores))
    activity = np.clip(core_util * f_max / freq_cores, 0.0, 1.0)

    dyn_model = chip.power_model.dynamic
    gating = dyn_model.gating
    shares = np.array([s.capacitance_share for s in STRUCTURES])
    gateable = np.array([s.gateable for s in STRUCTURES])

    base = dyn_model.effective_capacitance * volt_cores**2 * freq_cores  # (T, C)
    gated_activity = gating.effective_activity(activity)                 # (T, C)

    structure_j: Dict[str, float] = {}
    dynamic_w = np.zeros_like(base)
    for spec, share, is_gateable in zip(STRUCTURES, shares, gateable):
        act = gated_activity if is_gateable else 1.0
        watts = base * share * act
        structure_j[spec.name] = float(watts.sum()) * dt
        dynamic_w += watts

    leakage = chip.power_model.leakage
    static_w = np.asarray(
        leakage.power(
            volt_cores, core_temp, chip.leakage_multipliers[None, :]
        )
    )

    core_w = dynamic_w + static_w
    island_j = island_sums(
        island_of_core, core_w.sum(axis=0) * dt, result.config.n_islands
    )

    n_ticks = freq_islands.shape[0]
    uncore_j = chip.uncore_power_w * dt * n_ticks
    total_reconstructed = float(core_w.sum()) * dt + uncore_j

    recorded_total = float(
        (telemetry["chip_power_frac"] * chip.max_power_w).sum() * dt
    )
    error = abs(total_reconstructed - recorded_total) / recorded_total

    return EnergyBreakdown(
        total_j=total_reconstructed,
        uncore_j=uncore_j,
        island_j=island_j,
        dynamic_j=float(dynamic_w.sum()) * dt,
        static_j=float(static_w.sum()) * dt,
        structure_j=structure_j,
        reconstruction_error=error,
    )


def verify_reconstruction(result: SimulationResult, tolerance: float = 0.02) -> bool:
    """True when the offline decomposition matches the recorded energy."""
    return energy_breakdown(result).reconstruction_error <= tolerance
