"""Spatially-correlated intra-die variation maps.

Beyond the paper's fixed island multipliers, this module can sample
realistic variation maps: intra-die leakage variation is spatially
correlated (neighbouring cores share process conditions), which is the
standard multivariate-lognormal model with a distance-decaying
correlation over the floorplan grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..thermal.floorplan import Floorplan

__all__ = ["VariationMap", "sample_variation_map"]


@dataclass(frozen=True)
class VariationMap:
    """A sampled per-core leakage-multiplier field."""

    multipliers: np.ndarray
    sigma: float
    correlation_length: float

    def island_means(self, island_of_core: np.ndarray) -> np.ndarray:
        """Mean multiplier per island (what island-level policies see)."""
        ids = np.asarray(island_of_core)
        if ids.shape != self.multipliers.shape:
            raise ValueError("island map must have one entry per core")
        n_islands = int(ids.max()) + 1
        return np.array(
            [self.multipliers[ids == i].mean() for i in range(n_islands)]
        )


def sample_variation_map(
    floorplan: Floorplan,
    rng: np.random.Generator,
    sigma: float = 0.25,
    correlation_length: float = 2.0,
) -> VariationMap:
    """Sample a lognormal leakage field over the floorplan.

    ``sigma`` is the log-domain standard deviation (0.25 gives roughly
    ±50% two-sigma spread, the magnitude 90/65 nm studies report);
    ``correlation_length`` is the exponential-decay distance in grid
    units.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if correlation_length <= 0:
        raise ValueError("correlation_length must be positive")
    n = floorplan.n_cores
    positions = np.array([floorplan.position(c) for c in range(n)], dtype=float)
    deltas = positions[:, None, :] - positions[None, :, :]
    distances = np.linalg.norm(deltas, axis=-1)
    covariance = sigma**2 * np.exp(-distances / correlation_length)
    # Jitter the diagonal for numerical positive-definiteness.
    covariance += np.eye(n) * 1e-10
    log_field = rng.multivariate_normal(np.zeros(n), covariance)
    # Normalize so the mean multiplier is ~1 (variation, not a shift).
    multipliers = np.exp(log_field - log_field.mean())
    return VariationMap(
        multipliers=multipliers, sigma=sigma, correlation_length=correlation_length
    )
