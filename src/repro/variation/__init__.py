"""Process-variation substrate.

Models intra-die variation as per-core leakage multipliers, either set
explicitly per island (the paper's variation study assumes islands 1–3
leak 1.2x / 1.5x / 2x as much as island 4) or sampled from a spatially
correlated random field for what-if studies.
"""

from .leakage_variation import (
    PAPER_ISLAND_MULTIPLIERS,
    island_multipliers_to_cores,
    uniform_multipliers,
)
from .process import VariationMap, sample_variation_map

__all__ = [
    "PAPER_ISLAND_MULTIPLIERS",
    "VariationMap",
    "island_multipliers_to_cores",
    "sample_variation_map",
    "uniform_multipliers",
]
