"""Per-island leakage multipliers (the paper's §IV-B assumption).

The variation-aware study assumes "the leakage current in Island 1,
Island 2 and Island 3 is 1.2x, 1.5x and 2x, respectively, of Island 4"
— :data:`PAPER_ISLAND_MULTIPLIERS` encodes exactly that, and the helpers
expand island-level multipliers to the per-core vectors the leakage model
consumes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "PAPER_ISLAND_MULTIPLIERS",
    "island_multipliers_to_cores",
    "uniform_multipliers",
]

#: Leakage of islands 1..4 relative to island 4 (the least leaky).
PAPER_ISLAND_MULTIPLIERS: Tuple[float, float, float, float] = (1.2, 1.5, 2.0, 1.0)


def uniform_multipliers(n_cores: int) -> np.ndarray:
    """No-variation baseline: every core at the nominal corner."""
    if n_cores < 1:
        raise ValueError("need at least one core")
    return np.ones(n_cores, dtype=float)


def island_multipliers_to_cores(
    island_multipliers: Sequence[float],
    cores_per_island: int,
) -> np.ndarray:
    """Expand island-level multipliers to one entry per core."""
    if cores_per_island < 1:
        raise ValueError("cores_per_island must be >= 1")
    multipliers = np.asarray(island_multipliers, dtype=float)
    if multipliers.ndim != 1 or multipliers.size == 0:
        raise ValueError("island_multipliers must be a non-empty 1-D sequence")
    if np.any(multipliers <= 0):
        raise ValueError("multipliers must be positive")
    return np.repeat(multipliers, cores_per_island)
