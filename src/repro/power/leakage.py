"""Static (leakage) power model (the HotLeakage analogue).

Subthreshold leakage current grows roughly exponentially with temperature
and strongly with supply voltage; HotLeakage models this at the device
level.  At the granularity this reproduction needs — per-core static power
feeding the thermal loop and the variation-aware policy — the standard
compact abstraction is::

    P_leak(V, T) = P_nom * m_process * (V / V_nom)^gamma
                   * exp(beta * (T - T_nom))

where ``P_nom`` is the leakage at the nominal corner, ``m_process`` a
per-core/per-island process-variation multiplier (the paper's
variation-aware study uses 1.2x / 1.5x / 2x / 1x across its four
islands), ``beta`` captures the exponential thermal dependence (leakage
roughly doubles every ~25 °C in the 90 nm era), and ``gamma`` the
supply-voltage dependence.  ``gamma`` is well above 2 in HotLeakage-era
silicon: DIBL makes subthreshold current itself rise steeply with V on
top of the ``V * I`` product.  This super-quadratic dependence is what
makes energy-per-instruction *convex* in the V/F level — the premise of
the variation-aware policy's greedy search (leaky islands find their
optimum at lower V/F).
"""

from __future__ import annotations

import numpy as np

from ..unit_types import Celsius, CelsiusLike, Volts, VoltsLike, Watts, WattsLike

__all__ = [
    "DEFAULT_THERMAL_BETA",
    "DEFAULT_VOLTAGE_EXPONENT",
    "LeakagePowerModel",
]

#: Leakage doubles every ~25 °C: exp(beta * 25) = 2.
DEFAULT_THERMAL_BETA = float(np.log(2.0) / 25.0)

#: Effective supply-voltage exponent (DIBL included).
DEFAULT_VOLTAGE_EXPONENT = 3.5


class LeakagePowerModel:
    """Per-core static power as a function of voltage and temperature."""

    def __init__(
        self,
        nominal_leakage_w: Watts,
        nominal_voltage: Volts = 1.5,
        nominal_temperature_c: Celsius = 60.0,
        thermal_beta: float = DEFAULT_THERMAL_BETA,
        voltage_exponent: float = DEFAULT_VOLTAGE_EXPONENT,
    ) -> None:
        if nominal_leakage_w < 0:
            raise ValueError("nominal_leakage_w must be non-negative")
        if nominal_voltage <= 0:
            raise ValueError("nominal_voltage must be positive")
        if thermal_beta < 0:
            raise ValueError("thermal_beta must be non-negative")
        if voltage_exponent < 1:
            raise ValueError("voltage_exponent must be >= 1")
        self.nominal_leakage_w = nominal_leakage_w
        self.nominal_voltage = nominal_voltage
        self.nominal_temperature_c = nominal_temperature_c
        self.thermal_beta = thermal_beta
        self.voltage_exponent = voltage_exponent

    def power(
        self,
        voltage: VoltsLike,
        temperature_c: CelsiusLike = 60.0,
        process_multiplier: float | np.ndarray = 1.0,
        check: bool = True,
    ) -> WattsLike:
        """Static power in watts.  Accepts scalars or aligned arrays.

        ``check=False`` skips input validation for callers that already
        guarantee positive inputs (the simulator's inner loop).
        """
        v = np.asarray(voltage, dtype=float)
        m = np.asarray(process_multiplier, dtype=float)
        if check:
            if np.any(v <= 0):
                raise ValueError("voltage must be positive")
            if np.any(m <= 0):
                raise ValueError("process multiplier must be positive")
        t = np.asarray(temperature_c, dtype=float)
        thermal = np.exp(self.thermal_beta * (t - self.nominal_temperature_c))
        result = (
            self.nominal_leakage_w
            * m
            * (v / self.nominal_voltage) ** self.voltage_exponent
            * thermal
        )
        if result.ndim == 0:
            return float(result)
        return result
