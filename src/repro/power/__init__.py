"""Power modelling substrate (Wattch / HotLeakage analogues).

* :mod:`repro.power.clock_gating` — the linear ("cc3"-style) clock-gating
  scheme Wattch provides: idle structures draw a fixed fraction of their
  active power.
* :mod:`repro.power.dynamic` — per-structure dynamic power,
  ``C_eff · V² · f · activity`` summed over microarchitectural units.
* :mod:`repro.power.leakage` — static power with voltage and exponential
  temperature dependence plus per-island process multipliers.
* :mod:`repro.power.model` — composite core/island/chip power.
* :mod:`repro.power.transducer` — the utilization→power linear regression
  the PIC uses as its sensor/transducer (paper Figure 6).
"""

from .clock_gating import LinearClockGating
from .dynamic import STRUCTURES, DynamicPowerModel, StructureSpec
from .leakage import LeakagePowerModel
from .model import CorePowerModel, PowerBreakdown
from .transducer import LinearTransducer, fit_transducer

__all__ = [
    "STRUCTURES",
    "CorePowerModel",
    "DynamicPowerModel",
    "LeakagePowerModel",
    "LinearClockGating",
    "LinearTransducer",
    "PowerBreakdown",
    "StructureSpec",
    "fit_transducer",
]
