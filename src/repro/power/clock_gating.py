"""Linear clock gating (Wattch "cc3" style).

Wattch's most realistic conditional-clocking mode scales a structure's
dynamic power linearly with the number of ports/slots in use, but keeps a
fixed *floor* for units that are idle (the clock network and latches keep
toggling even when a structure does no useful work).  The paper configures
Wattch exactly this way: "the linear clock-gating scheme with 10% power
utilization for unused components".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearClockGating"]


@dataclass(frozen=True)
class LinearClockGating:
    """Maps an activity fraction to an effective switching fraction.

    ``effective = floor + (1 - floor) * activity`` — fully active means the
    structure switches at its design activity, fully idle still burns
    ``floor`` of it.
    """

    #: Power fraction drawn by a completely idle (gated) structure.
    idle_floor: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_floor < 1.0:
            raise ValueError(f"idle_floor must be in [0, 1), got {self.idle_floor}")

    def effective_activity(self, activity: float | np.ndarray) -> float | np.ndarray:
        """Effective switching fraction for utilization ``activity`` ∈ [0,1]."""
        act = np.clip(activity, 0.0, 1.0)
        result = self.idle_floor + (1.0 - self.idle_floor) * act
        if np.isscalar(activity):
            return float(result)
        return result
