"""Composite core power model: dynamic + static.

Ties the Wattch-analogue dynamic model and the HotLeakage-analogue static
model to a :class:`repro.config.CoreConfig`, and provides the chip-level
normalization constant (maximum chip power) that every budget and power
series in the library is expressed against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..config import CoreConfig
from ..unit_types import (
    Celsius,
    CelsiusLike,
    GigaHz,
    GigaHzLike,
    Volts,
    VoltsLike,
    Watts,
    WattsLike,
)
from .clock_gating import LinearClockGating
from .dynamic import DynamicPowerModel
from .leakage import LeakagePowerModel

__all__ = ["CorePowerModel", "PowerBreakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic/static split of one power evaluation, in watts."""

    dynamic_w: Watts
    static_w: Watts

    @property
    def total_w(self) -> Watts:
        return self.dynamic_w + self.static_w


class CorePowerModel:
    """Power of one core at an operating point under a given workload state.

    The two workload inputs are the signals the interval simulator exposes:

    * ``busy`` — fraction of cycles not stalled on off-chip memory (stall
      cycles are clock-gated);
    * ``alpha`` — the phase's architectural activity during busy cycles.
    """

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        gating: LinearClockGating | None = None,
        nominal_voltage: Volts = 1.5,
    ) -> None:
        cfg = core_config or CoreConfig()
        self.config = cfg
        self.dynamic = DynamicPowerModel(
            cfg.effective_capacitance,
            gating=gating,
            stall_activity=cfg.stall_activity,
        )
        self.leakage = LeakagePowerModel(
            cfg.nominal_leakage_w, nominal_voltage=nominal_voltage
        )

    def power(
        self,
        voltage: VoltsLike,
        frequency_ghz: GigaHzLike,
        busy: float | np.ndarray,
        alpha: float | np.ndarray = 1.0,
        temperature_c: CelsiusLike = 60.0,
        leakage_multiplier: float | np.ndarray = 1.0,
        check: bool = True,
    ) -> WattsLike:
        """Total core power in watts; scalar or vectorized over cores.

        ``check=False`` forwards to both sub-models, skipping their input
        validation (for the simulator's inner loop).
        """
        dyn = self.dynamic.power(voltage, frequency_ghz, busy, alpha, check=check)
        stat = self.leakage.power(
            voltage, temperature_c, leakage_multiplier, check=check
        )
        return dyn + stat

    def breakdown(
        self,
        voltage: Volts,
        frequency_ghz: GigaHz,
        busy: float,
        alpha: float = 1.0,
        temperature_c: Celsius = 60.0,
        leakage_multiplier: float = 1.0,
    ) -> PowerBreakdown:
        """Dynamic/static split at one scalar operating point."""
        return PowerBreakdown(
            dynamic_w=float(self.dynamic.power(voltage, frequency_ghz, busy, alpha)),
            static_w=float(
                self.leakage.power(voltage, temperature_c, leakage_multiplier)
            ),
        )

    def structure_breakdown(
        self, voltage: Volts, frequency_ghz: GigaHz, busy: float, alpha: float = 1.0
    ) -> Mapping[str, float]:
        """Per-structure dynamic power (delegates to the Wattch analogue)."""
        return self.dynamic.breakdown(voltage, frequency_ghz, busy, alpha)

    def max_power(self, voltage: Volts, frequency_ghz: GigaHz) -> Watts:
        """Power of a fully-active core at (V, f): the per-core peak."""
        return float(self.power(voltage, frequency_ghz, busy=1.0, alpha=1.0))
