"""Per-structure dynamic power model (the Wattch analogue).

Dynamic power of CMOS is ``P = alpha * C * V^2 * f``.  Wattch computes the
capacitance ``C`` per microarchitectural structure from circuit-level
models and drives ``alpha`` from per-cycle access counts; here the
structures' *relative* capacitances are fixed weights (calibrated against
published Wattch breakdowns for a 4-wide out-of-order core) and the access
activity of each structure is derived from the two signals the interval
simulator produces: the fraction of cycles the core is doing useful work
(``busy``) and the architectural activity factor of the current workload
phase (``alpha``).

Structures differ in how they respond to stalls:

* The clock tree toggles regardless of work — it is ungateable.
* Front-end/back-end structures follow the busy fraction through the
  linear clock-gating floor.
* Cache arrays see activity proportional to the access rate, which also
  follows the busy fraction.

The decomposition matters for two things: the Table-style power
breakdowns in examples/telemetry, and making the utilization→power
relation (Figure 6) come out of structure-level accounting rather than
being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np

from .. import units
from ..unit_types import GigaHz, GigaHzLike, Volts, VoltsLike, WattsLike
from .clock_gating import LinearClockGating

__all__ = ["DynamicPowerModel", "STRUCTURES", "StructureSpec"]


@dataclass(frozen=True)
class StructureSpec:
    """One microarchitectural unit in the dynamic power breakdown."""

    name: str
    #: Fraction of the core's total effective capacitance in this unit.
    capacitance_share: float
    #: Whether clock gating can idle this unit at the floor.
    gateable: bool


#: Relative capacitance breakdown of one core.  The shares follow the
#: published Wattch/Alpha-21264-class breakdowns: clock distribution is the
#: single largest consumer, caches and the window/regfile dominate the rest.
#: Every structure is gateable: the paper configures Wattch's *linear*
#: clock-gating mode with a 10% floor for unused components, which gates
#: the clock network along with everything else.
STRUCTURES: Tuple[StructureSpec, ...] = (
    StructureSpec("clock_tree", 0.22, gateable=True),
    StructureSpec("fetch_decode", 0.10, gateable=True),
    StructureSpec("rename_window", 0.12, gateable=True),
    StructureSpec("register_file", 0.08, gateable=True),
    StructureSpec("int_alu", 0.10, gateable=True),
    StructureSpec("fp_alu", 0.08, gateable=True),
    StructureSpec("load_store", 0.07, gateable=True),
    StructureSpec("l1_icache", 0.08, gateable=True),
    StructureSpec("l1_dcache", 0.10, gateable=True),
    StructureSpec("result_bus", 0.05, gateable=True),
)

_SHARE_SUM = sum(s.capacitance_share for s in STRUCTURES)
if not units.approx_eq(_SHARE_SUM, 1.0):  # pragma: no cover - module-load invariant
    raise AssertionError(f"structure shares must sum to 1, got {_SHARE_SUM}")


class DynamicPowerModel:
    """Computes core dynamic power from (V, f, busy fraction, phase alpha).

    Parameters
    ----------
    effective_capacitance:
        Whole-core effective switching capacitance in W / (V² · GHz) — the
        power a fully-active core draws per volt² per GHz.
    gating:
        The clock-gating scheme applied to gateable structures.
    """

    def __init__(
        self,
        effective_capacitance: float,
        gating: LinearClockGating | None = None,
        stall_activity: float = 0.7,
    ) -> None:
        if effective_capacitance <= 0:
            raise ValueError("effective_capacitance must be positive")
        if not 0.0 <= stall_activity <= 1.0:
            raise ValueError("stall_activity must be in [0, 1]")
        self.effective_capacitance = effective_capacitance
        self.gating = gating or LinearClockGating()
        self.stall_activity = stall_activity
        self._shares = np.array([s.capacitance_share for s in STRUCTURES])
        self._gateable = np.array([s.gateable for s in STRUCTURES])
        self._gate_share = float(self._shares[self._gateable].sum())
        self._fixed_share = 1.0 - self._gate_share

    def core_activity(
        self, busy: float | np.ndarray, alpha: float | np.ndarray
    ) -> float | np.ndarray:
        """Fraction of the core's switching capacity exercised per cycle.

        ``busy`` is the fraction of cycles not stalled on off-chip memory;
        ``alpha`` is the workload's architectural activity during those
        cycles (issue-slot occupancy).  Stalled cycles still toggle the
        machine at ``stall_activity`` (full window, speculative
        wakeup/select, replay) — an out-of-order core waiting on DRAM is
        far from quiet.
        """
        b = np.clip(np.asarray(busy), 0.0, 1.0)
        a = np.clip(np.asarray(alpha), 0.0, 1.0)
        activity = a * b + self.stall_activity * (1.0 - b)
        if np.isscalar(busy) and np.isscalar(alpha):
            return float(activity)
        return activity

    def activity_factor(
        self, busy: float | np.ndarray, alpha: float | np.ndarray
    ) -> float | np.ndarray:
        """Whole-core effective switching fraction in [floor, 1].

        Ungateable structures contribute their full share; the rest follow
        :meth:`core_activity` through the linear clock-gating floor.
        """
        activity = self.core_activity(busy, alpha)
        effective = self._fixed_share + self._gate_share * (
            self.gating.effective_activity(activity)
        )
        if np.isscalar(busy) and np.isscalar(alpha):
            return float(effective)
        return effective

    def power(
        self,
        voltage: VoltsLike,
        frequency_ghz: GigaHzLike,
        busy: float | np.ndarray,
        alpha: float | np.ndarray = 1.0,
        check: bool = True,
    ) -> WattsLike:
        """Dynamic power in watts.  Accepts scalars or aligned arrays.

        ``check=False`` skips input validation for callers that already
        guarantee positive operating points (the simulator's inner loop).
        """
        v = np.asarray(voltage, dtype=float)
        f = np.asarray(frequency_ghz, dtype=float)
        if check and (np.any(v <= 0) or np.any(f <= 0)):
            raise ValueError("voltage and frequency must be positive")
        activity = self.activity_factor(busy, alpha)
        result = self.effective_capacitance * v**2 * f * activity
        if result.ndim == 0:
            return float(result)
        return result

    def breakdown(
        self,
        voltage: Volts,
        frequency_ghz: GigaHz,
        busy: float,
        alpha: float = 1.0,
    ) -> Mapping[str, float]:
        """Per-structure dynamic power in watts (scalar operating point)."""
        if voltage <= 0 or frequency_ghz <= 0:
            raise ValueError("voltage and frequency must be positive")
        activity = float(self.core_activity(busy, alpha))
        base = self.effective_capacitance * voltage**2 * frequency_ghz
        out: dict[str, float] = {}
        for spec in STRUCTURES:
            if spec.gateable:
                act = self.gating.effective_activity(activity)
            else:
                act = 1.0
            out[spec.name] = base * spec.capacitance_share * act
        return out
