"""Utilization→power transducer (paper Figure 6 and the PIC sensor path).

Island power is not directly measurable on a real CMP, so the PIC observes
*processor utilization* (a performance-counter quantity) and converts it to
a power estimate with a fitted linear model ``P = k0 * U + k1``.  The paper
fits this line per benchmark and reports an average R² of 0.96.

The fit here is ordinary least squares on (utilization, power) samples
collected from calibration runs; :class:`LinearTransducer` is the
resulting callable the control loop plugs in as its transducer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..unit_types import PowerFraction, PowerFractionLike

__all__ = ["LinearTransducer", "fit_transducer"]


@dataclass(frozen=True)
class LinearTransducer:
    """The fitted sensor/transducer ``P = k0 * U + k1``.

    ``k0`` and ``k1`` carry whatever power unit the fit was performed in —
    the simulator fits in *fraction of max chip power*, matching how
    set-points are expressed.
    """

    k0: float
    k1: float
    r_squared: float = float("nan")
    n_samples: int = 0

    def __call__(self, utilization: float | np.ndarray) -> PowerFractionLike:
        """Convert a utilization measurement to estimated power."""
        if isinstance(utilization, (float, int)):
            # Hot path: one scalar conversion per island per PIC interval.
            return self.k0 * float(utilization) + self.k1
        result = self.k0 * np.asarray(utilization, dtype=float) + self.k1
        if result.ndim == 0:
            return float(result)
        return result

    def invert(self, power: PowerFraction) -> float:
        """Utilization that maps to ``power`` (used by tests/analyses)."""
        if self.k0 == 0.0:
            raise ZeroDivisionError("degenerate transducer with k0 == 0")
        return (power - self.k1) / self.k0


def fit_transducer(
    utilization: np.ndarray | list[float],
    power: np.ndarray | list[float],
) -> LinearTransducer:
    """Least-squares fit of ``P = k0 * U + k1`` over calibration samples."""
    u = np.asarray(utilization, dtype=float)
    p = np.asarray(power, dtype=float)
    if u.shape != p.shape or u.ndim != 1:
        raise ValueError("utilization and power must be matching 1-D arrays")
    if u.size < 2:
        raise ValueError("need at least two calibration samples")
    if np.ptp(u) == 0.0:
        raise ValueError("utilization samples are constant; cannot fit a slope")
    design = np.column_stack([u, np.ones_like(u)])
    (k0, k1), residual, _rank, _sv = np.linalg.lstsq(design, p, rcond=None)
    predictions = k0 * u + k1
    total = float(((p - p.mean()) ** 2).sum())
    if total == 0.0:
        r_squared = 1.0 if np.allclose(predictions, p) else 0.0
    else:
        r_squared = 1.0 - float(((p - predictions) ** 2).sum()) / total
    return LinearTransducer(
        k0=float(k0), k1=float(k1), r_squared=r_squared, n_samples=int(u.size)
    )
