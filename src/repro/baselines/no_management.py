"""No power management: all cores at maximum frequency, always.

The paper's performance reference: "the case where no power management is
done and all CPUs are allowed to operate at the maximum possible
frequency.  This scheme achieves better performance but may overshoot the
power [budget] by a large degree."  Every performance-degradation figure
is measured against this scheme's throughput.
"""

from __future__ import annotations

from ..cmpsim.simulator import Simulation

__all__ = ["NoManagementScheme"]


class NoManagementScheme:
    """Pin every island at the top of the DVFS ladder."""

    name = "no-management"

    def bind(self, sim: Simulation) -> None:
        for island in range(sim.config.n_islands):
            sim.chip.set_island_frequency(island, sim.chip.dvfs.f_max)
        # For telemetry, "set-point" is the physical per-island maximum.
        _, island_max = sim.chip.island_power_bounds()
        sim.setpoints = island_max

    def on_gpm(self, sim: Simulation) -> None:
        """No provisioning: nothing to do."""

    def on_pic(self, sim: Simulation) -> None:
        """No capping: nothing to do, and sensing is pass-through."""
        if sim.last_result is not None:
            sim.sensed_power = sim.last_result.island_power_frac.copy()
