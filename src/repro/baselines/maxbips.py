"""MaxBIPS (Isci et al., "An Analysis of Efficient Multi-Core Global
Power Management Policies", MICRO 2006) adapted to islands.

The paper describes its comparison point tersely: "given a power budget,
the scheme selects DVFS co-ordinates from a static prediction table."
Two prediction variants are provided:

* ``prediction="static"`` (default — the paper's description).  The
  table is built once at bind time and never consults runtime
  measurements: per-island throughput at knob ``j`` is assumed
  proportional to ``cores * f_j`` (Isci's BIPS-linear-in-frequency
  assumption, applied uniformly because a static table knows nothing
  about which island runs what), and per-island power at knob ``j`` is
  the knob's *worst case* — a fully-active island — because an open-loop
  scheme with no second control tier can only guarantee the budget by
  provisioning against power rising toward the operating point's peak
  within the window.  The worst-case power entries are the structural
  reason "MaxBIPS's power consumption is always lower than the budget"
  (Figure 11) and the main source of its extra performance degradation
  (Figures 13/15).
* ``prediction="measured"`` (ablation).  Isci's runtime variant: scale
  the last interval's measured island BIPS linearly with frequency and
  measured power with ``V^2 f``, blended toward the worst case by
  ``headroom_guard``.  This version is better informed than anything the
  paper's text supports, and the ablation benches quantify how much of
  MaxBIPS's published handicap disappears once it is allowed runtime
  feedback.

Selection maximizes total predicted BIPS subject to total predicted
power staying under the budget (exhaustive for a handful of islands,
grouped-knapsack DP beyond that) and applies the chosen knobs open-loop;
knobs are restricted to the discrete table.
"""

from __future__ import annotations

import numpy as np

from ..cmpsim.simulator import Simulation

__all__ = ["MaxBIPSScheme"]


class MaxBIPSScheme:
    """Open-loop, static-prediction-table global power manager."""

    name = "maxbips"

    def __init__(
        self,
        dp_bins: int = 400,
        exhaustive_limit: int = 5,
        prediction: str = "static",
        headroom_guard: float = 0.5,
    ) -> None:
        """
        Parameters
        ----------
        dp_bins:
            Power-axis resolution of the knapsack DP used beyond
            ``exhaustive_limit`` islands.
        exhaustive_limit:
            Maximum island count for exhaustive combination search
            (``knobs ** islands`` evaluations).
        prediction:
            ``"static"`` (the paper's description) or ``"measured"``
            (runtime-informed ablation) — see the module docstring.
        headroom_guard:
            Only for ``prediction="measured"``: how far predicted power
            is pushed from the measured-scaled estimate toward the knob's
            peak island power (0 = trust the measurement, 1 = full
            worst-case provisioning).
        """
        if dp_bins < 10:
            raise ValueError("dp_bins too coarse to be meaningful")
        if exhaustive_limit < 1:
            raise ValueError("exhaustive_limit must be >= 1")
        if prediction not in ("static", "measured"):
            raise ValueError(f"unknown prediction variant {prediction!r}")
        if not 0.0 <= headroom_guard <= 1.0:
            raise ValueError("headroom_guard must be in [0, 1]")
        self.dp_bins = dp_bins
        self.exhaustive_limit = exhaustive_limit
        self.prediction = prediction
        self.headroom_guard = headroom_guard
        self._peak_table: np.ndarray | None = None
        self._static_bips: np.ndarray | None = None

    # ------------------------------------------------------------------
    def bind(self, sim: Simulation) -> None:
        # MaxBIPS uses quantized knobs regardless of the platform's
        # actuation mode; it starts from the top operating point.
        for island in range(sim.config.n_islands):
            sim.chip.set_island_frequency(island, sim.chip.dvfs.f_max)
        sim.setpoints = np.zeros(sim.config.n_islands)
        self._peak_table = self._build_peak_table(sim)
        # Static BIPS column: uniform per-core throughput, linear in f.
        cores = np.full(sim.config.n_islands, sim.config.cores_per_island)
        self._static_bips = (
            cores[:, None] * sim.chip.dvfs.frequencies[None, :]
        )

    def _build_peak_table(self, sim: Simulation) -> np.ndarray:
        """Peak island power (fraction of max chip power) per knob.

        Fully-active cores at each operating point — the worst case an
        open-loop selection must be prepared for.
        """
        chip = sim.chip
        table = chip.dvfs
        n_islands = sim.config.n_islands
        peaks = np.empty((n_islands, table.n_points))
        leakage = chip.power_model.leakage
        for j, (f, v) in enumerate(table.operating_points()):
            per_core = chip.power_model.power(
                v,
                f,
                busy=1.0,
                alpha=1.0,
                temperature_c=leakage.nominal_temperature_c,
                leakage_multiplier=chip.leakage_multipliers,
            )
            per_core = np.asarray(per_core, dtype=float)
            for i in range(n_islands):
                peaks[i, j] = per_core[chip.island_of_core == i].sum()
        return peaks / chip.max_power_w

    def on_pic(self, sim: Simulation) -> None:
        """Open loop: no fine-grained control tier."""
        if sim.last_result is not None:
            sim.sensed_power = sim.last_result.island_power_frac.copy()

    # ------------------------------------------------------------------
    def _prediction_table(
        self, sim: Simulation
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """(bips_pred, power_pred) of shape (n_islands, n_knobs), or None
        when predictions are unavailable (measured mode, no data yet)."""
        assert self._peak_table is not None, "bind() must run first"
        if self.prediction == "static":
            assert self._static_bips is not None
            return self._static_bips, self._peak_table

        result = sim.last_result
        if result is None:
            return None
        table = sim.chip.dvfs
        knob_freqs = table.frequencies
        knob_volts = table.voltages

        # Window-averaged measurements when available, last interval else.
        if sim.windows:
            bips_measured = sim.windows[-1].island_bips
            power_measured = sim.windows[-1].island_power_frac
        else:
            bips_measured = result.island_bips
            power_measured = result.island_power_frac

        f_cur = result.island_frequency_ghz
        v_cur = np.asarray(table.voltage_at(f_cur))

        # Scaling ratios: BIPS linear in f, power like V^2 f.
        freq_ratio = knob_freqs[None, :] / f_cur[:, None]
        energy_ratio = (knob_volts[None, :] ** 2 * knob_freqs[None, :]) / (
            v_cur[:, None] ** 2 * f_cur[:, None]
        )
        bips_pred = bips_measured[:, None] * freq_ratio
        scaled = power_measured[:, None] * energy_ratio
        w = self.headroom_guard
        power_pred = (1.0 - w) * scaled + w * np.maximum(
            scaled, self._peak_table
        )
        return bips_pred, power_pred

    # ------------------------------------------------------------------
    def _select_exhaustive(
        self, bips: np.ndarray, power: np.ndarray, budget: float
    ) -> np.ndarray:
        """Best knob per island by full enumeration (vectorized)."""
        n_islands, n_knobs = bips.shape
        grids = np.meshgrid(*([np.arange(n_knobs)] * n_islands), indexing="ij")
        combos = np.stack([g.ravel() for g in grids], axis=1)
        total_power = power[np.arange(n_islands), combos].sum(axis=1)
        total_bips = bips[np.arange(n_islands), combos].sum(axis=1)
        feasible = total_power <= budget + 1e-12
        if not feasible.any():
            return np.zeros(n_islands, dtype=int)  # all-min fallback
        total_bips = np.where(feasible, total_bips, -np.inf)
        return combos[int(np.argmax(total_bips))]

    def _select_dp(
        self, bips: np.ndarray, power: np.ndarray, budget: float
    ) -> np.ndarray:
        """Grouped knapsack over power bins (conservative rounding up)."""
        n_islands, n_knobs = bips.shape
        bins = self.dp_bins
        bin_width = budget / bins
        cost = np.minimum(
            np.ceil(power / max(bin_width, 1e-12)).astype(int), bins + 1
        )
        NEG = -np.inf
        dp = np.full(bins + 1, NEG)
        dp[0] = 0.0
        choice = np.full((n_islands, bins + 1), -1, dtype=int)
        parent = np.full((n_islands, bins + 1), -1, dtype=int)
        for i in range(n_islands):
            new_dp = np.full(bins + 1, NEG)
            for j in range(n_knobs):
                c = cost[i, j]
                if c > bins:
                    continue
                shifted = np.full(bins + 1, NEG)
                shifted[c:] = dp[: bins + 1 - c] + bips[i, j]
                better = shifted > new_dp
                if better.any():
                    new_dp = np.where(better, shifted, new_dp)
                    choice[i, better] = j
                    idx = np.flatnonzero(better)
                    parent[i, idx] = idx - c
            dp = new_dp
        if not np.isfinite(dp).any():
            return np.zeros(n_islands, dtype=int)
        b = int(np.argmax(dp))
        knobs = np.zeros(n_islands, dtype=int)
        for i in range(n_islands - 1, -1, -1):
            knobs[i] = choice[i, b]
            b = parent[i, b]
            if knobs[i] < 0:  # pragma: no cover - defensive
                return np.zeros(n_islands, dtype=int)
        return knobs

    # ------------------------------------------------------------------
    def on_gpm(self, sim: Simulation) -> None:
        tables = self._prediction_table(sim)
        if tables is None:
            return
        bips_pred, power_pred = tables
        budget = sim.distributable_budget
        if sim.config.n_islands <= self.exhaustive_limit:
            knobs = self._select_exhaustive(bips_pred, power_pred, budget)
        else:
            knobs = self._select_dp(bips_pred, power_pred, budget)
        freqs = sim.chip.dvfs.frequencies
        for island in range(sim.config.n_islands):
            sim.chip.set_island_frequency(island, float(freqs[knobs[island]]))
        sim.setpoints = power_pred[np.arange(sim.config.n_islands), knobs]
