"""Comparison schemes the paper evaluates against.

* :mod:`repro.baselines.maxbips` — MaxBIPS (Isci et al., MICRO 2006):
  per GPM interval, predict BIPS and power for every island x DVFS-knob
  combination and pick the feasible combination with the highest total
  BIPS.  Open loop, quantized knobs — hence it always lands *below* the
  budget (Figure 11).
* :mod:`repro.baselines.no_management` — every core at maximum frequency;
  the performance reference all degradation numbers are relative to.
* :mod:`repro.baselines.static_uniform` — CPM with the uniform policy:
  equal static provisioning, PICs still active (the GPM-value ablation).
"""

from .maxbips import MaxBIPSScheme
from .no_management import NoManagementScheme
from .static_uniform import StaticUniformScheme

__all__ = [
    "MaxBIPSScheme",
    "NoManagementScheme",
    "StaticUniformScheme",
]
