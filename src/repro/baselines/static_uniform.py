"""Static-uniform provisioning: CPM's controllers without its GPM brain.

An ablation baseline (not in the paper): the budget is split equally and
never reprovisioned, while the PIC tier still caps each island at its
static share.  Comparing this against full CPM isolates the value of the
performance-aware GPM tier.
"""

from __future__ import annotations

from ..core.cpm import CPMScheme
from ..gpm.policy import UniformPolicy

__all__ = ["StaticUniformScheme"]


class StaticUniformScheme(CPMScheme):
    """CPM with the uniform policy — equal shares, closed-loop capping."""

    name = "static-uniform"

    def __init__(self, **kwargs) -> None:
        kwargs.pop("policy", None)
        super().__init__(policy=UniformPolicy(), **kwargs)
