"""Run serialization: export telemetry and results for external analysis.

Telemetry lives in NumPy arrays; downstream analysis usually wants CSV
(spreadsheets, pandas, gnuplot) or JSON (dashboards).  This module
flattens a :class:`~repro.cmpsim.simulator.SimulationResult` into those
formats without adding dependencies.

* :func:`telemetry_to_csv` — one row per PIC interval, one column per
  scalar series plus one column per (vector series, island/core) pair.
* :func:`windows_to_csv` — one row per completed GPM window.
* :func:`result_to_json` — run metadata + summary statistics (not the
  full per-interval data; use the CSVs for that).
* :func:`save_run` — writes all three next to each other.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Mapping

import numpy as np

from .cmpsim.simulator import SimulationResult

__all__ = ["result_to_json", "save_run", "telemetry_to_csv", "windows_to_csv"]


def _flatten_columns(arrays: Mapping[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Expand vector series into suffixed scalar columns."""
    names: list[str] = []
    columns: list[np.ndarray] = []
    for key in sorted(arrays):
        values = arrays[key]
        if values.ndim == 1:
            names.append(key)
            columns.append(values.astype(float))
        elif values.ndim == 2:
            for j in range(values.shape[1]):
                names.append(f"{key}[{j}]")
                columns.append(values[:, j].astype(float))
        else:  # pragma: no cover - telemetry holds only 1-D/2-D series
            raise ValueError(f"cannot flatten {key!r} with ndim={values.ndim}")
    return names, np.column_stack(columns)


def telemetry_to_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write per-interval telemetry as CSV; returns the row count."""
    arrays = dict(result.telemetry.finalize())
    arrays = {k: np.asarray(v) for k, v in arrays.items()}
    # Booleans serialize as 0/1.
    arrays["is_gpm_tick"] = arrays["is_gpm_tick"].astype(int)
    names, table = _flatten_columns(arrays)
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in table:
            writer.writerow([f"{v:.9g}" for v in row])
    return table.shape[0]


def windows_to_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write per-GPM-window aggregates as CSV; returns the row count."""
    windows = result.telemetry.windows
    path = pathlib.Path(path)
    n_islands = result.telemetry.n_islands
    headers = ["window", "duration_s"]
    for field in ("power_frac", "bips", "utilization", "setpoint",
                  "energy_j", "instructions"):
        headers += [f"{field}[{i}]" for i in range(n_islands)]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for k, w in enumerate(windows):
            row: list = [k, f"{w.duration_s:.9g}"]
            for values in (
                w.island_power_frac,
                w.island_bips,
                w.island_utilization,
                w.island_setpoints,
                w.island_energy_j,
                w.island_instructions,
            ):
                row += [f"{v:.9g}" for v in values]
            writer.writerow(row)
    return len(windows)


def result_to_json(result: SimulationResult) -> dict:
    """Run metadata and summary statistics as a JSON-ready dict."""
    chip_power = result.telemetry["chip_power_frac"]
    return {
        "scheme": result.scheme_name,
        "mix": result.mix_name,
        "budget_fraction": result.budget_fraction,
        "n_cores": result.config.n_cores,
        "n_islands": result.config.n_islands,
        "dvfs_mode": result.config.dvfs.mode,
        "gpm_interval_s": result.config.control.gpm_interval_s,
        "pic_interval_s": result.config.control.pic_interval_s,
        "duration_s": result.duration_s,
        "n_intervals": result.telemetry.n_intervals,
        "n_windows": len(result.telemetry.windows),
        "total_instructions": result.total_instructions,
        "mean_chip_bips": result.mean_chip_bips,
        "mean_chip_power_frac": result.mean_chip_power_frac,
        "max_chip_power_frac": float(chip_power.max()),
        "min_chip_power_frac": float(chip_power.min()),
    }


def save_run(
    result: SimulationResult,
    directory: str | pathlib.Path,
    stem: str = "run",
) -> dict[str, pathlib.Path]:
    """Write ``<stem>.json``, ``<stem>_telemetry.csv`` and
    ``<stem>_windows.csv`` under ``directory``; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "summary": directory / f"{stem}.json",
        "telemetry": directory / f"{stem}_telemetry.csv",
        "windows": directory / f"{stem}_windows.csv",
    }
    paths["summary"].write_text(json.dumps(result_to_json(result), indent=2))
    telemetry_to_csv(result, paths["telemetry"])
    windows_to_csv(result, paths["windows"])
    return paths
