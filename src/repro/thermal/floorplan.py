"""Chip floorplan: core placement and adjacency.

The thermal model needs which cores abut which (lateral heat flow), and
the thermal-aware GPM policy needs which *islands* are neighbours (its
constraints limit the combined provisioning of adjacent islands).  Cores
are laid out on a rectangular grid, row-major, matching the paper's
Figure 1/18(a) layouts where consecutively-numbered cores sit side by
side and islands are contiguous blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

import numpy as np

__all__ = ["Floorplan", "grid_floorplan"]


@dataclass(frozen=True)
class Floorplan:
    """Placement of ``n_cores`` on a ``rows x cols`` grid (row-major)."""

    n_cores: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows * self.cols < self.n_cores:
            raise ValueError("grid too small for the core count")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be positive")

    def position(self, core: int) -> Tuple[int, int]:
        """(row, col) of ``core``."""
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range")
        return divmod(core, self.cols)

    def core_adjacency(self) -> np.ndarray:
        """Symmetric boolean matrix: True where cores share a grid edge."""
        adj = np.zeros((self.n_cores, self.n_cores), dtype=bool)
        for core in range(self.n_cores):
            r, c = self.position(core)
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = r + dr, c + dc
                neighbor = nr * self.cols + nc
                if nr < self.rows and nc < self.cols and neighbor < self.n_cores:
                    adj[core, neighbor] = True
                    adj[neighbor, core] = True
        return adj

    def island_adjacency(self, island_of_core: np.ndarray) -> np.ndarray:
        """Island-level adjacency induced by core adjacency.

        ``island_of_core`` maps each core index to its island id.  Two
        distinct islands are adjacent when any of their cores are.
        """
        island_ids = np.asarray(island_of_core)
        if island_ids.shape != (self.n_cores,):
            raise ValueError("island_of_core must have one entry per core")
        n_islands = int(island_ids.max()) + 1
        core_adj = self.core_adjacency()
        adj = np.zeros((n_islands, n_islands), dtype=bool)
        rows, cols = np.nonzero(core_adj)
        for a, b in zip(rows, cols):
            ia, ib = island_ids[a], island_ids[b]
            if ia != ib:
                adj[ia, ib] = True
                adj[ib, ia] = True
        return adj

    def adjacent_island_pairs(self, island_of_core: np.ndarray) -> FrozenSet[Tuple[int, int]]:
        """Set of (lo, hi) adjacent island id pairs."""
        adj = self.island_adjacency(island_of_core)
        pairs = set()
        rows, cols = np.nonzero(np.triu(adj, k=1))
        for a, b in zip(rows, cols):
            pairs.add((int(a), int(b)))
        return frozenset(pairs)


def grid_floorplan(n_cores: int) -> Floorplan:
    """Default layout: two rows when the core count allows, else one.

    8 cores -> 2x4 (the paper's Figure 18(a) shape), 16 -> 2x8, 32 -> 2x16;
    odd or tiny counts fall back to a single row.
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    if n_cores >= 4 and n_cores % 2 == 0:
        return Floorplan(n_cores=n_cores, rows=2, cols=n_cores // 2)
    return Floorplan(n_cores=n_cores, rows=1, cols=n_cores)
