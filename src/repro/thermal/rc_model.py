"""Lumped-RC thermal network over the chip floorplan.

Each core is one thermal node with heat capacity ``C``; it sheds heat
vertically to the ambient/heat-sink through resistance ``R_v`` and
laterally to grid-adjacent cores through ``R_l``::

    C dT_i/dt = P_i - (T_i - T_amb)/R_v - sum_j adj (T_i - T_j)/R_l

Integrated with explicit Euler at the simulator's interval (0.5 ms),
which is comfortably inside the stability bound ``dt < R C`` for the
default parameters (time constant ~24 ms).
"""

from __future__ import annotations

import numpy as np

from ..config import ThermalConfig
from ..unit_types import Celsius, CelsiusArray, Seconds, WattsArray
from .floorplan import Floorplan

__all__ = ["RCThermalModel"]


class RCThermalModel:
    """Vectorized per-core temperature integrator."""

    def __init__(
        self,
        floorplan: Floorplan,
        config: ThermalConfig | None = None,
    ) -> None:
        self.config = config or ThermalConfig()
        self.floorplan = floorplan
        self.n_cores = floorplan.n_cores
        self._adjacency = floorplan.core_adjacency().astype(float)
        self._degree = self._adjacency.sum(axis=1)
        self.temperatures = np.full(self.n_cores, self.config.ambient_c, dtype=float)

    def reset(self, temperature_c: Celsius | None = None) -> None:
        """Set every node to ``temperature_c`` (default: ambient)."""
        value = self.config.ambient_c if temperature_c is None else temperature_c
        self.temperatures.fill(value)

    def step(self, core_power_w: WattsArray, dt: Seconds) -> CelsiusArray:
        """Advance ``dt`` seconds under per-core power; returns temperatures."""
        p = np.asarray(core_power_w, dtype=float)
        if p.shape != (self.n_cores,):
            raise ValueError(f"need one power value per core ({self.n_cores})")
        if dt <= 0:
            raise ValueError("dt must be positive")
        cfg = self.config
        stability_limit = cfg.heat_capacity_j_per_k * cfg.vertical_resistance_k_per_w
        if dt >= stability_limit:
            raise ValueError(
                f"dt={dt} too large for explicit Euler (limit {stability_limit})"
            )
        t = self.temperatures
        vertical = (t - cfg.ambient_c) / cfg.vertical_resistance_k_per_w
        lateral = (
            self._degree * t - self._adjacency @ t
        ) / cfg.lateral_resistance_k_per_w
        dT = (p - vertical - lateral) * (dt / cfg.heat_capacity_j_per_k)
        self.temperatures = t + dT
        return self.temperatures

    def steady_state(self, core_power_w: WattsArray) -> CelsiusArray:
        """Analytic equilibrium temperatures for constant per-core power.

        Solves the linear balance ``G (T - T_amb) = P`` where ``G`` is the
        conductance matrix; used by tests to validate the integrator.
        """
        p = np.asarray(core_power_w, dtype=float)
        if p.shape != (self.n_cores,):
            raise ValueError(f"need one power value per core ({self.n_cores})")
        cfg = self.config
        g_vertical = 1.0 / cfg.vertical_resistance_k_per_w
        g_lateral = 1.0 / cfg.lateral_resistance_k_per_w
        conductance = (
            np.diag(g_vertical + g_lateral * self._degree)
            - g_lateral * self._adjacency
        )
        return cfg.ambient_c + np.linalg.solve(conductance, p)
