"""Thermal substrate: floorplan adjacency and a lumped-RC core network.

Supports the paper's thermal-aware provisioning study (Figure 18): the
policy constrains how much power adjacent islands may be provisioned, and
the RC model verifies temperatures stay below the hotspot threshold when
the constraints hold.
"""

from .floorplan import Floorplan, grid_floorplan
from .hotspot import HotspotDetector, ViolationTracker
from .rc_model import RCThermalModel

__all__ = [
    "Floorplan",
    "HotspotDetector",
    "RCThermalModel",
    "ViolationTracker",
    "grid_floorplan",
]
