"""Hotspot detection and provisioning-constraint violation tracking.

Two notions of "thermal trouble" appear in the paper's Figure 18 study:

* a physical **hotspot** — a core temperature exceeding the junction
  threshold (:class:`HotspotDetector` watches the RC model for these);
* a **constraint violation** — the provisioning-level proxy the
  thermal-aware policy enforces: adjacent islands jointly provisioned
  more than a cap for consecutive GPM intervals, or one island holding an
  outsized share for too long.  :class:`ViolationTracker` counts how often
  a provisioning sequence violates these constraints, which is exactly
  what Figure 18(c) reports for the performance-aware policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

import numpy as np

from ..unit_types import Celsius, CelsiusArray

__all__ = ["HotspotDetector", "ThermalConstraints", "ViolationTracker"]


class HotspotDetector:
    """Counts intervals each core spends above the junction threshold."""

    def __init__(self, n_cores: int, threshold_c: Celsius) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.threshold_c = threshold_c
        self.hot_intervals = np.zeros(n_cores, dtype=np.int64)
        self.total_intervals = 0

    def observe(self, temperatures_c: CelsiusArray) -> np.ndarray:
        """Record one interval; returns the boolean hot mask."""
        t = np.asarray(temperatures_c, dtype=float)
        if t.shape != self.hot_intervals.shape:
            raise ValueError("temperature vector has the wrong length")
        hot = t > self.threshold_c
        self.hot_intervals += hot
        self.total_intervals += 1
        return hot

    def hot_fraction(self) -> np.ndarray:
        """Per-core fraction of observed intervals spent hot."""
        if self.total_intervals == 0:
            return np.zeros_like(self.hot_intervals, dtype=float)
        return self.hot_intervals / self.total_intervals

    @property
    def any_hotspot(self) -> bool:
        return bool(self.hot_intervals.any())


@dataclass(frozen=True)
class ThermalConstraints:
    """The provisioning constraints of the paper's thermal-aware policy.

    The paper states the caps qualitatively (the OCR drops the numbers);
    the defaults here are our documented choices:

    * no *adjacent island pair* may jointly receive more than
      ``pair_share_cap`` of the chip budget for more than
      ``pair_consecutive_limit`` consecutive GPM intervals;
    * no *single island* may receive more than ``single_share_cap`` for
      more than ``single_consecutive_limit`` consecutive GPM intervals.
    """

    adjacent_pairs: FrozenSet[Tuple[int, int]]
    pair_share_cap: float = 0.50
    pair_consecutive_limit: int = 2
    single_share_cap: float = 0.40
    single_consecutive_limit: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.pair_share_cap <= 1.0:
            raise ValueError("pair_share_cap must be in (0, 1]")
        if not 0.0 < self.single_share_cap <= 1.0:
            raise ValueError("single_share_cap must be in (0, 1]")
        if self.pair_consecutive_limit < 1 or self.single_consecutive_limit < 1:
            raise ValueError("consecutive limits must be >= 1")


@dataclass
class ViolationTracker:
    """Streak-based checker for :class:`ThermalConstraints`.

    Feed it each GPM interval's island *shares of the chip budget* (they
    should sum to ~1); it tracks consecutive-interval streaks and counts an
    island/pair as violating in any interval where its streak exceeds the
    allowed length.
    """

    constraints: ThermalConstraints
    n_islands: int
    _pair_streaks: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _single_streaks: np.ndarray | None = None
    pair_violation_intervals: Dict[Tuple[int, int], int] = field(default_factory=dict)
    single_violation_intervals: np.ndarray | None = None
    total_intervals: int = 0

    def __post_init__(self) -> None:
        if self.n_islands < 1:
            raise ValueError("need at least one island")
        for pair in self.constraints.adjacent_pairs:
            a, b = pair
            if not (0 <= a < self.n_islands and 0 <= b < self.n_islands):
                raise ValueError(f"pair {pair} references unknown islands")
            self._pair_streaks[pair] = 0
            self.pair_violation_intervals[pair] = 0
        self._single_streaks = np.zeros(self.n_islands, dtype=np.int64)
        self.single_violation_intervals = np.zeros(self.n_islands, dtype=np.int64)

    def observe(self, island_shares: np.ndarray) -> bool:
        """Record one GPM interval of shares; returns True if violating."""
        shares = np.asarray(island_shares, dtype=float)
        if shares.shape != (self.n_islands,):
            raise ValueError("need one share per island")
        self.total_intervals += 1
        c = self.constraints
        violated = False

        for pair in c.adjacent_pairs:
            a, b = pair
            if shares[a] + shares[b] > c.pair_share_cap + 1e-12:
                self._pair_streaks[pair] += 1
            else:
                self._pair_streaks[pair] = 0
            if self._pair_streaks[pair] > c.pair_consecutive_limit:
                self.pair_violation_intervals[pair] += 1
                violated = True

        over = shares > c.single_share_cap + 1e-12
        self._single_streaks = np.where(over, self._single_streaks + 1, 0)
        single_violating = self._single_streaks > c.single_consecutive_limit
        self.single_violation_intervals += single_violating
        violated = violated or bool(single_violating.any())
        return violated

    def violation_fraction(self) -> float:
        """Fraction of observed intervals with any violation."""
        if self.total_intervals == 0:
            return 0.0
        per_pair = sum(self.pair_violation_intervals.values())
        per_single = int(self.single_violation_intervals.sum())
        # An interval can violate several constraints at once; bound at 1.
        return min(1.0, (per_pair + per_single) / self.total_intervals)

    def island_violation_fractions(self) -> np.ndarray:
        """Per-island fraction of intervals in violation (pairs attributed
        to both members), the quantity Figure 18(c) plots per core."""
        if self.total_intervals == 0:
            return np.zeros(self.n_islands)
        counts = self.single_violation_intervals.astype(float).copy()
        for (a, b), n in self.pair_violation_intervals.items():
            counts[a] += n
            counts[b] += n
        return np.minimum(1.0, counts / self.total_intervals)
