"""Figure 18: thermal-aware power provisioning.

The study runs four CPU-bound SPEC applications (mesa, bzip2, gcc,
sixtrack), one per core, on an 8-core CMP with single-core islands
(Figure 18a).  The thermal-aware policy constrains how much of the
budget adjacent islands may hold for consecutive GPM intervals; the
evaluation compares

* (b) its performance degradation against the performance-aware policy,
* (c) the fraction of time the performance-aware policy *would have*
  violated the thermal constraints (per island),

and verifies the thermal-aware run itself never violates and produces no
hotspots.

The paper's exact share caps are lost to OCR; with eight equal islands a
constrained pair naturally holds ~25% of the budget, so the caps here
sit just above the natural shares (pair 26%, single 14.5%, for at most
2/4 consecutive intervals): the performance-aware policy's provisioning
drift crosses them regularly, while a compliant allocation of the full
budget still exists (4 pairs x 26% > 100%).
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..core.metrics import performance_degradation
from ..gpm.performance_aware import PerformanceAwarePolicy
from ..gpm.thermal_aware import ThermalAwarePolicy
from ..rng import DEFAULT_SEED
from ..thermal.hotspot import ThermalConstraints, ViolationTracker
from ..workloads.mixes import thermal_mix
from .common import ExperimentResult, horizon, reference_run

__all__ = [
    "BUDGET",
    "CONSTRAINED_PAIRS",
    "PAIR_SHARE_CAP",
    "SINGLE_SHARE_CAP",
    "run",
]

#: Cores are constrained in side-by-side pairs (1,2), (3,4), (5,6), (7,8)
#: as in the paper's Figure 18(a) layout.
CONSTRAINED_PAIRS = frozenset((i, i + 1) for i in range(0, 8, 2))
PAIR_SHARE_CAP = 0.26
SINGLE_SHARE_CAP = 0.145
BUDGET = 0.80


def _violation_fractions(result, constraints: ThermalConstraints) -> np.ndarray:
    """Per-island fraction of GPM intervals violating ``constraints``.

    Shares are normalized by the *distributable* budget (chip budget minus
    the uncore share) — the same basis the policies cap against; a policy
    that deliberately leaves budget unspent must not have its shares
    inflated by a smaller denominator.
    """
    tracker = ViolationTracker(
        constraints=constraints, n_islands=result.telemetry.n_islands
    )
    ticks = result.telemetry.gpm_tick_indices()
    setpoints = result.telemetry["island_setpoint_frac"][ticks]
    distributable = result.budget_fraction - result.config.uncore_fraction
    shares = setpoints / max(distributable, units.EPS)
    for row in shares:
        tracker.observe(row)
    return tracker.island_violation_fractions()


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    mix = thermal_mix()
    config = DEFAULT_CONFIG.with_islands(8, 8)
    n_gpm = horizon(quick)
    reference = reference_run(config, mix, seed=seed, n_gpm=n_gpm)

    thermal_policy = ThermalAwarePolicy(
        base=PerformanceAwarePolicy(),
        pair_share_cap=PAIR_SHARE_CAP,
        single_share_cap=SINGLE_SHARE_CAP,
        adjacent_pairs=CONSTRAINED_PAIRS,
    )
    perf = run_cpm(
        config,
        mix=mix,
        policy=PerformanceAwarePolicy(),
        budget_fraction=BUDGET,
        n_gpm_intervals=n_gpm,
        seed=seed,
    )
    thermal = run_cpm(
        config,
        mix=mix,
        policy=thermal_policy,
        budget_fraction=BUDGET,
        n_gpm_intervals=n_gpm,
        seed=seed,
    )

    constraints = ThermalConstraints(
        adjacent_pairs=CONSTRAINED_PAIRS,
        pair_share_cap=PAIR_SHARE_CAP,
        single_share_cap=SINGLE_SHARE_CAP,
    )
    perf_violations = _violation_fractions(perf, constraints)
    thermal_violations = _violation_fractions(thermal, constraints)

    result = ExperimentResult(
        experiment="fig18",
        description="thermal-aware vs performance-aware provisioning "
        "(8 single-core islands, mesa/bzip2/gcc/sixtrack x2)",
        headers=("metric", "performance-aware", "thermal-aware"),
    )
    result.add_row(
        "perf degradation vs no-management",
        performance_degradation(perf, reference),
        performance_degradation(thermal, reference),
    )
    result.add_row(
        "mean chip power", perf.mean_chip_power_frac, thermal.mean_chip_power_frac
    )
    result.add_row(
        "max core temperature (C)",
        float(perf.telemetry["core_temperature_c"].max()),
        float(thermal.telemetry["core_temperature_c"].max()),
    )
    result.add_row(
        "constraint-violating interval fraction (any island)",
        float(perf_violations.max()),
        float(thermal_violations.max()),
    )
    apps = [names[0] for names in mix.islands]
    for i, app in enumerate(apps):
        result.add_row(
            f"violation fraction core {i + 1} ({app})",
            float(perf_violations[i]),
            float(thermal_violations[i]),
        )
    result.notes.append(
        "paper: the thermal-aware policy never violates (no hotspots) and "
        "costs more performance than the performance-aware policy, which "
        "violates the constraints part of the time"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
