"""Figure 9: PIC tracking between two successive GPM invocations.

Each GPM window hands every island a constant set-point for 10 PIC
invocations; the paper reports overshoots "mostly within 2% of the
target" and settling "within 5–6 invocations".  This experiment treats
every (window, island) pair as one tracking response and reports the
distribution of the robustness metrics over all of them.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..control.analysis import response_metrics
from ..core.cpm import run_cpm
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, horizon

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    res = run_cpm(
        config,
        mix=MIX1,
        budget_fraction=0.8,
        n_gpm_intervals=horizon(quick),
        seed=seed,
    )
    telemetry = res.telemetry
    ticks = telemetry.gpm_tick_indices()
    power = telemetry["island_power_frac"]
    setpoints = telemetry["island_setpoint_frac"]

    overshoots: list[float] = []
    settlings: list[float] = []
    sses: list[float] = []
    # Skip the first two windows: the controllers start from an arbitrary
    # operating point, which is start-up transient, not tracking.
    boundaries = list(ticks[2:]) + [telemetry.n_intervals]
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end <= start:
            continue
        for island in range(config.n_islands):
            ref = float(setpoints[start, island])
            if ref <= 0:
                continue
            m = response_metrics(power[start:end, island], ref, tolerance=0.03)
            overshoots.append(m.max_overshoot)
            if m.settled:
                settlings.append(m.settling_steps)
                sses.append(m.steady_state_error)

    overshoots_arr = np.asarray(overshoots)
    result = ExperimentResult(
        experiment="fig09",
        description="PIC robustness between GPM invocations (all windows x islands)",
        headers=("metric", "median", "p90", "worst"),
    )
    result.add_row(
        "max overshoot (fraction of target)",
        float(np.median(overshoots_arr)),
        float(np.percentile(overshoots_arr, 90)),
        float(overshoots_arr.max()),
    )
    if settlings:
        s = np.asarray(settlings, dtype=float)
        result.add_row(
            "settling (PIC invocations, 3% band)",
            float(np.median(s)),
            float(np.percentile(s, 90)),
            float(s.max()),
        )
        e = np.asarray(sses)
        result.add_row(
            "steady-state error (fraction of target)",
            float(np.median(e)),
            float(np.percentile(e, 90)),
            float(e.max()),
        )
    result.add_row(
        "windows settled within the GPM interval",
        len(settlings) / max(len(overshoots), 1),
        float("nan"),
        float("nan"),
    )
    # One representative window per island, like the paper's four panels.
    if len(ticks) > 3:
        start, end = int(ticks[3]), int(ticks[4]) if len(ticks) > 4 else telemetry.n_intervals
        for island in range(config.n_islands):
            result.add_series(
                f"island {island + 1} (target {setpoints[start, island]:.3f})",
                power[start:end, island],
            )
    result.notes.append(
        "paper: overshoots mostly within ~2% of target; settling within "
        "5-6 PIC invocations; near-zero steady-state error"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
