"""Figure 15: scalability — 16- and 32-core CMPs, CPM vs MaxBIPS.

The paper evaluates 16 and 32 cores with 4 cores per island (Mix-3,
replicated twice for 32 cores) across budgets: CPM stays near 4%
degradation at the 80% budget while MaxBIPS degrades to 14–16%.
"""

from __future__ import annotations

import numpy as np

from ..baselines.maxbips import MaxBIPSScheme
from ..cmpsim.simulator import Simulation
from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from .common import ExperimentResult, horizon, reference_run

__all__ = ["BUDGETS", "run"]

BUDGETS = (0.90, 0.85, 0.80, 0.75)


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    n_gpm = horizon(quick)
    budgets = (0.80,) if quick else BUDGETS

    result = ExperimentResult(
        experiment="fig15",
        description="16/32-core scalability: CPM vs MaxBIPS across budgets",
        headers=("cores", "budget", "CPM degradation", "MaxBIPS degradation"),
    )
    curves: dict[str, list[float]] = {}
    for n_cores in (16, 32):
        config = DEFAULT_CONFIG.with_islands(n_cores, n_cores // 4)
        reference = reference_run(config, seed=seed, n_gpm=n_gpm)
        for budget in budgets:
            cpm = run_cpm(
                config, budget_fraction=budget, n_gpm_intervals=n_gpm, seed=seed
            )
            maxbips = Simulation(
                config, MaxBIPSScheme(), budget_fraction=budget, seed=seed
            ).run(n_gpm)
            cpm_deg = performance_degradation(cpm, reference)
            mb_deg = performance_degradation(maxbips, reference)
            result.add_row(n_cores, budget, cpm_deg, mb_deg)
            curves.setdefault(f"CPM {n_cores}c", []).append(cpm_deg)
            curves.setdefault(f"MaxBIPS {n_cores}c", []).append(mb_deg)
    for name, values in curves.items():
        result.add_series(name, np.asarray(values))
    result.notes.append(
        "paper @80%: CPM ~4% for both sizes; MaxBIPS 14% (16c) / 16.2% (32c)"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
