"""Figure 15: scalability — 16- and 32-core CMPs, CPM vs MaxBIPS.

The paper evaluates 16 and 32 cores with 4 cores per island (Mix-3,
replicated twice for 32 cores) across budgets: CPM stays near 4%
degradation at the 80% budget while MaxBIPS degrades to 14–16%.
"""

from __future__ import annotations

import numpy as np

from ..baselines.maxbips import MaxBIPSScheme
from ..config import DEFAULT_CONFIG
from ..core.cpm import CPMScheme
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_many
from .common import ExperimentResult, horizon, reference_run

__all__ = ["BUDGETS", "run"]

BUDGETS = (0.90, 0.85, 0.80, 0.75)


def run(
    seed: int = DEFAULT_SEED, quick: bool = False, jobs: int | None = 1
) -> ExperimentResult:
    n_gpm = horizon(quick)
    budgets = (0.80,) if quick else BUDGETS

    result = ExperimentResult(
        experiment="fig15",
        description="16/32-core scalability: CPM vs MaxBIPS across budgets",
        headers=("cores", "budget", "CPM degradation", "MaxBIPS degradation"),
    )
    grid = [
        (DEFAULT_CONFIG.with_islands(n_cores, n_cores // 4), n_cores, budget)
        for n_cores in (16, 32)
        for budget in budgets
    ]
    requests = [
        RunRequest(
            config=config,
            scheme_factory=factory,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm,
        )
        for config, _n_cores, budget in grid
        for factory in (CPMScheme, MaxBIPSScheme)
    ]
    results = run_many(requests, jobs=jobs)
    references = {
        n_cores: reference_run(
            DEFAULT_CONFIG.with_islands(n_cores, n_cores // 4),
            seed=seed,
            n_gpm=n_gpm,
        )
        for n_cores in (16, 32)
    }
    curves: dict[str, list[float]] = {}
    for (config, n_cores, budget), cpm, maxbips in zip(
        grid, results[0::2], results[1::2]
    ):
        reference = references[n_cores]
        cpm_deg = performance_degradation(cpm, reference)
        mb_deg = performance_degradation(maxbips, reference)
        result.add_row(n_cores, budget, cpm_deg, mb_deg)
        curves.setdefault(f"CPM {n_cores}c", []).append(cpm_deg)
        curves.setdefault(f"MaxBIPS {n_cores}c", []).append(mb_deg)
    for name, values in curves.items():
        result.add_series(name, np.asarray(values))
    result.notes.append(
        "paper @80%: CPM ~4% for both sizes; MaxBIPS 14% (16c) / 16.2% (32c)"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
