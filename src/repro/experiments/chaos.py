"""Chaos harness: scheduled faults vs the resilience guards.

Injects each scheduled fault scenario (stuck sensor, transient sensor
dropout, stuck-at-max actuator, missed GPM invocations) into a guarded
and an unguarded CPM run and reports, per fault intensity (duration):

* **budget-violation rate** — fraction of post-onset GPM windows whose
  mean chip power exceeds the budget by more than ``BUDGET_TOLERANCE``
  (window means are the supervisory-timescale basis: even a clean run's
  instantaneous power ripples a few percent over budget at single PIC
  ticks, see fig10).  A crashed run counts as violating everywhere —
  an unguarded NaN dropout takes the whole simulation down;
* **recovery latency** — PIC ticks after the fault clears until the
  faulty run's window power re-converges (within
  ``RECOVERY_TOLERANCE``) to the same-seed clean run and stays there;
* **BIPS degradation** — post-onset throughput loss vs the clean run.

The guards' documented bounds (see ``docs/ROBUSTNESS.md``): detection
within ``stuck_window + failsafe_after`` PIC ticks at the sensor tier,
quarantine within ``strikes_to_quarantine`` GPM windows at the
supervisor tier, restore/re-arm within ``windows_to_restore`` windows /
``rearm_after`` ticks of the fault clearing.

Run via ``repro chaos [--quick] [--out report.json]`` or
``python -m repro.experiments.chaos``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cmpsim.simulator import Simulation, SimulationResult
from ..config import CMPConfig, DEFAULT_CONFIG
from ..core.cpm import CPMScheme
from ..faults import (
    Fault,
    FaultWindow,
    MissedGPMFault,
    ScheduledStuckSensor,
    StuckActuatorFault,
    TransientSensorDropout,
    inject,
)
from ..resilience import GuardedCPMScheme
from ..rng import DEFAULT_SEED
from .common import ExperimentResult

__all__ = [
    "BUDGET_FRACTION",
    "BUDGET_TOLERANCE",
    "DETECTION_GRACE_WINDOWS",
    "FAULT_ISLAND",
    "RECOVERY_TOLERANCE",
    "SCENARIOS",
    "ChaosOutcome",
    "run",
    "run_cases",
]

#: Chip budget for every chaos run; tight enough that the caps bind.
BUDGET_FRACTION = 0.5
#: A window violates when its mean chip power exceeds budget * (1 + this).
BUDGET_TOLERANCE = 0.05
#: Recovered when window power is within this (absolute, fraction of max
#: chip power) of the same-seed clean run.
RECOVERY_TOLERANCE = 0.02
#: The island every island-scoped fault targets.
FAULT_ISLAND = 0
#: GPM windows of detection latency excluded from the violation rate —
#: no controller can act before evidence accrues.  Two windows covers
#: both documented detection bounds (``strikes_to_quarantine`` windows
#: at the supervisor tier, ``stuck_window + failsafe_after`` = 14 PIC
#: ticks at the sensor tier).  Applied to guarded AND unguarded runs so
#: the comparison basis is identical.
DETECTION_GRACE_WINDOWS = 2
#: Stuck-actuator wedge request; the actuator clamps it to the ladder
#: top, the worst case the GPM guard must contain.
_WEDGE_HIGH_GHZ = 99.0

SCENARIOS = ("stuck-sensor", "sensor-dropout", "stuck-actuator", "missed-gpm")


@dataclass(frozen=True)
class ChaosOutcome:
    """Metrics of one (scenario, intensity, guarded?) chaos run."""

    scenario: str
    duration_ticks: int
    guarded: bool
    crashed: bool
    #: Fraction of post-onset GPM windows over budget (1.0 when crashed).
    violation_rate: float
    #: PIC ticks from fault clear to re-convergence with the clean run;
    #: None when the run never re-converges (or crashed).
    recovery_ticks: int | None
    #: Post-onset throughput loss vs the clean run (NaN when crashed).
    bips_degradation: float
    #: Resilience-event counters from the guarded scheme's log.
    guard_counts: Dict[str, int]


def _make_fault(scenario: str, window: FaultWindow) -> Fault:
    if scenario == "stuck-sensor":
        return ScheduledStuckSensor(FAULT_ISLAND, window)
    if scenario == "sensor-dropout":
        return TransientSensorDropout(FAULT_ISLAND, window)
    if scenario == "stuck-actuator":
        return StuckActuatorFault(
            FAULT_ISLAND, window, frequency_ghz=_WEDGE_HIGH_GHZ
        )
    if scenario == "missed-gpm":
        return MissedGPMFault(window)
    raise ValueError(f"unknown chaos scenario {scenario!r}")


def _window_power(result: SimulationResult) -> np.ndarray:
    return np.array(
        [float(w.island_power_frac.sum()) for w in result.telemetry.windows]
    )


def _recovery_ticks(
    faulty: np.ndarray, clean: np.ndarray, end_window: int, pics_per_gpm: int
) -> int | None:
    """PIC ticks after the fault clears until windows track the clean run."""
    n = min(len(faulty), len(clean))
    diff = np.abs(faulty[:n] - clean[:n])
    for w in range(end_window, n):
        if np.all(diff[w:] <= RECOVERY_TOLERANCE):
            return (w - end_window) * pics_per_gpm
    return None


def _one_case(
    config: CMPConfig,
    scenario: str,
    window: FaultWindow,
    guarded: bool,
    clean: SimulationResult,
    seed: int,
    n_gpm: int,
) -> ChaosOutcome:
    base = GuardedCPMScheme() if guarded else CPMScheme()
    scheme = inject(base, _make_fault(scenario, window))
    sim = Simulation(
        config, scheme, budget_fraction=BUDGET_FRACTION, seed=seed
    )
    counts: Dict[str, int] = {}
    try:
        result = sim.run(n_gpm)
    except Exception:  # lint: ignore[ROB001] - the crash IS the finding
        if guarded:
            counts = dict(base.log.counts)
        return ChaosOutcome(
            scenario=scenario,
            duration_ticks=window.duration,
            guarded=guarded,
            crashed=True,
            violation_rate=1.0,
            recovery_ticks=None,
            bips_degradation=float("nan"),
            guard_counts=counts,
        )
    if guarded:
        counts = dict(base.log.counts)
    pics = config.control.pics_per_gpm
    onset_window = window.start // pics
    end_window = min(-(-window.end // pics), n_gpm)
    wp_faulty = _window_power(result)
    wp_clean = _window_power(clean)
    post = wp_faulty[onset_window + DETECTION_GRACE_WINDOWS :]
    over = ~np.isfinite(post) | (
        post > BUDGET_FRACTION * (1.0 + BUDGET_TOLERANCE)
    )
    onset_tick = onset_window * pics
    bips_faulty = result.telemetry["chip_bips"][onset_tick:]
    bips_clean = clean.telemetry["chip_bips"][onset_tick:]
    return ChaosOutcome(
        scenario=scenario,
        duration_ticks=window.duration,
        guarded=guarded,
        crashed=False,
        violation_rate=float(np.mean(over)) if post.size else 0.0,
        recovery_ticks=_recovery_ticks(wp_faulty, wp_clean, end_window, pics),
        bips_degradation=float(
            1.0 - np.mean(bips_faulty) / np.mean(bips_clean)
        ),
        guard_counts=counts,
    )


def run_cases(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    config: CMPConfig | None = None,
) -> List[ChaosOutcome]:
    """Execute the full scenario grid; the data behind :func:`run`.

    Runs are serial on purpose: a chaos run's value is its trajectory
    *and* its guard log, and an unguarded dropout is expected to crash —
    both easier to own in-process than across a pool.
    """
    if config is None:
        # A small platform keeps the grid fast; the guard dynamics under
        # test are per-island and do not need core count.
        config = DEFAULT_CONFIG.with_islands(4, 2)
    n_gpm = 12 if quick else 25
    onset = 40 if quick else 60
    durations = (40,) if quick else (40, 80)
    clean = Simulation(
        config, CPMScheme(), budget_fraction=BUDGET_FRACTION, seed=seed
    ).run(n_gpm)
    outcomes: List[ChaosOutcome] = []
    for scenario in SCENARIOS:
        for duration in durations:
            window = FaultWindow(onset, onset + duration)
            for guarded in (False, True):
                outcomes.append(
                    _one_case(
                        config, scenario, window, guarded, clean, seed, n_gpm
                    )
                )
    return outcomes


def _fmt_recovery(outcome: ChaosOutcome) -> str:
    if outcome.crashed:
        return "crashed"
    if outcome.recovery_ticks is None:
        return "never"
    return f"{outcome.recovery_ticks} ticks"


def _fmt_events(counts: Dict[str, int]) -> str:
    if not counts:
        return "-"
    interesting = (
        "sensor_fault_detected",
        "failsafe_entered",
        "sensor_rearmed",
        "island_quarantined",
        "island_restored",
    )
    parts = [f"{k}x{counts[k]}" for k in interesting if k in counts]
    return ",".join(parts) if parts else "-"


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    outcomes = run_cases(seed=seed, quick=quick)
    notes_extra = []
    if quick:
        notes_extra.append(
            "quick horizon can end before slow re-convergence (e.g. after "
            "a quarantine/restore cycle) — 'never' under --quick means "
            "'not within the shortened horizon'; use full mode to measure "
            "recovery latency"
        )
    result = ExperimentResult(
        experiment="chaos",
        description="scheduled faults: guarded vs unguarded CPM",
        headers=(
            "scenario",
            "fault ticks",
            "scheme",
            "violation rate",
            "recovery",
            "BIPS loss",
            "guard events",
        ),
    )
    for o in outcomes:
        result.add_row(
            o.scenario,
            o.duration_ticks,
            "guarded" if o.guarded else "unguarded",
            f"{o.violation_rate:.0%}" + (" (crash)" if o.crashed else ""),
            _fmt_recovery(o),
            "-" if o.crashed else f"{o.bips_degradation:+.1%}",
            _fmt_events(o.guard_counts),
        )
    result.notes.append(
        f"budget {BUDGET_FRACTION:.0%}; a window violates above "
        f"budget x {1 + BUDGET_TOLERANCE:.2f} (window-mean basis, "
        f"excluding {DETECTION_GRACE_WINDOWS} detection-latency windows "
        "after onset for both schemes); "
        f"recovered = within {RECOVERY_TOLERANCE} of the clean run"
    )
    unguarded_bad = sorted(
        {
            o.scenario
            for o in outcomes
            if not o.guarded and (o.crashed or o.violation_rate > 0.0)
        }
    )
    guarded_bad = sorted(
        {
            o.scenario
            for o in outcomes
            if o.guarded and (o.crashed or o.violation_rate > 0.0)
        }
    )
    result.notes.append(
        "unguarded violations: "
        + (", ".join(unguarded_bad) if unguarded_bad else "none")
    )
    result.notes.append(
        "guarded violations: "
        + (", ".join(guarded_bad) if guarded_bad else "none")
    )
    result.notes.extend(notes_extra)
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
