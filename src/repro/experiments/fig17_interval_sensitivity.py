"""Figure 17: sensitivity to the GPM/PIC invocation intervals.

Compares the default cadence (GPM 5 ms, PIC 0.5 ms) against a degenerate
one where the PIC runs only as often as the GPM (5 ms, 5 ms), across
island sizes of 1, 2 and 4 cores per island.  With one PIC shot per GPM
window, the capping tier cannot settle onto the set-point, so budgets
must effectively be met open-loop — more degradation, exactly the
paper's argument for the two-rate design.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import DEFAULT_CONFIG, ControlConfig
from ..core.cpm import run_cpm
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from ..units import ms
from .common import ExperimentResult, horizon, reference_run

__all__ = ["CADENCES", "CORES_PER_ISLAND", "run"]

CADENCES = (
    ("(5ms, 0.5ms)", ms(5), ms(0.5)),
    ("(5ms, 5ms)", ms(5), ms(5)),
)
CORES_PER_ISLAND = (1, 2, 4)


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    n_gpm = horizon(quick)
    sizes = (2,) if quick else CORES_PER_ISLAND

    result = ExperimentResult(
        experiment="fig17",
        description="degradation and tracking vs (GPM, PIC) intervals, 80% budget",
        headers=(
            "cores/island",
            "(GPM, PIC)",
            "degradation",
            "mean |power-budget| / budget",
            "time above budget +2%",
            "worst budget overshoot",
        ),
    )
    for cpi in sizes:
        base = DEFAULT_CONFIG.with_islands(8, 8 // cpi)
        for label, gpm_s, pic_s in CADENCES:
            control = ControlConfig(
                gpm_interval_s=gpm_s,
                pic_interval_s=pic_s,
                desired_poles=base.control.desired_poles,
            )
            config = dataclasses.replace(base, control=control)
            reference = reference_run(config, seed=seed, n_gpm=n_gpm)
            res = run_cpm(
                config, budget_fraction=0.8, n_gpm_intervals=n_gpm, seed=seed
            )
            deg = performance_degradation(res, reference)
            chip = res.telemetry["chip_power_frac"]
            skip = max(2, chip.size // 4)
            rel = chip[skip:] / res.budget_fraction
            result.add_row(
                cpi,
                label,
                deg,
                float(np.mean(np.abs(rel - 1.0))),
                float(np.mean(rel > 1.02)),
                float(max(rel.max() - 1.0, 0.0)),
            )
    result.notes.append(
        "paper: the (5ms, 0.5ms) cadence degrades less thanks to more "
        "accurate within-window capping; too-small intervals would raise "
        "controller overhead instead"
    )
    result.notes.append(
        "in this substrate the coarse PIC's within-window budget "
        "overshoots go uncorrected and convert into throughput, so its "
        "degradation can read lower — the compliance columns show what "
        "that costs: the fine cadence is what actually keeps the chip "
        "under the budget"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
