"""Figure 11: budget curves — actual consumption vs budget, CPM vs MaxBIPS.

Sweeping the chip-wide budget, the paper shows its scheme's consumption
closely tracking the budget without overshooting it, while MaxBIPS
always lands below the budget (quantized knobs + worst-case open-loop
provisioning cannot dial consumption onto the set-point).
"""

from __future__ import annotations

import numpy as np

from ..baselines.maxbips import MaxBIPSScheme
from ..config import DEFAULT_CONFIG
from ..core.cpm import CPMScheme
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_many
from ..workloads.mixes import MIX1
from .common import ExperimentResult, WARMUP_INTERVALS, horizon

__all__ = ["BUDGETS", "run"]

BUDGETS = (0.95, 0.90, 0.85, 0.80, 0.75)


def run(
    seed: int = DEFAULT_SEED, quick: bool = False, jobs: int | None = 1
) -> ExperimentResult:
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    budgets = BUDGETS[1::2] if quick else BUDGETS

    result = ExperimentResult(
        experiment="fig11",
        description="actual chip power vs budget: CPM tracks, MaxBIPS undershoots",
        headers=(
            "budget",
            "CPM mean power",
            "CPM max power",
            "MaxBIPS mean power",
            "MaxBIPS max power",
        ),
    )
    requests = [
        RunRequest(
            config=config,
            scheme_factory=factory,
            mix=MIX1,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm,
        )
        for budget in budgets
        for factory in (CPMScheme, MaxBIPSScheme)
    ]
    results = run_many(requests, jobs=jobs)
    cpm_curve, maxbips_curve = [], []
    for budget, cpm, maxbips in zip(budgets, results[0::2], results[1::2]):
        skip = min(WARMUP_INTERVALS, cpm.telemetry.n_intervals // 3)
        cpm_power = cpm.telemetry["chip_power_frac"][skip:]
        mb_power = maxbips.telemetry["chip_power_frac"][skip:]
        cpm_curve.append(float(cpm_power.mean()))
        maxbips_curve.append(float(mb_power.mean()))
        result.add_row(
            budget,
            float(cpm_power.mean()),
            float(cpm_power.max()),
            float(mb_power.mean()),
            float(mb_power.max()),
        )
    result.add_series("budget", np.asarray(budgets))
    result.add_series("CPM consumption", np.asarray(cpm_curve))
    result.add_series("MaxBIPS consumption", np.asarray(maxbips_curve))
    result.notes.append(
        "budgets above the chip's natural draw are demand-limited: both "
        "schemes consume the unmanaged power and the budget does not bind"
    )
    result.notes.append(
        "paper: our scheme closely tracks the budgeted power; MaxBIPS's "
        "consumption is always lower than the budget"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
