"""Ablation studies on the design choices DESIGN.md calls out.

These go beyond the paper's own figures and quantify why the design is
the way it is:

* :func:`run_pid_terms` — P vs PI vs PID local controllers (the paper's
  Section II narrative about what each term buys).
* :func:`run_quantization` — continuous vs quantized PIC actuation (the
  source of MaxBIPS's undershoot, applied to CPM itself).
* :func:`run_transducer` — per-island transducers vs one pooled global
  line (how much sensing specialization matters).
* :func:`run_gpm_policy` — proportional vs literal-Eq.6 vs uniform
  provisioning (what the GPM tier buys over static splits).
* :func:`run_maxbips_prediction` — static-table vs runtime-informed
  MaxBIPS (how much of its published handicap is the static table).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.maxbips import MaxBIPSScheme
from ..cmpsim.simulator import Simulation
from ..config import DEFAULT_CONFIG, DVFSConfig
from ..control.pid import PIDGains
from ..core.calibration import default_calibration
from ..core.cpm import CPMScheme, run_cpm
from ..core.metrics import performance_degradation
from ..gpm.performance_aware import PerformanceAwarePolicy
from ..gpm.policy import UniformPolicy
from ..power.transducer import fit_transducer
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, WARMUP_INTERVALS, horizon, reference_run

__all__ = [
    "BUDGET",
    "run_energy_floor",
    "run_gpm_policy",
    "run_maxbips_prediction",
    "run_pid_terms",
    "run_quantization",
    "run_transducer",
]

BUDGET = 0.8


def _tracking_stats(result) -> tuple[float, float]:
    """(mean |chip-budget|/budget, std of the same) after warmup."""
    chip = result.telemetry["chip_power_frac"]
    skip = min(WARMUP_INTERVALS, chip.size // 3)
    rel = chip[skip:] / result.budget_fraction - 1.0
    return float(np.abs(rel).mean()), float(rel.std())


def run_pid_terms(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    """P vs PI vs PID per-island controllers at the 80% budget."""
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    cal = default_calibration(config, seed=seed)
    g = cal.pid_gains
    variants = {
        "P only": PIDGains(g.kp, 0.0, 0.0),
        "PI": PIDGains(g.kp, g.ki, 0.0),
        "PID (designed)": g,
    }
    result = ExperimentResult(
        experiment="ablation-pid-terms",
        description="controller terms: tracking quality of P / PI / PID",
        headers=(
            "controller",
            "mean |power-budget| / budget",
            "power noise (std/budget)",
            "mean chip power",
        ),
    )
    for name, gains in variants.items():
        variant_cal = dataclasses.replace(cal, pid_gains=gains)
        scheme = CPMScheme(calibration=variant_cal)
        res = Simulation(
            config, scheme, mix=MIX1, budget_fraction=BUDGET, seed=seed
        ).run(n_gpm)
        err, noise = _tracking_stats(res)
        result.add_row(name, err, noise, res.mean_chip_power_frac)
    result.notes.append(
        "because the frequency actuator itself integrates (the plant is "
        "P(z)=a/(z-1)), even P-only tracks constant set-points; the I "
        "term buys rejection of sustained disturbances such as sensor "
        "bias and workload drift, and D damps the reallocation transients"
    )
    return result


def run_quantization(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    """Continuous vs quantized PIC actuation."""
    n_gpm = horizon(quick)
    result = ExperimentResult(
        experiment="ablation-quantization",
        description="PIC actuation: continuous vs 8-knob quantized DVFS",
        headers=(
            "actuation",
            "mean |power-budget| / budget",
            "perf degradation",
        ),
    )
    for mode in ("continuous", "quantized"):
        config = dataclasses.replace(DEFAULT_CONFIG, dvfs=DVFSConfig(mode=mode))
        reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)
        res = run_cpm(
            config, mix=MIX1, budget_fraction=BUDGET, n_gpm_intervals=n_gpm,
            seed=seed,
        )
        err, _noise = _tracking_stats(res)
        result.add_row(mode, err, performance_degradation(res, reference))
    result.notes.append(
        "quantized knobs force the PIC to dither between ladder points; "
        "time-averaged tracking survives, instantaneous tracking widens"
    )
    return result


def run_transducer(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    """Per-island transducers vs one pooled global line."""
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    cal = default_calibration(config, seed=seed)

    # Pool every benchmark's calibration line into one global fit by
    # sampling each per-benchmark transducer over its utilization range.
    u = np.linspace(0.2, 1.0, 50)
    us, ps = [], []
    for t in cal.benchmark_transducers.values():
        us.append(u)
        ps.append(t(u))
    pooled = fit_transducer(np.concatenate(us), np.concatenate(ps))
    pooled_cal = dataclasses.replace(
        cal, island_transducers=(pooled,) * config.n_islands
    )

    result = ExperimentResult(
        experiment="ablation-transducer",
        description="sensing: per-island transducer fits vs one global line",
        headers=(
            "transducer",
            "mean |sensed-actual| (fraction of max power)",
            "mean |power-budget| / budget",
        ),
    )
    for name, calibration in (("per-island", cal), ("global", pooled_cal)):
        scheme = CPMScheme(calibration=calibration)
        res = Simulation(
            config, scheme, mix=MIX1, budget_fraction=BUDGET, seed=seed
        ).run(n_gpm)
        skip = min(WARMUP_INTERVALS, res.telemetry.n_intervals // 3)
        sensed = res.telemetry["island_sensed_frac"][skip:]
        actual = res.telemetry["island_power_frac"][skip:]
        sense_err = float(np.abs(sensed - actual).mean())
        err, _ = _tracking_stats(res)
        result.add_row(name, sense_err, err)
    result.notes.append(
        "the PIC can only cap what it can sense: transducers fit to the "
        "island's own co-scheduled applications track actual power tighter"
    )
    return result


def run_gpm_policy(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    """Provisioning policy ablation at the 80% budget."""
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)
    policies = {
        "uniform (static)": UniformPolicy(),
        "eq6 (literal)": PerformanceAwarePolicy(mode="eq6"),
        "proportional (default)": PerformanceAwarePolicy(mode="proportional"),
    }
    result = ExperimentResult(
        experiment="ablation-gpm-policy",
        description="GPM tier: uniform vs literal Eq.6 vs proportional phi",
        headers=("policy", "perf degradation", "mean chip power"),
    )
    for name, policy in policies.items():
        res = run_cpm(
            config, mix=MIX1, policy=policy, budget_fraction=BUDGET,
            n_gpm_intervals=n_gpm, seed=seed,
        )
        result.add_row(
            name, performance_degradation(res, reference), res.mean_chip_power_frac
        )
    return result


def run_energy_floor(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> ExperimentResult:
    """Energy-aware policy: power saved vs throughput cost across floors.

    Sweeps the performance floor of
    :class:`~repro.gpm.energy_aware.EnergyAwarePolicy` — the "provide a
    minimum guarantee on the performance" extension the paper lists as
    feasible — and reports the power/throughput trade it buys.
    """
    from ..gpm.energy_aware import EnergyAwarePolicy

    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)
    result = ExperimentResult(
        experiment="ablation-energy-floor",
        description="energy-aware policy: power saved vs performance floor",
        headers=(
            "performance floor",
            "mean chip power",
            "power saved vs unmanaged",
            "perf degradation",
        ),
    )
    unmanaged = reference.mean_chip_power_frac
    floors = (0.99, 0.95) if quick else (0.99, 0.97, 0.95, 0.90, 0.85)
    for floor in floors:
        scheme = CPMScheme(policy=EnergyAwarePolicy(performance_floor=floor))
        res = Simulation(
            config, scheme, mix=MIX1, budget_fraction=0.95, seed=seed
        ).run(n_gpm)
        result.add_row(
            floor,
            res.mean_chip_power_frac,
            1.0 - res.mean_chip_power_frac / unmanaged,
            performance_degradation(res, reference),
        )
    result.notes.append(
        "lowering the guarantee buys power roughly 2:1 against "
        "throughput at first (memory-stall power is cheap to shed), then "
        "saturates as the compute-bound islands start paying"
    )
    return result


def run_maxbips_prediction(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> ExperimentResult:
    """MaxBIPS: static table vs runtime-informed predictions."""
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)
    result = ExperimentResult(
        experiment="ablation-maxbips-prediction",
        description="MaxBIPS prediction table: static vs runtime-informed",
        headers=("prediction", "perf degradation", "mean chip power",
                          "max chip power"),
    )
    for prediction in ("static", "measured"):
        res = Simulation(
            config,
            MaxBIPSScheme(prediction=prediction),
            mix=MIX1,
            budget_fraction=BUDGET,
            seed=seed,
        ).run(n_gpm)
        chip = res.telemetry["chip_power_frac"][WARMUP_INTERVALS // 2 :]
        result.add_row(
            prediction,
            performance_degradation(res, reference),
            float(chip.mean()),
            float(chip.max()),
        )
    result.notes.append(
        "the paper's 'static prediction table' costs MaxBIPS most of its "
        "handicap; runtime feedback recovers much of it — which is the "
        "paper's thesis stated in reverse"
    )
    return result
