"""Tables I–III: platform configuration and application mixes.

Emits the paper's configuration tables from the library's actual
dataclasses, so the printed tables can never drift from what the
simulator runs.
"""

from __future__ import annotations

from .. import units
from ..config import DEFAULT_CONFIG
from ..rng import DEFAULT_SEED
from ..units import cycles_at
from ..workloads.mixes import MIX1, MIX2, MIX3
from ..workloads.parsec import PARSEC_BENCHMARKS, SHORT_NAMES
from .common import ExperimentResult

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    cfg = DEFAULT_CONFIG
    result = ExperimentResult(
        experiment="tables",
        description="Tables I-III: platform configuration, benchmarks, mixes",
        headers=("table", "entry", "value"),
    )

    # Table I — core / memory / CMP configuration.
    core = cfg.core
    mem = cfg.memory
    result.add_row("I", "technology", "90 nm, 2 GHz nominal")
    result.add_row(
        "I",
        "core fetch/issue/commit width",
        f"{core.fetch_width}/{core.issue_width}/{core.commit_width}",
    )
    result.add_row("I", "register file", f"{core.register_file_entries} entries")
    result.add_row(
        "I",
        "L1 caches",
        f"{core.l1_size_bytes // 1024}KB {core.l1_associativity}-way, "
        f"{core.l1_block_bytes}B blocks, {core.l1_hit_cycles}-cycle",
    )
    result.add_row(
        "I",
        "L2 cache",
        f"shared, {mem.l2_size_bytes_per_core // 1024}KB/core, "
        f"{mem.l2_associativity}-way LRU, {mem.l2_block_bytes}B blocks, "
        f"{mem.l2_hit_cycles}-cycle",
    )
    nominal_f = cfg.dvfs.f_max
    result.add_row(
        "I",
        "memory latency",
        f"{units.to_ns(mem.memory_latency_s):.0f} ns "
        f"(~{cycles_at(mem.memory_latency_s, nominal_f):.0f} cycles @ "
        f"{nominal_f} GHz)",
    )
    result.add_row(
        "I",
        "CMP configuration",
        f"{cfg.n_cores} OoO cores, {cfg.n_islands} islands, "
        f"{cfg.cores_per_island} cores/island",
    )
    for f, v in cfg.dvfs.vf_table:
        result.add_row("I", f"V/F pair @ {int(f * 1000)} MHz", f"{v:.3f} V")
    result.add_row(
        "I",
        "control cadence",
        f"GPM {cfg.control.gpm_interval_s * 1e3:.1f} ms, "
        f"PIC {cfg.control.pic_interval_s * 1e3:.1f} ms",
    )
    result.add_row(
        "I", "DVFS transition overhead", f"{cfg.dvfs.transition_overhead:.1%}"
    )

    # Table II — PARSEC benchmark descriptions.
    for name in sorted(PARSEC_BENCHMARKS):
        spec = PARSEC_BENCHMARKS[name]
        result.add_row(
            "II",
            f"{name} ({SHORT_NAMES[name]})",
            f"[{spec.kind}] {spec.description}",
        )

    # Table III — mixes and island assignments.
    for mix in (MIX1, MIX2, MIX3):
        for i, (apps, chars) in enumerate(zip(mix.islands, mix.characteristics())):
            result.add_row(
                f"III ({mix.name})",
                f"island {i + 1}",
                f"{', '.join(apps)}  [{chars}]",
            )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
