"""Figure 10: chip-wide power tracking of an 80% budget.

The sum of the islands' actual power (plus the uncore) is compared
against the chip-wide budget over time; the paper reports overshoot and
undershoot "mostly within 4% of the allocated power budget".
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..core.metrics import chip_tracking_metrics
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, WARMUP_INTERVALS, horizon

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    res = run_cpm(
        DEFAULT_CONFIG,
        mix=MIX1,
        budget_fraction=0.8,
        n_gpm_intervals=horizon(quick),
        seed=seed,
    )
    chip_power = res.telemetry["chip_power_frac"]
    skip = min(WARMUP_INTERVALS, chip_power.size // 3)
    rel = chip_power[skip:] / res.budget_fraction

    result = ExperimentResult(
        experiment="fig10",
        description="chip-wide power vs the 80% budget over time",
        headers=("metric", "value"),
    )
    result.add_row("mean chip power / budget", float(rel.mean()))
    result.add_row("max overshoot above budget", float(max(rel.max() - 1.0, 0.0)))
    result.add_row("max undershoot below budget", float(max(1.0 - rel.min(), 0.0)))
    result.add_row("p5 / p95 of chip power / budget",
                   f"{np.percentile(rel, 5):.4f} / {np.percentile(rel, 95):.4f}")
    within = float(np.mean(np.abs(rel - 1.0) <= 0.04))
    result.add_row("fraction of time within ±4% of budget", within)
    metrics = chip_tracking_metrics(res, tolerance=0.04, skip_intervals=skip)
    result.add_row("steady-state error (4% band)", metrics.steady_state_error)
    result.add_series("chip power (fraction of max)", chip_power)
    result.add_series("budget", np.full_like(chip_power, res.budget_fraction))
    result.notes.append("paper: overshoot/undershoot mostly within 4% of budget")
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
