"""Figure 13: performance degradation vs island size (cores per island).

On the 8-core platform at an 80% budget, the paper varies the island
granularity (1, 2, 4 cores per island).  Finer islands give the manager
more freedom — per-application power shaping at 1 core/island — and the
1-core case is "the architecture targeted in MaxBIPS", where the paper
found CPM and MaxBIPS close (CPM ~3.75 points better).
"""

from __future__ import annotations

import numpy as np

from ..baselines.maxbips import MaxBIPSScheme
from ..cmpsim.simulator import Simulation
from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from .common import ExperimentResult, horizon, reference_run

__all__ = ["CORES_PER_ISLAND", "run"]

CORES_PER_ISLAND = (1, 2, 4)


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    n_gpm = horizon(quick)
    result = ExperimentResult(
        experiment="fig13",
        description="degradation vs cores/island (8 cores, 80% budget)",
        headers=("cores/island", "CPM degradation", "MaxBIPS degradation"),
    )
    cpm_curve, mb_curve = [], []
    for cpi in CORES_PER_ISLAND:
        config = DEFAULT_CONFIG.with_islands(8, 8 // cpi)
        reference = reference_run(config, seed=seed, n_gpm=n_gpm)
        cpm = run_cpm(
            config, budget_fraction=0.8, n_gpm_intervals=n_gpm, seed=seed
        )
        maxbips = Simulation(
            config, MaxBIPSScheme(), budget_fraction=0.8, seed=seed
        ).run(n_gpm)
        cpm_deg = performance_degradation(cpm, reference)
        mb_deg = performance_degradation(maxbips, reference)
        cpm_curve.append(cpm_deg)
        mb_curve.append(mb_deg)
        result.add_row(cpi, cpm_deg, mb_deg)
    result.add_series("CPM vs cores/island", np.asarray(cpm_curve))
    result.add_series("MaxBIPS vs cores/island", np.asarray(mb_curve))
    result.notes.append(
        "paper: degradation grows with island size; 1 core/island is the "
        "MaxBIPS-style architecture where the two schemes are closest"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
