"""Figure 12: performance degradation vs power budget.

Average performance loss relative to the no-power-management run (all
cores at maximum frequency) as the chip budget shrinks; the paper
reports ~4% degradation at an 80% budget, rising as the budget tightens.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.cpm import CPMScheme
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_many
from ..workloads.mixes import MIX1
from .common import ExperimentResult, horizon, reference_run

__all__ = ["BUDGETS", "run"]

BUDGETS = (1.00, 0.95, 0.90, 0.85, 0.80, 0.75)


def run(
    seed: int = DEFAULT_SEED, quick: bool = False, jobs: int | None = 1
) -> ExperimentResult:
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    budgets = BUDGETS[::2] if quick else BUDGETS
    reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)

    result = ExperimentResult(
        experiment="fig12",
        description="performance degradation vs chip power budget (Mix-1)",
        headers=("budget", "mean chip power", "perf degradation"),
    )
    requests = [
        RunRequest(
            config=config,
            scheme_factory=CPMScheme,
            mix=MIX1,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm,
        )
        for budget in budgets
    ]
    degradations = []
    for budget, res in zip(budgets, run_many(requests, jobs=jobs)):
        deg = performance_degradation(res, reference)
        degradations.append(deg)
        result.add_row(budget, res.mean_chip_power_frac, deg)
    result.add_series("degradation vs budget", np.asarray(degradations))
    result.notes.append("paper: ~4% degradation at the 80% budget")
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
