"""Figure 7: dynamic power provisioning across four islands.

Shows the GPM dividing an 80%-of-max chip budget across the four islands
of the default platform over time: each island's provisioned share varies
per GPM interval with the workload dynamics, and the shares always sum to
the distributable budget.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, horizon

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    res = run_cpm(
        config,
        mix=MIX1,
        budget_fraction=0.8,
        n_gpm_intervals=horizon(quick),
        seed=seed,
    )
    telemetry = res.telemetry
    ticks = telemetry.gpm_tick_indices()
    setpoints = telemetry["island_setpoint_frac"][ticks]
    actual = np.array([w.island_power_frac for w in telemetry.windows])

    result = ExperimentResult(
        experiment="fig07",
        description="GPM power provisioning across 4 islands, 80% budget",
        headers=("island", "apps", "min share", "mean share", "max share"),
    )
    labels = [" + ".join(names) for names in MIX1.islands]
    for i in range(config.n_islands):
        result.add_row(
            f"island {i + 1}",
            labels[i],
            float(setpoints[:, i].min()),
            float(setpoints[:, i].mean()),
            float(setpoints[:, i].max()),
        )
    for i in range(config.n_islands):
        result.add_series(f"island {i + 1} provisioned", setpoints[:, i])
        result.add_series(f"island {i + 1} actual", actual[: len(ticks), i])
    result.add_series("sum of provisions", setpoints.sum(axis=1))
    result.notes.append(
        "provisions always sum to the distributable budget "
        f"({res.budget_fraction:.2f} minus the uncore share)"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
