"""Controller design analysis (Section II, Equations 9–13).

Reports the identified system gain, the pole-placement PID design, the
closed-loop poles (all strictly inside the unit circle — Equation 12's
stability statement), the analytic step-response robustness metrics, and
the stability range of the gain multiplier ``g`` (Equation 13: the paper
found its design stable for g up to ~2.1 of the nominal gain).
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..control.analysis import response_metrics, step_response
from ..control.pole_placement import closed_loop
from ..core.calibration import default_calibration
from ..rng import DEFAULT_SEED
from .common import ExperimentResult

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    cal = default_calibration(config, seed=seed)
    gains = cal.pid_gains

    loop = closed_loop(cal.system_gain, gains)
    poles = np.sort_complex(loop.poles())
    response = step_response(loop, n_steps=12 if quick else 40)
    metrics = response_metrics(response, reference=1.0, tolerance=0.02)

    result = ExperimentResult(
        experiment="controller-design",
        description="PID pole placement on the identified island model",
        headers=("quantity", "value"),
    )
    result.add_row("system gain a (frac max power / GHz)", cal.system_gain)
    result.add_row("K_P", gains.kp)
    result.add_row("K_I", gains.ki)
    result.add_row("K_D", gains.kd)
    for i, pole in enumerate(poles):
        result.add_row(f"closed-loop pole {i + 1}", f"{pole:.4f} (|.|={abs(pole):.3f})")
    result.add_row("analytic step overshoot", metrics.max_overshoot)
    result.add_row("analytic settling (invocations, 2% band)", metrics.settling_steps)
    result.add_row("analytic steady-state error", metrics.steady_state_error)
    result.add_row("stability gain limit g (paper: ~2.1)", cal.stability_limit)
    result.add_series("step response", response)
    result.notes.append(
        "all closed-loop poles lie strictly inside the unit circle; the "
        "loop stays stable for true gains up to g x the design gain"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
