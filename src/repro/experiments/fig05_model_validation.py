"""Figure 5: actual power vs open-loop model prediction.

The paper validates ``P(t+1) = P(t) + a * df(t)`` by running the held-out
benchmark (bodytrack) on every island under white-noise DVFS and
comparing the measured power trace against the model's one-step-ahead
prediction; the reported error is well within 10%.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..control.identification import predict_power, prediction_error
from ..core.calibration import (
    WhiteNoiseDVFSScheme,
    _excitation_run,
    _homogeneous_mix,
    default_calibration,
)
from ..rng import DEFAULT_SEED
from .common import ExperimentResult, horizon

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    cal = default_calibration(config, seed=seed)

    # Fresh white-noise run of the held-out benchmark on all islands.
    mix = _homogeneous_mix(config, cal.holdout)
    run_result = _excitation_run(config, mix, seed + 1, horizon(quick))
    freq = run_result.telemetry["island_frequency_ghz"]
    power = run_result.telemetry["island_power_frac"]

    result = ExperimentResult(
        experiment="fig05",
        description=(
            f"one-step model prediction vs actual power "
            f"({cal.holdout} under white-noise DVFS, a={cal.system_gain:.4f})"
        ),
        headers=("island", "mean |error| (one-step, relative)"),
    )
    errors = []
    for island in range(config.n_islands):
        err = prediction_error(
            power[:, island], np.diff(freq[:, island]), cal.system_gain
        )
        errors.append(err)
        result.add_row(f"island {island + 1}", err)
    result.add_row("mean", float(np.mean(errors)))

    # The Figure 5 trace itself: actual vs open-loop rollout on island 0.
    rollout = predict_power(
        float(power[0, 0]), np.diff(freq[:, 0]), cal.system_gain
    )
    result.add_series("actual power (island 1)", power[:, 0])
    result.add_series("model rollout (island 1)", rollout)
    result.notes.append(
        "paper: average prediction error well within 10%; the rollout "
        "series shows the open-loop model tracking the measured trace"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
