"""Figure 14: performance degradation over time at a 100% budget.

With the budget at 100% of maximum chip power, the controllers should be
nearly invisible: the paper reports an average degradation of ~0.9%
(maximum ~2.2%) coming only from slight provisioning mispredictions and
actuation overheads.  This experiment compares per-GPM-window throughput
against the paired no-management run (same seed = identical workload
streams, so the comparison is exact).
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..core.metrics import performance_degradation_series
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, horizon, reference_run

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    reference = reference_run(config, MIX1, seed=seed, n_gpm=n_gpm)
    res = run_cpm(
        config, mix=MIX1, budget_fraction=1.0, n_gpm_intervals=n_gpm, seed=seed
    )
    series = performance_degradation_series(res, reference)

    result = ExperimentResult(
        experiment="fig14",
        description="per-interval degradation over time at a 100% budget",
        headers=("metric", "value"),
    )
    result.add_row("average degradation", float(series.mean()))
    result.add_row("maximum degradation", float(series.max()))
    result.add_row("minimum degradation", float(series.min()))
    result.add_series("degradation per GPM window", series)
    result.notes.append(
        "paper: ~0.9% average (max ~2.2%) from provisioning mispredictions"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
