"""Figure 8: per-island target vs actual power over time.

The paper's four panels show 10 GPM invocations (x10 PIC invocations
each) per island: the GPM moves the target every 5 ms and the PIC tracks
it at 0.5 ms granularity.  This experiment reports the per-island
tracking error statistics and emits the same target/actual series.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..rng import DEFAULT_SEED
from ..workloads.mixes import MIX1
from .common import ExperimentResult, WARMUP_INTERVALS, horizon

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = DEFAULT_CONFIG
    res = run_cpm(
        config,
        mix=MIX1,
        budget_fraction=0.8,
        n_gpm_intervals=horizon(quick),
        seed=seed,
    )
    telemetry = res.telemetry
    target = telemetry["island_setpoint_frac"]
    actual = telemetry["island_power_frac"]
    skip = min(WARMUP_INTERVALS, target.shape[0] // 3)

    result = ExperimentResult(
        experiment="fig08",
        description="per-island target vs actual power (8 cores, 2/island)",
        headers=(
            "island",
            "mean |actual-target| / target",
            "p95 |actual-target| / target",
        ),
    )
    for i in range(config.n_islands):
        rel = np.abs(actual[skip:, i] - target[skip:, i]) / np.maximum(
            target[skip:, i], units.EPS
        )
        result.add_row(f"island {i + 1}", float(rel.mean()), float(np.percentile(rel, 95)))
        result.add_series(f"island {i + 1} target", target[:, i])
        result.add_series(f"island {i + 1} actual", actual[:, i])
    result.notes.append(
        "the PIC tracks each GPM-provisioned target between successive "
        "GPM invocations; see fig09 for the within-window robustness "
        "metrics"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
