"""Figure 16: sensitivity to the application mix (Mix-1 vs Mix-2).

Mix-2 schedules homogeneous islands (C,C / M,M): slowing an island with
two memory-bound applications barely hurts, so the manager can shift
budget toward the compute-bound islands and overall degradation drops
relative to Mix-1's paired C,M islands.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.cpm import CPMScheme
from ..core.metrics import performance_degradation
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_many
from ..workloads.mixes import MIX1, MIX2
from .common import ExperimentResult, horizon, reference_run

__all__ = ["BUDGETS", "run"]

BUDGETS = (0.90, 0.85, 0.80, 0.75)


def run(
    seed: int = DEFAULT_SEED, quick: bool = False, jobs: int | None = 1
) -> ExperimentResult:
    config = DEFAULT_CONFIG
    n_gpm = horizon(quick)
    budgets = (0.80,) if quick else BUDGETS

    result = ExperimentResult(
        experiment="fig16",
        description="degradation for Mix-1 (C,M islands) vs Mix-2 (homogeneous)",
        headers=("budget", "Mix-1 degradation", "Mix-2 degradation"),
    )
    grid = [(budget, mix) for budget in budgets for mix in (MIX1, MIX2)]
    requests = [
        RunRequest(
            config=config,
            scheme_factory=CPMScheme,
            mix=mix,
            budget_fraction=budget,
            seed=seed,
            n_gpm_intervals=n_gpm,
        )
        for budget, mix in grid
    ]
    results = run_many(requests, jobs=jobs)
    curves: dict[str, list[float]] = {"Mix-1": [], "Mix-2": []}
    rows: dict[float, list] = {}
    for (budget, mix), res in zip(grid, results):
        reference = reference_run(config, mix, seed=seed, n_gpm=n_gpm)
        deg = performance_degradation(res, reference)
        rows.setdefault(budget, [budget]).append(deg)
        curves[mix.name].append(deg)
    for budget in budgets:
        result.add_row(*rows[budget])
    for name, values in curves.items():
        result.add_series(name, np.asarray(values))
    result.notes.append(
        "paper: Mix-2 degrades less — lowering the frequency of an island "
        "with two memory-bound applications does not hurt performance as "
        "much as slowing a mixed island"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
