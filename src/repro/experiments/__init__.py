"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(seed=..., quick=False) -> ExperimentResult``
and is executable (``python -m repro.experiments.fig12_perf_degradation``)
to print the rows/series the paper reports.  The per-experiment index in
DESIGN.md maps each module to its figure; EXPERIMENTS.md records
paper-vs-measured values.

``quick=True`` shrinks horizons for CI-speed smoke runs; the benchmark
harness under ``benchmarks/`` runs the full versions via
pytest-benchmark.
"""

from .common import ExperimentResult

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult"]

#: Module names of every experiment, in paper order.  Used by the test
#: suite and the ``benchmarks/`` harness to enumerate coverage.
ALL_EXPERIMENTS = (
    "fig04_controller_design",
    "fig05_model_validation",
    "fig06_power_utilization",
    "fig07_provisioning",
    "fig08_island_tracking",
    "fig09_pic_tracking",
    "fig10_chip_tracking",
    "fig11_budget_curves",
    "fig12_perf_degradation",
    "fig13_island_size",
    "fig14_perf_time",
    "fig15_scalability",
    "fig16_mix_sensitivity",
    "fig17_interval_sensitivity",
    "fig18_thermal",
    "fig19_variation",
    "tables",
    "chaos",
)
