"""Figures 19/20 (§IV-B): variation-aware power provisioning.

The CMP's islands have skewed leakage (islands 1–3 leak 1.2x / 1.5x / 2x
as much as island 4).  The variation-aware policy greedily searches each
island's provisioning level for the minimum energy-per-instruction,
parking leaky islands at lower V/F.  Reported per island, relative to
the performance-aware policy on the same platform:

* percentage throughput degradation (the cost), and
* percentage power/throughput improvement (the win — largest on the
  leakiest islands).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import units
from ..config import DEFAULT_CONFIG
from ..core.cpm import run_cpm
from ..gpm.performance_aware import PerformanceAwarePolicy
from ..gpm.variation_aware import VariationAwarePolicy
from ..rng import DEFAULT_SEED
from ..variation.leakage_variation import PAPER_ISLAND_MULTIPLIERS
from ..workloads.mixes import MIX1
from .common import ExperimentResult, horizon

__all__ = ["BUDGET", "run"]

#: The budget must bind (sit below the chip's natural draw) for the
#: greedy search's provisioning levels to have any effect on the islands.
BUDGET = 0.78


def _island_stats(result) -> tuple[np.ndarray, np.ndarray]:
    """(throughput BIPS, power/throughput W-per-BIPS) per island."""
    windows = result.telemetry.windows[2:]
    bips = np.mean([w.island_bips for w in windows], axis=0)
    energy = np.sum([w.island_energy_j for w in windows], axis=0)
    duration = sum(w.duration_s for w in windows)
    power_w = energy / duration
    return bips, power_w / np.maximum(bips, units.EPS)


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    config = dataclasses.replace(
        DEFAULT_CONFIG, island_leakage_multipliers=PAPER_ISLAND_MULTIPLIERS
    )
    n_gpm = horizon(quick) * 3  # the greedy search needs room to converge

    perf = run_cpm(
        config,
        mix=MIX1,
        policy=PerformanceAwarePolicy(),
        budget_fraction=BUDGET,
        n_gpm_intervals=n_gpm,
        seed=seed,
    )
    variation = run_cpm(
        config,
        mix=MIX1,
        policy=VariationAwarePolicy(),
        budget_fraction=BUDGET,
        n_gpm_intervals=n_gpm,
        seed=seed,
    )

    perf_bips, perf_ppt = _island_stats(perf)
    var_bips, var_ppt = _island_stats(variation)
    throughput_degradation = 1.0 - var_bips / perf_bips
    ppt_improvement = 1.0 - var_ppt / perf_ppt

    result = ExperimentResult(
        experiment="fig19",
        description="variation-aware vs performance-aware per island "
        f"(leakage multipliers {PAPER_ISLAND_MULTIPLIERS})",
        headers=(
            "island",
            "leakage x",
            "throughput degradation",
            "power/throughput improvement",
        ),
    )
    for i in range(config.n_islands):
        result.add_row(
            f"island {i + 1}",
            PAPER_ISLAND_MULTIPLIERS[i],
            float(throughput_degradation[i]),
            float(ppt_improvement[i]),
        )
    result.add_row(
        "chip",
        float("nan"),
        1.0 - float(var_bips.sum() / perf_bips.sum()),
        1.0
        - float(
            (var_ppt * var_bips).sum()
            / var_bips.sum()
            / ((perf_ppt * perf_bips).sum() / perf_bips.sum())
        ),
    )
    result.add_series("variation-aware setpoints (last)",
                      variation.telemetry["island_setpoint_frac"][-1])
    result.notes.append(
        "paper: the greedy EPI search operates leakier islands at lower "
        "V/F — power/throughput improves most where leakage is worst, at "
        "a modest throughput cost"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
