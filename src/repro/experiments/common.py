"""Shared infrastructure for the experiment modules.

Keeps experiments terse: a result container with a uniform renderer,
memoized reference (no-management) runs, and the standard run lengths.
Reference runs are cached per (config, mix, seed, horizon) because nearly
every figure needs the same unmanaged baseline and the workload streams
are seed-deterministic, so sharing is exact, not approximate.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.no_management import NoManagementScheme
from ..cmpsim.simulator import Simulation, SimulationResult
from ..config import CMPConfig
from ..reporting import format_series, format_table
from ..rng import DEFAULT_SEED
from ..workloads.mixes import Mix, mix_for_config

__all__ = [
    "ExperimentResult",
    "FULL_HORIZON",
    "QUICK_HORIZON",
    "WARMUP_INTERVALS",
    "horizon",
    "main",
    "reference_run",
]

#: Default GPM horizons: full runs for the benchmark harness, quick runs
#: for smoke tests.
FULL_HORIZON = 25
QUICK_HORIZON = 6

#: Intervals skipped before computing steady metrics (controller start-up).
WARMUP_INTERVALS = 20


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform output of one experiment run.

    Frozen: the identity of a result (which experiment, what headers) is
    fixed at construction; ``add_row``/``add_series`` grow the *contents*
    of the held containers, which freezing deliberately still allows.
    """

    experiment: str
    description: str
    headers: Sequence[str] = ()
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_series(self, name: str, values) -> None:
        self.series[name] = np.asarray(values, dtype=float)

    def render(self, width: int = 60) -> str:
        parts = [f"== {self.experiment} — {self.description} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series(self.series, width=width))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def horizon(quick: bool) -> int:
    return QUICK_HORIZON if quick else FULL_HORIZON


@functools.lru_cache(maxsize=64)
def _reference_run_cached(
    config: CMPConfig, mix: Mix, seed: int, n_gpm: int
) -> SimulationResult:
    sim = Simulation(
        config, NoManagementScheme(), mix=mix, budget_fraction=1.0, seed=seed
    )
    return sim.run(n_gpm)


def reference_run(
    config: CMPConfig,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
    n_gpm: int = FULL_HORIZON,
) -> SimulationResult:
    """Memoized no-management run (the performance/power reference)."""
    return _reference_run_cached(config, mix_for_config(config, mix), seed, n_gpm)


def main(run_fn, *, quick: bool | None = None) -> None:
    """Standard ``python -m`` entry: run and print one experiment.

    Honors a ``--quick`` flag on the command line when ``quick`` is not
    forced by the caller.
    """
    if quick is None:
        import sys

        quick = "--quick" in sys.argv[1:]
    result = run_fn(quick=quick)
    print(result.render())
