"""Shared infrastructure for the experiment modules.

Keeps experiments terse: a result container with a uniform renderer,
memoized reference (no-management) runs, and the standard run lengths.
Reference runs are cached per (config, mix, seed, horizon) because nearly
every figure needs the same unmanaged baseline and the workload streams
are seed-deterministic, so sharing is exact, not approximate.  The memo
is two-level: an in-process ``lru_cache`` in front of the on-disk result
cache of :mod:`repro.runner`, so the baseline survives across processes
and sessions instead of being recomputed in every worker (set
``REPRO_CACHE=0`` to disable the disk level).
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.no_management import NoManagementScheme
from ..cmpsim.simulator import SimulationResult
from ..config import CMPConfig
from ..reporting import format_series, format_table
from ..rng import DEFAULT_SEED
from ..runner import RunRequest, run_one
from ..workloads.mixes import Mix, mix_for_config

__all__ = [
    "ExperimentResult",
    "FULL_HORIZON",
    "QUICK_HORIZON",
    "WARMUP_INTERVALS",
    "horizon",
    "main",
    "reference_run",
]

#: Default GPM horizons: full runs for the benchmark harness, quick runs
#: for smoke tests.
FULL_HORIZON = 25
QUICK_HORIZON = 6

#: Intervals skipped before computing steady metrics (controller start-up).
WARMUP_INTERVALS = 20


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform output of one experiment run.

    Frozen: the identity of a result (which experiment, what headers) is
    fixed at construction; ``add_row``/``add_series`` grow the *contents*
    of the held containers, which freezing deliberately still allows.
    """

    experiment: str
    description: str
    headers: Sequence[str] = ()
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_series(self, name: str, values) -> None:
        self.series[name] = np.asarray(values, dtype=float)

    def render(self, width: int = 60) -> str:
        parts = [f"== {self.experiment} — {self.description} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series(self.series, width=width))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def horizon(quick: bool) -> int:
    return QUICK_HORIZON if quick else FULL_HORIZON


@functools.lru_cache(maxsize=64)
def _reference_run_cached(
    config: CMPConfig, mix: Mix, seed: int, n_gpm: int
) -> SimulationResult:
    request = RunRequest(
        config=config,
        scheme_factory=NoManagementScheme,
        mix=mix,
        budget_fraction=1.0,
        seed=seed,
        n_gpm_intervals=n_gpm,
    )
    return run_one(request, cache_dir="auto")


def reference_run(
    config: CMPConfig,
    mix: Mix | None = None,
    seed: int = DEFAULT_SEED,
    n_gpm: int = FULL_HORIZON,
) -> SimulationResult:
    """Memoized no-management run (the performance/power reference)."""
    return _reference_run_cached(config, mix_for_config(config, mix), seed, n_gpm)


def main(run_fn, *, quick: bool | None = None) -> None:
    """Standard ``python -m`` entry: run and print one experiment.

    Honors ``--quick`` and ``--jobs N`` command-line flags when not
    forced by the caller; ``--jobs`` is forwarded only to experiments
    whose ``run`` accepts it (those built on independent runs).
    """
    import sys

    argv = sys.argv[1:]
    if quick is None:
        quick = "--quick" in argv
    kwargs: dict = {"quick": quick}
    if "--jobs" in argv:
        jobs_value = argv[argv.index("--jobs") + 1]
        jobs = None if jobs_value == "all" else int(jobs_value)
        if "jobs" in inspect.signature(run_fn).parameters:
            kwargs["jobs"] = jobs
        else:
            print(
                f"note: {getattr(run_fn, '__module__', 'experiment')} does "
                "not support --jobs; running serially",
                file=sys.stderr,
            )
    result = run_fn(**kwargs)
    print(result.render())
