"""Figure 6: power vs processor utilization, per benchmark.

For each of the eight PARSEC applications, the paper plots island power
against measured utilization over a DVFS-exercised run and fits a line
``P = k0 U + k1``; the average coefficient of determination is ~0.96,
with the memory-bound kernels (canneal, vips) showing the steepest
slopes.  This experiment reproduces the fits from the calibration runs.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_CONFIG
from ..core.calibration import default_calibration
from ..rng import DEFAULT_SEED
from ..workloads.parsec import SHORT_NAMES
from .common import ExperimentResult

__all__ = ["run"]


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> ExperimentResult:
    cal = default_calibration(DEFAULT_CONFIG, seed=seed)

    result = ExperimentResult(
        experiment="fig06",
        description="power = k0*utilization + k1 linear fits per benchmark",
        headers=("benchmark", "k0 (slope)", "k1", "R^2"),
    )
    r2 = []
    for name in sorted(cal.benchmark_transducers):
        t = cal.benchmark_transducers[name]
        result.add_row(SHORT_NAMES.get(name, name), t.k0, t.k1, t.r_squared)
        r2.append(t.r_squared)
    result.add_row("average", float("nan"), float("nan"), float(np.mean(r2)))
    result.notes.append(
        "paper: average R^2 = 0.96; memory-bound kernels (canneal, vips) "
        "have the steepest slopes"
    )
    return result


if __name__ == "__main__":
    from .common import main

    main(run)
