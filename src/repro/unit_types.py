"""Machine-checkable physical-unit annotations (the DIM vocabulary).

:mod:`repro.units` states the library's unit conventions as prose and
named constants; this module turns them into *annotations* that the
static dimensional-analysis pass (:mod:`repro.lintkit.dimensions`)
verifies across call boundaries.  Each alias is an ordinary ``float`` (or
``numpy.ndarray``) as far as the runtime and mypy are concerned —
``Annotated`` metadata is invisible to both — but lintkit reads the
:class:`Unit` marker and propagates it through assignments, arithmetic
and calls::

    from repro.unit_types import GigaHz, Seconds, Watts

    def cycles_at(latency_seconds: Seconds, frequency_ghz: GigaHz) -> float:
        ...

Three spellings exist per quantity so signatures stay honest about their
value shapes: the bare name annotates a scalar ``float``, ``*Like``
annotates the scalar-or-array unions the vectorized models accept, and
``*Array`` annotates values that are always ``numpy`` arrays.  All three
carry the same :class:`Unit` symbol, so the checker treats them alike.

The rule catalogue (DIM001–DIM005) and suppression guidance live in
``docs/INVARIANTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated

import numpy as np

__all__ = [
    "Bips",
    "BipsArray",
    "BipsLike",
    "Celsius",
    "CelsiusArray",
    "CelsiusLike",
    "GigaHz",
    "GigaHzArray",
    "GigaHzLike",
    "Hertz",
    "Joules",
    "JoulesArray",
    "JoulesLike",
    "Microseconds",
    "Milliseconds",
    "Nanojoules",
    "Nanoseconds",
    "PowerFraction",
    "PowerFractionArray",
    "PowerFractionLike",
    "Seconds",
    "SecondsArray",
    "SecondsLike",
    "Unit",
    "Volts",
    "VoltsArray",
    "VoltsLike",
    "Watts",
    "WattsArray",
    "WattsLike",
]


@dataclass(frozen=True)
class Unit:
    """Annotation marker naming the physical unit a value is expressed in.

    ``symbol`` is the key into the dimension table in
    :mod:`repro.lintkit.dimensions`; use one of the symbols below rather
    than inventing new ones ad hoc, so the checker knows the quantity and
    scale.
    """

    symbol: str


# --- time ------------------------------------------------------------------
Seconds = Annotated[float, Unit("s")]
SecondsLike = Annotated[float | np.ndarray, Unit("s")]
SecondsArray = Annotated[np.ndarray, Unit("s")]
Milliseconds = Annotated[float, Unit("ms")]
Microseconds = Annotated[float, Unit("us")]
Nanoseconds = Annotated[float, Unit("ns")]

# --- frequency -------------------------------------------------------------
GigaHz = Annotated[float, Unit("GHz")]
GigaHzLike = Annotated[float | np.ndarray, Unit("GHz")]
GigaHzArray = Annotated[np.ndarray, Unit("GHz")]
Hertz = Annotated[float, Unit("Hz")]

# --- electrical ------------------------------------------------------------
Volts = Annotated[float, Unit("V")]
VoltsLike = Annotated[float | np.ndarray, Unit("V")]
VoltsArray = Annotated[np.ndarray, Unit("V")]

# --- power -----------------------------------------------------------------
Watts = Annotated[float, Unit("W")]
WattsLike = Annotated[float | np.ndarray, Unit("W")]
WattsArray = Annotated[np.ndarray, Unit("W")]

#: Power expressed as a *fraction of maximum chip power* — the paper's
#: convention for budgets, set-points and reported power series.  A
#: distinct quantity from absolute watts: mixing the two is exactly the
#: bug class DIM003 exists to catch.
PowerFraction = Annotated[float, Unit("frac")]
PowerFractionLike = Annotated[float | np.ndarray, Unit("frac")]
PowerFractionArray = Annotated[np.ndarray, Unit("frac")]

# --- temperature -----------------------------------------------------------
Celsius = Annotated[float, Unit("degC")]
CelsiusLike = Annotated[float | np.ndarray, Unit("degC")]
CelsiusArray = Annotated[np.ndarray, Unit("degC")]

# --- energy ----------------------------------------------------------------
Joules = Annotated[float, Unit("J")]
JoulesLike = Annotated[float | np.ndarray, Unit("J")]
JoulesArray = Annotated[np.ndarray, Unit("J")]
Nanojoules = Annotated[float, Unit("nJ")]

# --- throughput ------------------------------------------------------------
Bips = Annotated[float, Unit("BIPS")]
BipsLike = Annotated[float | np.ndarray, Unit("BIPS")]
BipsArray = Annotated[np.ndarray, Unit("BIPS")]
