"""The per-island controller: PID + transducer + DVFS actuator.

One :class:`PerIslandController` caps one island's power at the set-point
the GPM provisioned.  Per invocation (every ``T_local``):

1. the island's measured *utilization* is transduced to a power estimate
   (``P = k0 U + k1``, the fitted line of Figure 6);
2. the tracking error against the set-point feeds the PID, producing a
   frequency *delta* (the plant model's control input ``d(t)``);
3. the actuator applies the delta, clamped to the DVFS ladder, and the
   PID is told about any clamping so its integrator does not wind up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..control.pid import DiscretePID, PIDGains
from ..power.transducer import LinearTransducer
from ..unit_types import GigaHz, PowerFraction
from .actuator import DVFSActuator

__all__ = ["PICInvocation", "PerIslandController"]


@dataclass(frozen=True)
class PICInvocation:
    """Telemetry of one controller invocation."""

    setpoint: PowerFraction
    utilization: float
    sensed_power: PowerFraction
    error: PowerFraction
    frequency_delta: GigaHz
    applied_frequency: GigaHz


class PerIslandController:
    """The second-tier (local) controller for one voltage/frequency island."""

    def __init__(
        self,
        gains: PIDGains,
        transducer: LinearTransducer,
        actuator: DVFSActuator,
        max_step_ghz: GigaHz = 1.0,
        sensor_smoothing: float = 0.5,
    ) -> None:
        """
        Parameters
        ----------
        sensor_smoothing:
            EWMA weight on the newest utilization sample (1.0 = raw
            samples).  The transducer's residual noise would otherwise be
            re-injected into island power as frequency dithering; a real
            PMU's counters are likewise averaged before use.
        """
        if max_step_ghz <= 0:
            raise ValueError("max_step_ghz must be positive")
        if not 0.0 < sensor_smoothing <= 1.0:
            raise ValueError("sensor_smoothing must be in (0, 1]")
        self.pid = DiscretePID(gains, output_limits=(-max_step_ghz, max_step_ghz))
        self.transducer = transducer
        self.actuator = actuator
        self.sensor_smoothing = sensor_smoothing
        self._utilization_state: float | None = None

    @property
    def frequency(self) -> GigaHz:
        """The island frequency this controller currently commands."""
        return self.actuator.frequency

    def invoke(self, setpoint: PowerFraction, utilization: float) -> PICInvocation:
        """One ``T_local`` invocation; returns what happened.

        ``setpoint`` is the GPM-provisioned island power (fraction of max
        chip power); ``utilization`` is the island's measured utilization
        over the previous interval.
        """
        if self._utilization_state is None:
            self._utilization_state = utilization
        else:
            s = self.sensor_smoothing
            self._utilization_state = (
                s * utilization + (1.0 - s) * self._utilization_state
            )
        sensed = float(self.transducer(self._utilization_state))
        error = setpoint - sensed
        delta = self.pid.step(error)
        applied = self.actuator.apply_delta(delta)
        # Downstream saturation (ladder bounds) must reach the PID too.
        self.pid.notify_actuator_saturation(self.actuator.last_saturation)
        return PICInvocation(
            setpoint=setpoint,
            utilization=utilization,
            sensed_power=sensed,
            error=error,
            frequency_delta=delta,
            applied_frequency=applied,
        )

    def reset(self, frequency_ghz: GigaHz | None = None) -> None:
        """Clear controller state and re-seat the actuator."""
        self.pid.reset()
        self.actuator.reset(frequency_ghz)
        self._utilization_state = None
