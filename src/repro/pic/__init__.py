"""PIC — the local Per-Island Controller tier (second tier of CPM).

Each island gets one :class:`~repro.pic.controller.PerIslandController`:
a pole-placement-designed PID that tracks the GPM-provisioned power
set-point by scaling the island's voltage/frequency, observing power
indirectly through the utilization transducer of Figure 6.
"""

from .actuator import DVFSActuator
from .controller import PerIslandController, PICInvocation
from .guard import GuardedPerIslandController, SensorGuardConfig
from .sensor import CallbackSensor

__all__ = [
    "CallbackSensor",
    "DVFSActuator",
    "GuardedPerIslandController",
    "PerIslandController",
    "PICInvocation",
    "SensorGuardConfig",
]
