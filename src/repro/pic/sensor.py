"""Sensors for the per-island control loop.

The PIC's measurable output is processor utilization (a hardware
performance counter), not power; :class:`CallbackSensor` adapts any
measurement source to the :class:`repro.control.loop.Sensor` protocol so
island controllers can also be wired into the generic feedback loop.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["CallbackSensor"]


class CallbackSensor:
    """A :class:`~repro.control.loop.Sensor` reading from a callable.

    The CPM scheme reads island utilization straight from the simulator's
    last interval; standalone loop compositions (examples, tests) wrap
    whatever they have in this adapter.
    """

    def __init__(self, source: Callable[[], float]) -> None:
        self._source = source

    def read(self) -> float:
        return float(self._source())
