"""DVFS actuator: turns a frequency command into an applied setting.

The actuator enforces the physics the controller cannot see: frequency is
bounded by the ladder and, in quantized mode, restricted to its discrete
points.  It reports the clamping direction so the PID's anti-windup knows
when its command was cut short.
"""

from __future__ import annotations

from ..cmpsim.dvfs import DVFSTable
from ..unit_types import GigaHz

__all__ = ["DVFSActuator"]


class DVFSActuator:
    """Stateful frequency knob for one island."""

    def __init__(
        self,
        table: DVFSTable,
        quantized: bool = False,
        initial_frequency: GigaHz | None = None,
    ) -> None:
        self.table = table
        self.quantized = quantized
        f0 = table.f_max if initial_frequency is None else table.clamp(initial_frequency)
        if quantized:
            f0 = table.quantize(f0)
        self.frequency: GigaHz = float(f0)
        #: +1 when the last command was clamped from above, -1 from below.
        self.last_saturation = 0

    def apply_delta(self, delta_ghz: GigaHz) -> GigaHz:
        """Shift the operating frequency by ``delta_ghz``; returns applied f."""
        return self.apply(self.frequency + delta_ghz)

    def apply(self, frequency_ghz: GigaHz) -> GigaHz:
        """Set an absolute frequency request; returns the applied value."""
        requested = frequency_ghz
        applied = self.table.clamp(requested)
        if requested > applied:
            self.last_saturation = 1
        elif requested < applied:
            self.last_saturation = -1
        else:
            self.last_saturation = 0
        if self.quantized:
            applied = self.table.quantize(applied)
        self.frequency = float(applied)
        return self.frequency

    def reset(self, frequency_ghz: GigaHz | None = None) -> None:
        """Return to an initial state (default: top of the ladder)."""
        f = self.table.f_max if frequency_ghz is None else frequency_ghz
        self.frequency = self.table.clamp(f)
        if self.quantized:
            self.frequency = self.table.quantize(self.frequency)
        self.last_saturation = 0
