"""Sensor guard: fault detection and safe-mode degradation for the PIC.

The paper's robustness story is analytic (Eq. 13 bounds the tolerable
gain error); nothing in it *detects* a failed sensor.  A stuck or dead
utilization counter therefore silently drives an island to the wrong V/F
for the rest of the run — or, with a NaN reading, poisons the PID state
outright.  This module adds the missing discipline as a guard wrapped
around :class:`~repro.pic.controller.PerIslandController`:

1. **validate** every utilization reading — finite, inside a plausible
   range, and not stuck (a rolling window whose spread collapses to
   nothing is a dead counter, because real utilization always dithers);
2. on an implausible reading, enter **hold** mode: the PID runs on the
   last-known-good input and its integrator is frozen (the same
   anti-windup reasoning as actuator saturation — integrating a phantom
   error winds the accumulator up);
3. after ``failsafe_after`` consecutive bad samples, enter **fail-safe**
   mode: the island is clamped to a fail-safe frequency floor, bounding
   its power at the island's minimum regardless of what the sensor says;
4. once ``rearm_after`` consecutive plausible readings arrive, **re-arm**:
   unfreeze the integrator and resume closed-loop tracking.

Every transition is recorded in a
:class:`~repro.cmpsim.telemetry.ResilienceLog` so tests and the chaos
harness (``repro chaos``) can assert on detection and recovery latency.
The guard is pure bookkeeping — no randomness, no clock — so guarded
runs stay bit-identical across ``jobs=N``.  See ``docs/ROBUSTNESS.md``
for the full state machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..cmpsim.telemetry import ResilienceLog
from ..control.pid import PIDGains
from ..power.transducer import LinearTransducer
from ..unit_types import GigaHz, PowerFraction
from ..units import EPS
from .actuator import DVFSActuator
from .controller import PerIslandController, PICInvocation

__all__ = [
    "MODE_FAILSAFE",
    "MODE_HOLD",
    "MODE_NOMINAL",
    "GuardedPerIslandController",
    "SensorGuardConfig",
]

#: Guard modes, in degradation order.
MODE_NOMINAL = "nominal"
MODE_HOLD = "hold"
MODE_FAILSAFE = "failsafe"


@dataclass(frozen=True)
class SensorGuardConfig:
    """Plausibility limits and state-machine thresholds for one sensor."""

    #: Plausible utilization range.  Utilization is a fraction of cycles;
    #: the ceiling leaves headroom for transducer calibration quirks.
    util_min: float = 0.0
    util_max: float = 1.5
    #: Rolling-window length for stuck detection.
    stuck_window: int = 6
    #: Maximum window spread (max - min) still considered stuck.  Real
    #: utilization dithers tick to tick; an exactly-repeated float is a
    #: dead counter.
    stuck_tolerance: float = EPS
    #: Consecutive bad samples before the island is clamped to the
    #: fail-safe frequency floor.
    failsafe_after: int = 8
    #: Consecutive plausible samples before the guard re-arms.
    rearm_after: int = 3
    #: Fail-safe frequency; ``None`` selects the DVFS ladder's floor.
    failsafe_frequency_ghz: GigaHz | None = None

    def __post_init__(self) -> None:
        if not self.util_min < self.util_max:
            raise ValueError("util_min must be below util_max")
        if self.stuck_window < 2:
            raise ValueError("stuck_window must be at least 2")
        if self.stuck_tolerance < 0:
            raise ValueError("stuck_tolerance must be non-negative")
        if self.failsafe_after < 1:
            raise ValueError("failsafe_after must be at least 1")
        if self.rearm_after < 1:
            raise ValueError("rearm_after must be at least 1")


class GuardedPerIslandController(PerIslandController):
    """A :class:`PerIslandController` that validates its own sensor.

    Drop-in replacement: same constructor plus the guard knobs, same
    ``invoke`` contract.  With plausible readings the behaviour is
    *bit-identical* to the unguarded controller — the guard only changes
    the trajectory once a reading fails validation.
    """

    def __init__(
        self,
        gains: PIDGains,
        transducer: LinearTransducer,
        actuator: DVFSActuator,
        max_step_ghz: GigaHz = 1.0,
        sensor_smoothing: float = 0.5,
        guard: SensorGuardConfig | None = None,
        log: ResilienceLog | None = None,
        island: int = 0,
    ) -> None:
        super().__init__(
            gains,
            transducer,
            actuator,
            max_step_ghz=max_step_ghz,
            sensor_smoothing=sensor_smoothing,
        )
        self.guard = guard if guard is not None else SensorGuardConfig()
        self.log = log if log is not None else ResilienceLog()
        self.island = island
        self.mode = MODE_NOMINAL
        self._recent: deque[float] = deque(maxlen=self.guard.stuck_window)
        self._bad_streak = 0
        self._good_streak = 0
        self._last_good: float | None = None

    # ------------------------------------------------------------------
    @property
    def failsafe_frequency(self) -> GigaHz:
        """The frequency the island is pinned to in fail-safe mode."""
        if self.guard.failsafe_frequency_ghz is not None:
            return self.actuator.table.clamp(self.guard.failsafe_frequency_ghz)
        return self.actuator.table.f_min

    def _classify(self, utilization: float) -> str | None:
        """Why ``utilization`` is implausible, or None if it passes.

        Order matters: a non-finite reading must never enter the stuck
        window (NaN would poison the spread comparison).
        """
        if not np.isfinite(utilization):
            return "nan"
        if not self.guard.util_min <= utilization <= self.guard.util_max:
            return "range"
        self._recent.append(utilization)
        if (
            len(self._recent) == self.guard.stuck_window
            and max(self._recent) - min(self._recent)
            <= self.guard.stuck_tolerance
        ):
            return "stuck"
        return None

    def _held_input(self, setpoint: PowerFraction) -> float:
        """The utilization safe mode runs on while the sensor is out.

        Last-known-good when one exists; otherwise the reading that makes
        the sensed power equal the set-point (zero error — hold the
        current operating point rather than chase a fabricated error).
        """
        if self._last_good is not None:
            return self._last_good
        t = self.transducer
        if abs(t.k0) < 1e-12:
            return 0.0
        return float((setpoint - t.k1) / t.k0)

    # ------------------------------------------------------------------
    def invoke(self, setpoint: PowerFraction, utilization: float) -> PICInvocation:
        verdict = self._classify(float(utilization))

        if verdict is None:
            self._bad_streak = 0
            self._last_good = float(utilization)
            if self.mode == MODE_NOMINAL:
                return super().invoke(setpoint, utilization)
            # Degraded but readings look healthy again: count toward
            # re-arm, keep safe-mode behaviour until the streak completes.
            self._good_streak += 1
            if self._good_streak >= self.guard.rearm_after:
                self.log.record("sensor_rearmed", island=self.island)
                self.mode = MODE_NOMINAL
                self.pid.unfreeze_integrator()
                self._good_streak = 0
                return super().invoke(setpoint, utilization)
        else:
            self._good_streak = 0
            self._bad_streak += 1
            self.log.count(f"sensor_bad_{verdict}")
            if self.mode == MODE_NOMINAL:
                self.mode = MODE_HOLD
                self.pid.freeze_integrator()
                self.log.record(
                    "sensor_fault_detected", island=self.island, detail=verdict
                )
            if (
                self.mode == MODE_HOLD
                and self._bad_streak >= self.guard.failsafe_after
            ):
                self.mode = MODE_FAILSAFE
                self.log.record(
                    "failsafe_entered", island=self.island, detail=verdict
                )

        held = self._held_input(setpoint)
        if self.mode == MODE_FAILSAFE:
            # Clamp to the floor: the island's power is then bounded by
            # its minimum no matter what the sensor claims.
            applied = self.actuator.apply(self.failsafe_frequency)
            sensed = float(self.transducer(held))
            return PICInvocation(
                setpoint=setpoint,
                utilization=held,
                sensed_power=sensed,
                error=setpoint - sensed,
                frequency_delta=0.0,
                applied_frequency=applied,
            )
        # Hold mode: closed loop on the stale input, integrator frozen.
        return super().invoke(setpoint, held)

    def reset(self, frequency_ghz: GigaHz | None = None) -> None:
        super().reset(frequency_ghz)
        self.mode = MODE_NOMINAL
        self._recent.clear()
        self._bad_streak = 0
        self._good_streak = 0
        self._last_good = None
