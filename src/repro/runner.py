"""Parallel execution engine for independent simulation runs.

Every figure in the paper is a sweep of mutually independent
:class:`~repro.cmpsim.simulator.Simulation` runs (budgets × mixes ×
schemes × seeds).  This module gives the sweep layer three things the
serial loops it replaces did not have:

* :func:`run_many` — fan a list of :class:`RunRequest`\\ s over a process
  pool, with results returned **in request order** regardless of worker
  scheduling.  Determinism is unchanged: every run's randomness is fixed
  by its request's seed, so ``jobs=4`` returns bit-identical results to
  ``jobs=1``.
* an on-disk result cache under ``.repro-cache/`` keyed by a content hash
  of everything that determines a run's outcome (config, mix, scheme
  name + parameters, budget, seed, horizon).  The cache is shared across
  processes and sessions — unlike the old per-process
  ``functools.lru_cache``, the no-management reference is computed once
  per machine, not once per worker.
* :func:`seed_stream` — deterministic per-run seed derivation for
  replicated runs of one configuration.

Cache layout and invalidation are documented in ``docs/PERFORMANCE.md``:
entries live at ``<cache_dir>/<key[:2]>/<key>.pkl``, a changed key field
is a miss (a new entry is written; stale entries are inert), and a
corrupt or truncated entry is deleted and recomputed, never crashed on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pathlib
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, is_dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Sequence

import numpy as np

from .cmpsim.simulator import PowerScheme, Simulation, SimulationResult
from .config import CMPConfig
from .rng import DEFAULT_SEED, role_seed
from .unit_types import PowerFraction
from .workloads.mixes import Mix

__all__ = [
    "CACHE_VERSION",
    "RunFailure",
    "RunRequest",
    "cache_key",
    "describe_scheme",
    "resolve_cache_dir",
    "resolve_jobs",
    "run_many",
    "run_one",
    "seed_stream",
]

#: Bump to invalidate every existing cache entry (simulation semantics
#: changed in a way the key cannot see).
CACHE_VERSION = 1

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_CACHE_DISABLE_ENV = "REPRO_CACHE"
_DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation run, fully specified.

    ``scheme_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.cmpsim.simulator.PowerScheme` (a scheme class works).
    It must be picklable (module-level callable, class, or
    ``functools.partial`` of one) for process-pool execution; closures
    force :func:`run_many` to fall back to serial.
    """

    config: CMPConfig
    scheme_factory: Callable[[], PowerScheme]
    mix: Mix | None = None
    budget_fraction: PowerFraction = 0.8
    seed: int = DEFAULT_SEED
    n_gpm_intervals: int = 25
    #: Overrides the scheme identity in the cache key.  Set this when the
    #: factory's introspected parameters do not capture everything that
    #: matters (or to share cache entries between equivalent factories).
    scheme_key: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.n_gpm_intervals < 1:
            raise ValueError("need at least one GPM interval")


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def _stable(obj: object, depth: int = 0) -> str:
    """A canonical string for ``obj`` that is stable across processes.

    ``repr`` alone is not enough: default object reprs embed memory
    addresses, dict iteration order is insertion order, and sets are
    unordered.  This walks the value recursively, sorting unordered
    containers and describing objects by class plus their (sorted)
    attributes.  It only needs to be *stable and discriminating*, not
    invertible.
    """
    if depth > 12:
        raise ValueError("value too deeply nested for a stable cache key")
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return repr(obj)
    if isinstance(obj, np.ndarray):
        return f"ndarray({obj.dtype.str},{obj.shape},{obj.tobytes().hex()})"
    if isinstance(obj, np.generic):
        return repr(obj.item())
    if isinstance(obj, (list, tuple)):
        inner = ",".join(_stable(x, depth + 1) for x in obj)
        return f"{type(obj).__name__}[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(_stable(x, depth + 1) for x in obj))
        return f"{type(obj).__name__}[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_stable(k, depth + 1)}:{_stable(v, depth + 1)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"dict[{inner}]"
    if isinstance(obj, type):
        return f"class:{obj.__module__}.{obj.__qualname__}"
    if callable(obj) and hasattr(obj, "__qualname__"):
        return f"callable:{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
    if is_dataclass(obj):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        return f"{type(obj).__qualname__}({_stable(fields, depth + 1)})"
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        public = {k: v for k, v in attrs.items() if not k.startswith("_")}
        return f"{type(obj).__qualname__}({_stable(public, depth + 1)})"
    return f"{type(obj).__qualname__}()"


def describe_scheme(factory: Callable[[], PowerScheme]) -> str:
    """Stable description of the scheme a factory builds: name + params.

    Builds one throwaway instance and canonicalizes its class and public
    attributes, so two factories producing identically-parameterized
    schemes share cache entries and any parameter change is a cache miss.
    """
    scheme = factory()
    return _stable(scheme)


def cache_key(request: RunRequest) -> str:
    """Content hash of everything that determines the run's outcome."""
    scheme_desc = (
        request.scheme_key
        if request.scheme_key is not None
        else describe_scheme(request.scheme_factory)
    )
    payload = "|".join(
        (
            f"v{CACHE_VERSION}",
            _stable(request.config),
            _stable(request.mix),
            scheme_desc,
            repr(float(request.budget_fraction)),
            repr(int(request.seed)),
            repr(int(request.n_gpm_intervals)),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
def resolve_cache_dir(
    cache_dir: str | pathlib.Path | None,
) -> pathlib.Path | None:
    """Resolve a caller's cache-dir argument to a usable path (or None).

    ``None`` disables caching.  The string ``"auto"`` selects
    ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` under the current
    directory; setting ``REPRO_CACHE=0`` force-disables even ``"auto"``.
    Anything else is used as the directory path directly.
    """
    if cache_dir is None:
        return None
    if cache_dir == "auto":
        if os.environ.get(_CACHE_DISABLE_ENV, "1") == "0":
            return None
        return pathlib.Path(
            os.environ.get(_CACHE_DIR_ENV, _DEFAULT_CACHE_DIR)
        )
    return pathlib.Path(cache_dir)


def _entry_path(cache_dir: pathlib.Path, key: str) -> pathlib.Path:
    return cache_dir / key[:2] / f"{key}.pkl"


def _cache_load(
    cache_dir: pathlib.Path, key: str
) -> SimulationResult | None:
    """Return the cached result for ``key``, or None.

    A corrupt, truncated, or wrong-version entry is deleted and treated
    as a miss — the cache must never turn into a crash.
    """
    path = _entry_path(cache_dir, key)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:  # lint: ignore[ROB001] - corruption is just a miss
        payload = None
    if (
        isinstance(payload, dict)
        and payload.get("version") == CACHE_VERSION
        and payload.get("key") == key
    ):
        return payload["result"]
    try:
        path.unlink()
    except OSError:
        pass
    return None


def _cache_store(
    cache_dir: pathlib.Path, key: str, result: SimulationResult
) -> None:
    """Atomically write ``result`` under ``key`` (best-effort).

    The temp-file + ``os.replace`` dance makes concurrent writers safe:
    readers only ever see complete entries, and the last writer of
    identical content wins.  Storage failures are swallowed — caching is
    an optimization, not a contract.
    """
    path = _entry_path(cache_dir, key)
    payload = {"version": CACHE_VERSION, "key": key, "result": result}
    tmp: pathlib.Path | None = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            # Make sure the bytes are durable before the rename publishes
            # them: without the fsync a crash can promote a zero-length
            # file to the final name on some filesystems.
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        # A failed write must not leave a stray temp file for every
        # future listing to trip over.
        if tmp is not None:
            try:
                tmp.unlink()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(
    request: RunRequest, cache_dir: str | pathlib.Path | None
) -> SimulationResult:
    """Run one request, consulting the cache (worker-side entry point)."""
    directory = resolve_cache_dir(cache_dir)
    key = cache_key(request) if directory is not None else None
    if directory is not None and key is not None:
        cached = _cache_load(directory, key)
        if cached is not None:
            return cached
    sim = Simulation(
        request.config,
        request.scheme_factory(),
        mix=request.mix,
        budget_fraction=request.budget_fraction,
        seed=request.seed,
    )
    result = sim.run(request.n_gpm_intervals)
    if directory is not None and key is not None:
        _cache_store(directory, key, result)
    return result


def run_one(
    request: RunRequest, cache_dir: str | pathlib.Path | None = None
) -> SimulationResult:
    """Execute one request in this process, using the cache if enabled."""
    return _execute(request, cache_dir)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None or 0 means "all cores"."""
    if jobs is None or jobs == 0:
        available = os.cpu_count() or 1
        return max(1, available)
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    return int(jobs)


def _picklable(requests: Sequence[RunRequest]) -> bool:
    try:
        pickle.dumps(requests)
        return True
    except Exception:  # lint: ignore[ROB001] - unpicklable means serial
        return False


# ----------------------------------------------------------------------
# Hardened execution: timeouts, retry, quarantine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunFailure:
    """Why one request produced no result.

    ``kind`` is ``"crash"`` (the worker process died), ``"timeout"``
    (it exceeded ``timeout_s`` and was terminated) or ``"error"`` (the
    simulation raised).  ``attempts`` counts executions including
    retries.
    """

    index: int
    kind: str
    attempts: int
    message: str = ""


def _retry_backoff_s(attempt: int) -> float:
    """Bounded exponential backoff before relaunching a crashed worker."""
    return min(0.05 * (2.0 ** attempt), 0.5)


def _supervised_worker(conn, request: RunRequest, cache_dir) -> None:
    """Entry point of one supervised worker process."""
    try:
        result = _execute(request, cache_dir)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:  # lint: ignore[CTL002] - pipe gone; exit = crash
            pass
    finally:
        conn.close()


def _run_supervised(
    request_list: Sequence[RunRequest],
    pending: Sequence[int],
    results: list,
    cache_dir,
    n_workers: int,
    timeout_s: float | None,
    retries: int,
    on_error: str,
    failures: list[RunFailure],
) -> None:
    """Fan ``pending`` over supervised worker processes.

    Unlike the :class:`ProcessPoolExecutor` fast path this owns each
    worker process directly, so a hung run can be ``terminate()``d on
    deadline and a crashed one relaunched — an executor would poison the
    whole pool instead (``BrokenProcessPool`` aborts every pending
    future).  Fills ``results`` in place; appends a :class:`RunFailure`
    per abandoned request.
    """
    ctx = multiprocessing.get_context()
    queue = deque(pending)
    attempts = {i: 0 for i in pending}
    #: reader-connection -> (request index, process, deadline or None)
    active: dict = {}

    def launch(index: int) -> None:
        reader, writer = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_supervised_worker,
            args=(writer, request_list[index], cache_dir),
            daemon=True,
        )
        proc.start()
        writer.close()
        attempts[index] += 1
        deadline = None
        if timeout_s is not None:
            deadline = time.monotonic() + timeout_s  # lint: ignore[DET003]
        active[reader] = (index, proc, deadline)

    def reap(reader) -> None:
        index, proc, _ = active.pop(reader)
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - stuck in interpreter exit
            proc.kill()
            proc.join()
        reader.close()

    def settle(index: int, kind: str, message: str) -> None:
        """A request failed for good, or goes back for another attempt."""
        retryable = kind in ("crash", "timeout") and attempts[index] <= retries
        if retryable:
            time.sleep(_retry_backoff_s(attempts[index] - 1))
            queue.append(index)
            return
        failure = RunFailure(
            index=index, kind=kind, attempts=attempts[index], message=message
        )
        if on_error == "raise":
            for other_reader, (_, proc, _) in list(active.items()):
                proc.terminate()
                reap(other_reader)
            raise RuntimeError(
                f"run_many: request {index} failed ({kind}) after "
                f"{attempts[index]} attempt(s): {message or 'no detail'}"
            )
        failures.append(failure)

    while queue or active:
        while queue and len(active) < n_workers:
            launch(queue.popleft())
        if not active:
            continue
        wait_s = 0.1
        if timeout_s is not None:
            now = time.monotonic()  # lint: ignore[DET003]
            soonest = min(d for (_, _, d) in active.values() if d is not None)
            wait_s = max(0.0, min(wait_s, soonest - now))
        ready = mp_connection.wait(list(active), timeout=wait_s)
        for reader in ready:
            index, proc, _ = active[reader]
            try:
                status, payload = reader.recv()
            except (EOFError, OSError):
                reap(reader)
                settle(index, "crash", f"worker exited with {proc.exitcode}")
                continue
            reap(reader)
            if status == "ok":
                results[index] = payload
            else:
                settle(index, "error", str(payload))
        if timeout_s is not None:
            now = time.monotonic()  # lint: ignore[DET003]
            for reader, (index, proc, deadline) in list(active.items()):
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    reap(reader)
                    settle(
                        index, "timeout", f"exceeded {timeout_s:g}s deadline"
                    )


def run_many(
    requests: Iterable[RunRequest],
    jobs: int | None = 1,
    cache_dir: str | pathlib.Path | None = None,
    *,
    timeout_s: float | None = None,
    retries: int = 0,
    on_error: str = "raise",
    failures: list[RunFailure] | None = None,
) -> list[SimulationResult]:
    """Execute independent runs, returning results in request order.

    ``jobs`` is the number of worker processes (``None``/``0`` = all
    cores, ``1`` = serial in-process).  Results are bit-identical across
    ``jobs`` settings: each run's outcome is a pure function of its
    request.  ``cache_dir`` enables the on-disk result cache (the string
    ``"auto"`` resolves via :func:`resolve_cache_dir`); workers share it,
    so duplicate requests in one sweep cost one simulation.

    Requests that cannot be pickled (e.g. lambda scheme factories) are
    executed serially with a warning rather than failing.

    Cache hits are resolved in the calling process before any workers
    start, so a fully-warm sweep never pays process-pool startup and a
    partially-warm one only fans out the misses.

    Hardening (all off by default — the fast executor path is unchanged
    when none are requested):

    * ``timeout_s`` — per-run wall-clock deadline; a run past it is
      terminated.  Needs worker processes, so it is not enforced on the
      serial path (a warning is emitted if it would be ignored).
    * ``retries`` — how many times a crashed or timed-out run is
      relaunched (with bounded exponential backoff) before being given
      up on.  Runs that merely *raise* are not retried: the simulator is
      deterministic, so a clean exception would only repeat.
    * ``on_error`` — ``"raise"`` (default) aborts the sweep on the first
      abandoned request; ``"quarantine"`` records a
      :class:`RunFailure` in ``failures``, leaves ``None`` in that
      result slot, and keeps going, so one poisoned request no longer
      costs the whole sweep.
    """
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"on_error must be 'raise' or 'quarantine', not {on_error!r}")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    if failures is None:
        failures = []
    hardened = (
        timeout_s is not None or retries > 0 or on_error == "quarantine"
    )
    request_list = list(requests)
    n_jobs = resolve_jobs(jobs)
    results: list[SimulationResult | None] = [None] * len(request_list)
    pending = list(range(len(request_list)))
    directory = resolve_cache_dir(cache_dir)
    if directory is not None:
        pending = []
        for i, request in enumerate(request_list):
            cached = _cache_load(directory, cache_key(request))
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
    pending_requests = [request_list[i] for i in pending]
    if (
        n_jobs > 1
        and len(pending_requests) > 1
        and not _picklable(pending_requests)
    ):
        warnings.warn(
            "run_many: requests are not picklable (lambda or local scheme "
            "factory?); falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        n_jobs = 1
    serial = n_jobs <= 1 or (len(pending_requests) <= 1 and not hardened)
    if serial:
        if timeout_s is not None:
            warnings.warn(
                "run_many: timeout_s requires jobs > 1; running serially "
                "without a deadline",
                RuntimeWarning,
                stacklevel=2,
            )
        for i in pending:
            if on_error == "quarantine":
                try:
                    results[i] = _execute(request_list[i], cache_dir)
                except Exception as exc:  # noqa: BLE001 - quarantined
                    failures.append(
                        RunFailure(
                            index=i,
                            kind="error",
                            attempts=1,
                            message=f"{type(exc).__name__}: {exc}",
                        )
                    )
            else:
                results[i] = _execute(request_list[i], cache_dir)
    elif hardened:
        _run_supervised(
            request_list,
            pending,
            results,
            cache_dir,
            min(n_jobs, len(pending_requests)),
            timeout_s,
            retries,
            on_error,
            failures,
        )
    else:
        n_workers = min(n_jobs, len(pending_requests))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            # map() preserves input order regardless of completion order.
            computed = pool.map(
                _execute, pending_requests, [cache_dir] * len(pending_requests)
            )
            for i, result in zip(pending, computed):
                results[i] = result
    return results  # type: ignore[return-value]  # filled unless quarantined


def seed_stream(root_seed: int, n_runs: int, role: str = "runner") -> list[int]:
    """``n_runs`` deterministic, distinct seeds derived from ``root_seed``.

    Use for replicated runs of one configuration (e.g. seed-robustness
    sweeps): the stream depends only on ``(root_seed, role)``, so adding
    runs extends it without disturbing earlier seeds.
    """
    if n_runs < 0:
        raise ValueError("n_runs must be non-negative")
    return [role_seed(root_seed, f"{role}/run{i}") for i in range(n_runs)]
