"""Robustness metrics of a tracking response.

Section II of the paper defines the three metrics a power controller is
judged by, and Section IV reports them for the PIC:

* **maximum overshoot** — how far the observed output exceeds the
  reference, as a fraction of the reference;
* **settling time** — the number of controller invocations until the
  output stays inside a tolerance band around the reference;
* **steady-state error** — the remaining offset once settled.

:func:`response_metrics` computes all three from a recorded series, and
:func:`step_response` produces the series analytically from a closed-loop
transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .lti import DiscreteTransferFunction

__all__ = [
    "ResponseMetrics",
    "response_metrics",
    "step_response",
    "worst_case_metrics",
]


@dataclass(frozen=True)
class ResponseMetrics:
    """The paper's three controller-robustness metrics for one response."""

    #: max(output - reference) / reference; 0.0 when never exceeded.
    max_overshoot: float
    #: max(reference - output) / reference over the settled region... kept
    #: symmetric with overshoot: largest dip below the reference.
    max_undershoot: float
    #: First step index after which the output stays within the tolerance
    #: band forever; ``None`` if the response never settles.
    settling_steps: int | None
    #: |mean(output) - reference| / reference over the settled tail;
    #: ``nan`` when the response never settles.
    steady_state_error: float

    @property
    def settled(self) -> bool:
        return self.settling_steps is not None


def response_metrics(
    output: np.ndarray | list[float],
    reference: float,
    tolerance: float = 0.02,
    tail_fraction: float = 0.25,
) -> ResponseMetrics:
    """Compute overshoot / settling / steady-state error for one response.

    Parameters
    ----------
    output:
        The observed output series, one sample per controller invocation.
    reference:
        The constant reference the controller tracked (must be non-zero —
        the metrics are relative).
    tolerance:
        Half-width of the settling band as a fraction of the reference
        (default 2%).
    tail_fraction:
        Fraction of the series (from the end) used to average the
        steady-state error when the response settled late or not at all
        inside the band; guards against reporting a single noisy sample.
    """
    y = np.asarray(output, dtype=float)
    if y.ndim != 1 or y.size == 0:
        raise ValueError("output must be a non-empty 1-D series")
    if reference == 0.0:
        raise ValueError("reference must be non-zero for relative metrics")
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must be in (0, 1)")

    rel = (y - reference) / abs(reference)
    max_overshoot = float(max(rel.max(), 0.0))
    max_undershoot = float(max((-rel).max(), 0.0))

    # EPS of slack so a sample sitting exactly on the band edge counts as
    # inside despite float rounding ((1.0 + 0.01) - 1.0 > 0.01).
    inside = np.abs(rel) <= tolerance + units.EPS
    settling: int | None = None
    # Find the first index from which the series never leaves the band.
    outside_indices = np.flatnonzero(~inside)
    if outside_indices.size == 0:
        settling = 0
    elif outside_indices[-1] + 1 < y.size:
        settling = int(outside_indices[-1] + 1)

    tail_len = max(1, int(round(y.size * tail_fraction)))
    if settling is not None:
        tail = y[max(settling, y.size - tail_len) :]
        sse = float(abs(tail.mean() - reference) / abs(reference))
    else:
        sse = float("nan")
    return ResponseMetrics(max_overshoot, max_undershoot, settling, sse)


def step_response(
    closed_loop_tf: DiscreteTransferFunction,
    n_steps: int = 50,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Response of the closed loop to a reference step of ``amplitude``."""
    return closed_loop_tf.step_response(n_steps) * amplitude


def worst_case_metrics(
    responses: list[np.ndarray],
    references: list[float],
    tolerance: float = 0.02,
) -> ResponseMetrics:
    """Aggregate: the worst overshoot/undershoot/settling over many segments.

    The paper reports "the maximum overshoot ... is bounded within 4%" over
    all islands and all GPM intervals; this helper computes exactly that
    kind of bound from per-segment responses.
    """
    if len(responses) != len(references) or not responses:
        raise ValueError("need one reference per response, at least one response")
    per_segment = [
        response_metrics(resp, ref, tolerance=tolerance)
        for resp, ref in zip(responses, references)
    ]
    settlings = [m.settling_steps for m in per_segment]
    worst_settling = None if any(s is None for s in settlings) else max(settlings)
    sses = [m.steady_state_error for m in per_segment if m.settled]
    return ResponseMetrics(
        max_overshoot=max(m.max_overshoot for m in per_segment),
        max_undershoot=max(m.max_undershoot for m in per_segment),
        settling_steps=worst_settling,
        steady_state_error=max(sses) if sses else float("nan"),
    )
