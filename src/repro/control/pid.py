"""Discrete PID controller (Equation 7) with anti-windup.

The paper's per-island controllers compute a *frequency delta* from the
power-tracking error::

    u(t) = K_P e(t) + K_I * sum_{k<=t} e(k) + K_D (e(t) - e(t-1))

which in the z-domain is ``C(z) = K_P + K_I z/(z-1) + K_D (z-1)/z``
(Equation 10).  Because the actuator saturates (frequency is bounded by
the DVFS table), the integral term uses conditional integration: when the
last actuation saturated and the error keeps pushing into the saturated
direction, the accumulator is frozen.  Without this, long saturation at a
low power budget winds the integral up and produces the huge overshoots
formal PID analysis does not predict.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lti import DiscreteTransferFunction

__all__ = ["DiscretePID", "PIDGains"]


@dataclass(frozen=True)
class PIDGains:
    """The (K_P, K_I, K_D) design parameters of Equation 7."""

    kp: float
    ki: float
    kd: float

    def scaled(self, factor: float) -> "PIDGains":
        """All three gains multiplied by ``factor``."""
        return PIDGains(self.kp * factor, self.ki * factor, self.kd * factor)


class DiscretePID:
    """Stateful discrete PID evaluating one control step per call.

    Parameters
    ----------
    gains:
        The proportional/integral/derivative coefficients.
    output_limits:
        Optional ``(low, high)`` clamp applied to the raw PID output; used
        both to bound per-step frequency swings and to drive anti-windup.
    """

    def __init__(
        self,
        gains: PIDGains,
        output_limits: tuple[float, float] | None = None,
    ) -> None:
        if output_limits is not None and output_limits[0] >= output_limits[1]:
            raise ValueError(f"invalid output limits {output_limits}")
        self.gains = gains
        self.output_limits = output_limits
        self._integral = 0.0
        # Standard convention e(-1) = 0, which keeps the stateful
        # controller exactly equal to its z-domain form (Equation 10).
        self._previous_error = 0.0
        self._saturated_sign = 0  # -1 clamped low, +1 clamped high, 0 free
        self._frozen = False

    def reset(self) -> None:
        """Forget accumulated state (fresh controller)."""
        self._integral = 0.0
        self._previous_error = 0.0
        self._saturated_sign = 0
        self._frozen = False

    @property
    def integrator_frozen(self) -> bool:
        """Whether the accumulator is currently held (safe-mode anti-windup)."""
        return self._frozen

    def freeze_integrator(self) -> None:
        """Hold the accumulator at its current value until unfrozen.

        Used by the sensor guard's safe mode: while the measurement is
        implausible the loop runs on a stale input, and integrating the
        resulting phantom error would wind the accumulator up exactly
        like actuator saturation does.  P and D terms keep operating.
        """
        self._frozen = True

    def unfreeze_integrator(self) -> None:
        """Resume integration (measurements are trustworthy again)."""
        self._frozen = False

    @property
    def integral(self) -> float:
        """Current value of the error accumulator (for tests/telemetry)."""
        return self._integral

    def step(self, error: float) -> float:
        """Advance one control interval; return the actuation command."""
        g = self.gains
        # Conditional integration: freeze the accumulator while the output
        # is pinned at a limit and the error would push it further out.
        pushes_into_saturation = (
            self._saturated_sign > 0 and error > 0
        ) or (self._saturated_sign < 0 and error < 0)
        if not pushes_into_saturation and not self._frozen:
            self._integral += error

        derivative = error - self._previous_error
        self._previous_error = error

        raw = g.kp * error + g.ki * self._integral + g.kd * derivative
        if self.output_limits is None:
            self._saturated_sign = 0
            return raw
        low, high = self.output_limits
        if raw > high:
            self._saturated_sign = 1
            return high
        if raw < low:
            self._saturated_sign = -1
            return low
        self._saturated_sign = 0
        return raw

    def notify_actuator_saturation(self, sign: int) -> None:
        """Report saturation that happened *downstream* of the PID.

        The PIC's actuator clamps frequency to the DVFS range; that clamp is
        invisible to the raw PID output, so the controller is told about it
        explicitly to keep anti-windup effective.  ``sign`` is +1 when the
        command was clamped from above, -1 from below, 0 when unclamped.
        """
        if sign not in (-1, 0, 1):
            raise ValueError(f"saturation sign must be -1, 0 or 1, got {sign}")
        if sign != 0:
            self._saturated_sign = sign

    def transfer_function(self) -> DiscreteTransferFunction:
        """z-domain form of this controller (Equation 10).

        ``C(z) = K_P + K_I z/(z-1) + K_D (z-1)/z`` over the common
        denominator ``z (z-1)``::

            C(z) = (K_P z(z-1) + K_I z^2 + K_D (z-1)^2) / (z (z-1))
        """
        g = self.gains
        num = [
            g.kp + g.ki + g.kd,
            -g.kp - 2.0 * g.kd,
            g.kd,
        ]
        den = [1.0, -1.0, 0.0]
        return DiscreteTransferFunction(num, den)
