"""System identification of the island power model (Equation 8).

The paper identifies the gain ``a_i`` of the difference model
``P(t+1) = P(t) + a_i * d(t)`` by running the PARSEC suite (all
benchmarks except bodytrack) under white-noise DVFS excitation, fitting
the relation by regression, averaging the per-benchmark gains, and then
*validating* the averaged model against the held-out benchmark
(bodytrack) — their Figure 5 shows prediction error well within 10%.

This module provides the regression and validation halves; the excitation
runs themselves live in :mod:`repro.experiments.fig05_model_validation`
because they need the full simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..unit_types import PowerFraction

__all__ = ["GainFit", "fit_system_gain", "predict_power", "prediction_error"]


@dataclass(frozen=True)
class GainFit:
    """Least-squares fit of ``dP = a * df``."""

    gain: float
    #: Coefficient of determination of the fit.
    r_squared: float
    #: Number of (df, dP) samples used.
    n_samples: int


def fit_system_gain(
    frequency_deltas: np.ndarray | list[float],
    power_deltas: np.ndarray | list[float],
) -> GainFit:
    """Fit the through-origin regression ``dP = a * df``.

    A through-origin fit matches the model structure: zero frequency change
    must predict zero power change, otherwise the integrator plant gains a
    spurious constant drive.
    """
    df = np.asarray(frequency_deltas, dtype=float)
    dp = np.asarray(power_deltas, dtype=float)
    if df.shape != dp.shape or df.ndim != 1:
        raise ValueError("frequency and power deltas must be matching 1-D arrays")
    if df.size < 2:
        raise ValueError("need at least two samples to fit a gain")
    denom = float(df @ df)
    if denom == 0.0:
        raise ValueError("all frequency deltas are zero; excitation required")
    gain = float(df @ dp) / denom
    residuals = dp - gain * df
    total = float(((dp - dp.mean()) ** 2).sum())
    if total == 0.0:
        r_squared = 1.0 if np.allclose(residuals, 0.0) else 0.0
    else:
        r_squared = 1.0 - float((residuals**2).sum()) / total
    return GainFit(gain=gain, r_squared=r_squared, n_samples=int(df.size))


def predict_power(
    initial_power: PowerFraction,
    frequency_deltas: np.ndarray | list[float],
    gain: float,
) -> np.ndarray:
    """Open-loop model rollout: ``P(t+1) = P(t) + a * df(t)``.

    Returns the predicted power series of length ``len(frequency_deltas)+1``
    including the initial condition.
    """
    df = np.asarray(frequency_deltas, dtype=float)
    return initial_power + np.concatenate([[0.0], np.cumsum(gain * df)])


def prediction_error(
    actual_power: np.ndarray | list[float],
    frequency_deltas: np.ndarray | list[float],
    gain: float,
) -> float:
    """Mean absolute relative error of the one-step-ahead model prediction.

    One-step-ahead (predict P(t+1) from the *measured* P(t)) is the quantity
    Figure 5 compares, and the one that matters for the controller: the PID
    only ever needs the model to be right one interval forward.
    """
    p = np.asarray(actual_power, dtype=float)
    df = np.asarray(frequency_deltas, dtype=float)
    if p.ndim != 1 or df.ndim != 1 or p.size != df.size + 1:
        raise ValueError("need len(power) == len(frequency_deltas) + 1")
    if np.any(p == 0.0):
        raise ValueError("power series contains zeros; relative error undefined")
    predicted_next = p[:-1] + gain * df
    return float(np.mean(np.abs(predicted_next - p[1:]) / np.abs(p[1:])))
