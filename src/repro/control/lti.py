"""Discrete-time (z-domain) linear time-invariant transfer functions.

A tiny, dependency-light transfer-function algebra sufficient for the
paper's analysis: composition in series, unity-feedback closure, pole
extraction, stability tests and time-domain simulation.  Coefficients are
stored in descending powers of ``z`` like :func:`numpy.roots` expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["DiscreteTransferFunction"]

_TRIM_TOL = 1e-12


def _trim(coeffs: np.ndarray) -> np.ndarray:
    """Drop leading (high-order) zero coefficients."""
    nonzero = np.flatnonzero(np.abs(coeffs) > _TRIM_TOL)
    if nonzero.size == 0:
        return np.zeros(1)
    return coeffs[nonzero[0] :]


@dataclass(frozen=True)
class DiscreteTransferFunction:
    """Rational transfer function ``H(z) = num(z) / den(z)``.

    Immutable; all operations return new instances.  The representation is
    not automatically reduced to coprime form — pole/zero cancellations from
    composition are kept, which is harmless for the analyses here (a
    cancelled stable pole does not change stability verdicts because the
    same factor appears in numerator and denominator).
    """

    num: tuple[float, ...]
    den: tuple[float, ...]

    def __init__(self, num: Iterable[float], den: Iterable[float]) -> None:
        num_arr = _trim(np.atleast_1d(np.asarray(num, dtype=complex)))
        den_arr = _trim(np.atleast_1d(np.asarray(den, dtype=complex)))
        if np.allclose(den_arr, 0.0):
            raise ValueError("denominator polynomial is zero")
        # Normalize so the leading denominator coefficient is 1 (monic).
        lead = den_arr[0]
        num_arr = num_arr / lead
        den_arr = den_arr / lead
        if np.allclose(num_arr.imag, 0.0) and np.allclose(den_arr.imag, 0.0):
            num_arr = num_arr.real
            den_arr = den_arr.real
        object.__setattr__(self, "num", tuple(num_arr.tolist()))
        object.__setattr__(self, "den", tuple(den_arr.tolist()))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "DiscreteTransferFunction") -> "DiscreteTransferFunction":
        """Series composition ``self * other``."""
        if not isinstance(other, DiscreteTransferFunction):
            return NotImplemented
        return DiscreteTransferFunction(
            np.polymul(self.num, other.num), np.polymul(self.den, other.den)
        )

    def __add__(self, other: "DiscreteTransferFunction") -> "DiscreteTransferFunction":
        """Parallel composition ``self + other``."""
        if not isinstance(other, DiscreteTransferFunction):
            return NotImplemented
        num = np.polyadd(
            np.polymul(self.num, other.den), np.polymul(other.num, self.den)
        )
        den = np.polymul(self.den, other.den)
        return DiscreteTransferFunction(num, den)

    def scale(self, k: float) -> "DiscreteTransferFunction":
        """Multiply the transfer function by a scalar gain."""
        return DiscreteTransferFunction(np.asarray(self.num) * k, self.den)

    def feedback(self) -> "DiscreteTransferFunction":
        """Unity negative feedback closure ``H / (1 + H)`` (Equation 11)."""
        num = np.asarray(self.num)
        den = np.asarray(self.den)
        return DiscreteTransferFunction(num, np.polyadd(den, num))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def poles(self) -> np.ndarray:
        """Roots of the denominator polynomial."""
        if len(self.den) < 2:
            return np.empty(0, dtype=complex)
        return np.roots(self.den)

    def zeros(self) -> np.ndarray:
        """Roots of the numerator polynomial."""
        if len(self.num) < 2:
            return np.empty(0, dtype=complex)
        return np.roots(self.num)

    def is_stable(self, margin: float = 0.0) -> bool:
        """True when every pole lies strictly inside the unit circle.

        ``margin`` shrinks the allowed region: poles must satisfy
        ``|p| < 1 - margin``.
        """
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(np.abs(poles) < 1.0 - margin))

    def dc_gain(self) -> float:
        """Steady-state gain ``H(1)``; ``inf`` for a pole at z=1."""
        num_at_1 = np.polyval(self.num, 1.0)
        den_at_1 = np.polyval(self.den, 1.0)
        if abs(den_at_1) < _TRIM_TOL:
            return float("inf")
        value = num_at_1 / den_at_1
        return float(np.real(value))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, u: Sequence[float]) -> np.ndarray:
        """Run the difference equation on input sequence ``u``.

        Implements ``den(q) y = num(q) u`` with the standard alignment where
        ``num`` and ``den`` are in descending powers of z and the system is
        causal (``len(num) <= len(den)``; enforced).
        """
        num = np.asarray(self.num, dtype=float)
        den = np.asarray(self.den, dtype=float)
        if len(num) > len(den):
            raise ValueError("non-causal transfer function (numerator order too high)")
        # Pad numerator so num/den align: relative degree becomes input delay.
        num = np.concatenate([np.zeros(len(den) - len(num)), num])
        u_arr = np.asarray(u, dtype=float)
        y = np.zeros_like(u_arr)
        n = len(den) - 1
        for t in range(len(u_arr)):
            acc = 0.0
            for k in range(n + 1):
                if t - k >= 0:
                    acc += num[k] * u_arr[t - k]
            for k in range(1, n + 1):
                if t - k >= 0:
                    acc -= den[k] * y[t - k]
            y[t] = acc  # den[0] == 1 after normalization
        return y

    def step_response(self, n_steps: int) -> np.ndarray:
        """Response to a unit step of length ``n_steps``."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        return self.simulate(np.ones(n_steps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteTransferFunction(num={self.num}, den={self.den})"
