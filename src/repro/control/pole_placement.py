"""Pole-placement PID design against the paper's island power model.

The open-loop island model (Equation 8/9) is the discrete integrator::

    P(t+1) = P(t) + a * d(t)        <=>       P(z) = a / (z - 1)

where ``d(t)`` is the frequency change the controller commands and ``a``
is the system gain identified from measurements.  With the PID of
Equation 10, the closed-loop characteristic polynomial is cubic::

    D(z) = z (z-1)^2 + a [K_P z (z-1) + K_I z^2 + K_D (z-1)^2]
         = z^3
         + (a(K_P + K_I + K_D) - 2) z^2
         + (1 - a K_P - 2 a K_D) z
         + a K_D

The three gains enter the three non-leading coefficients *linearly*, so
placing the three closed-loop poles exactly is a 3x3 linear solve — the
formal replacement for the paper's "we used Matlab" step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import units
from .lti import DiscreteTransferFunction
from .pid import PIDGains

__all__ = [
    "closed_loop",
    "design_pid",
    "integrator_plant",
    "pid_transfer_function",
    "stability_gain_limit",
]


def integrator_plant(gain: float) -> DiscreteTransferFunction:
    """The open-loop island power model ``P(z) = a / (z - 1)`` (Eq. 9)."""
    if gain == 0.0:
        raise ValueError("plant gain must be non-zero")
    return DiscreteTransferFunction([gain], [1.0, -1.0])


def pid_transfer_function(gains: PIDGains) -> DiscreteTransferFunction:
    """z-domain PID ``C(z)`` over common denominator ``z(z-1)`` (Eq. 10)."""
    num = [
        gains.kp + gains.ki + gains.kd,
        -gains.kp - 2.0 * gains.kd,
        gains.kd,
    ]
    return DiscreteTransferFunction(num, [1.0, -1.0, 0.0])


def closed_loop(plant_gain: float, gains: PIDGains) -> DiscreteTransferFunction:
    """Unity-feedback closed loop ``PC / (1 + PC)`` (Equation 11)."""
    loop = integrator_plant(plant_gain) * pid_transfer_function(gains)
    return loop.feedback()


def design_pid(
    plant_gain: float, desired_poles: Sequence[complex]
) -> PIDGains:
    """Choose (K_P, K_I, K_D) putting the closed-loop poles exactly at
    ``desired_poles``.

    ``desired_poles`` must contain three values, each strictly inside the
    unit circle, and be closed under conjugation (else the gains would be
    complex).  Typical choices put one fast real pole near the origin and a
    lightly-damped conjugate pair controlling overshoot.
    """
    poles = np.asarray(desired_poles, dtype=complex)
    if poles.shape != (3,):
        raise ValueError("exactly three desired poles are required")
    if np.any(np.abs(poles) >= 1.0):
        raise ValueError("desired poles must lie strictly inside the unit circle")
    if plant_gain == 0.0:
        raise ValueError("plant gain must be non-zero")

    target = np.poly(poles)  # monic cubic: [1, c2, c1, c0]
    if np.max(np.abs(target.imag)) > units.EPS:
        raise ValueError("desired poles must be closed under conjugation")
    c2, c1, c0 = target.real[1:]

    a = plant_gain
    # Coefficient matching (see module docstring):
    #   c2 = a (Kp + Ki + Kd) - 2
    #   c1 = 1 - a Kp - 2 a Kd
    #   c0 = a Kd
    system = np.array(
        [
            [a, a, a],
            [-a, 0.0, -2.0 * a],
            [0.0, 0.0, a],
        ]
    )
    rhs = np.array([c2 + 2.0, c1 - 1.0, c0])
    kp, ki, kd = np.linalg.solve(system, rhs)
    gains = PIDGains(float(kp), float(ki), float(kd))

    # Verify via the characteristic polynomial (comparing sorted pole
    # lists is brittle when near-equal real parts reorder under noise).
    achieved_poly = np.asarray(closed_loop(a, gains).den, dtype=complex)
    if not np.allclose(achieved_poly, target, atol=1e-8):
        raise AssertionError(
            f"pole placement failed: wanted coefficients {target}, "
            f"achieved {achieved_poly}"
        )
    return gains


def stability_gain_limit(
    plant_gain: float,
    gains: PIDGains,
    g_max: float = 10.0,
    resolution: float = units.MILLI,
) -> float:
    """Largest multiplier ``g`` keeping the loop stable when the true system
    gain is ``g * plant_gain`` (the paper's robustness analysis, Eq. 13).

    The closed-loop poles are continuous in ``g``; we bisect on the binary
    predicate "all poles inside the unit circle" between the designed gain
    (g=1, stable by construction) and ``g_max``.  Returns ``g_max`` if the
    loop is stable over the whole scanned range.
    """
    if g_max <= 1.0:
        raise ValueError("g_max must exceed 1")

    def stable(g: float) -> bool:
        return closed_loop(g * plant_gain, gains).is_stable()

    if not stable(1.0):
        raise ValueError("loop is unstable at the designed gain (g=1)")
    if stable(g_max):
        return g_max
    lo, hi = 1.0, g_max
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if stable(mid):
            lo = mid
        else:
            hi = mid
    return lo
