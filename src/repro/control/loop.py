"""The generic feedback loop of the paper's Figure 2.

A control loop has five roles: the *plant* being controlled, a *sensor*
observing it, a *transducer* converting the observation into the
reference's units, a *controller* turning the error into a command, and an
*actuator* applying the command to the plant.  The PIC instantiates these
roles with (island, utilization counter, utilization→power line, PID,
DVFS knob); the abstraction is exposed publicly so users can build other
loops (the tests build a thermostat to validate it independently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "Actuator",
    "Controller",
    "FeedbackLoop",
    "LoopRecord",
    "Plant",
    "Sensor",
    "Transducer",
]


@runtime_checkable
class Plant(Protocol):
    """The system under control: advances one interval per ``step`` call."""

    def step(self) -> None:
        """Advance the plant by one control interval."""


@runtime_checkable
class Sensor(Protocol):
    """Observes the plant's measurable output (paper: CPU utilization)."""

    def read(self) -> float:
        """Return the current raw measurement."""


@runtime_checkable
class Controller(Protocol):
    """Maps tracking error to an actuation command (paper: PID)."""

    def step(self, error: float) -> float:
        """Return the command for this interval given the current error."""


@runtime_checkable
class Actuator(Protocol):
    """Applies a command to the plant (paper: the DVFS knob)."""

    def apply(self, command: float) -> None:
        """Exercise the hardware knob."""


#: A transducer is just a function from sensor units to reference units
#: (paper: the fitted utilization -> power line).
Transducer = Callable[[float], float]


@dataclass
class LoopRecord:
    """Telemetry of a single loop iteration."""

    reference: float
    measurement: float
    transduced: float
    error: float
    command: float


class FeedbackLoop:
    """Wires sensor → transducer → controller → actuator → plant.

    One :meth:`iterate` call performs one control interval: read the
    sensor, convert, compare to the reference, control, actuate, then let
    the plant evolve.  The loop keeps a bounded-interface grip on its
    components so any conforming objects can be composed.
    """

    def __init__(
        self,
        plant: Plant,
        sensor: Sensor,
        transducer: Transducer,
        controller: Controller,
        actuator: Actuator,
    ) -> None:
        self.plant = plant
        self.sensor = sensor
        self.transducer = transducer
        self.controller = controller
        self.actuator = actuator

    def iterate(self, reference: float) -> LoopRecord:
        """Run one full loop iteration against ``reference``."""
        measurement = self.sensor.read()
        transduced = self.transducer(measurement)
        error = reference - transduced
        command = self.controller.step(error)
        self.actuator.apply(command)
        self.plant.step()
        return LoopRecord(
            reference=reference,
            measurement=measurement,
            transduced=transduced,
            error=error,
            command=command,
        )

    def run(self, references: list[float]) -> list[LoopRecord]:
        """Run one iteration per entry of ``references``; return telemetry."""
        return [self.iterate(ref) for ref in references]
