"""Control-theoretic substrate: z-domain LTI tools, PID, pole placement.

This package implements the formal machinery Section II of the paper uses
to design and analyze the per-island controllers:

* :mod:`repro.control.lti` — discrete transfer functions, poles, stability,
  feedback composition (Equations 9–13).
* :mod:`repro.control.pid` — the discrete PID law of Equation 7 with
  anti-windup, plus its z-domain form (Equation 10).
* :mod:`repro.control.pole_placement` — exact design of (K_P, K_I, K_D)
  from three desired closed-loop poles against the integrator plant
  P(z) = a/(z-1), and the stability range of the gain multiplier ``g``.
* :mod:`repro.control.analysis` — maximum overshoot, settling time and
  steady-state error of a response (the paper's three robustness metrics).
* :mod:`repro.control.identification` — least-squares fit of the system
  gain ``a`` from white-noise DVFS runs (the paper's Figure 5 procedure).
* :mod:`repro.control.loop` — the generic controller/actuator/plant/
  sensor-transducer loop of Figure 2.
"""

from .analysis import ResponseMetrics, response_metrics, step_response
from .identification import GainFit, fit_system_gain, prediction_error
from .lti import DiscreteTransferFunction
from .loop import Actuator, Controller, FeedbackLoop, Plant, Sensor
from .pid import DiscretePID, PIDGains
from .pole_placement import (
    closed_loop,
    design_pid,
    integrator_plant,
    pid_transfer_function,
    stability_gain_limit,
)

__all__ = [
    "Actuator",
    "Controller",
    "DiscretePID",
    "DiscreteTransferFunction",
    "FeedbackLoop",
    "GainFit",
    "PIDGains",
    "Plant",
    "ResponseMetrics",
    "Sensor",
    "closed_loop",
    "design_pid",
    "fit_system_gain",
    "integrator_plant",
    "pid_transfer_function",
    "prediction_error",
    "response_metrics",
    "stability_gain_limit",
    "step_response",
]
