"""Deterministic random-number management.

Every stochastic component in the library (workload phase machines,
activity noise, white-noise DVFS excitation for system identification,
process-variation maps) draws from a :class:`numpy.random.Generator`
obtained through :func:`derive`, which hashes a human-readable *role*
string together with a root seed.  This gives three properties the test
suite and the experiment harness rely on:

* **Reproducibility** — the same root seed always produces the same run.
* **Independence** — distinct roles get statistically independent streams,
  so adding a new consumer never perturbs existing ones.
* **Addressability** — an experiment can re-derive exactly the stream a
  sub-component used (e.g. to replay one core's workload).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["DEFAULT_SEED", "SeedSequenceFactory", "derive", "role_seed", "split"]

#: Root seed used by the experiment harness unless overridden.
DEFAULT_SEED = 20100610  # SC 2010 submission-era date; arbitrary but fixed.


def role_seed(root_seed: int, role: str) -> int:
    """Derive a 64-bit child seed for ``role`` from ``root_seed``.

    Uses CRC32 of the role name folded into the root seed; cheap, stable
    across Python versions (unlike ``hash``), and collision-safe enough for
    the dozens of roles the library uses.
    """
    digest = zlib.crc32(role.encode("utf-8"))
    return (root_seed * 0x9E3779B1 + digest) % (2**63)


def derive(root_seed: int, role: str) -> np.random.Generator:
    """Return an independent generator for ``role`` under ``root_seed``."""
    return np.random.default_rng(role_seed(root_seed, role))


def split(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Children are spawned from the parent's seed sequence, so the split
    depends only on the parent's seeding (not on how many values it has
    produced) and the children's streams are independent of the parent's
    and of each other.  A component that draws several *kinds* of values
    can give each kind its own child stream; consumption of one kind then
    never shifts another, which is what makes vectorized batch generation
    bit-identical to one-at-a-time generation.

    Splitting is stateful: successive calls on the same parent yield
    fresh, distinct children.
    """
    if n < 1:
        raise ValueError("need at least one child stream")
    seed_seq = rng.bit_generator.seed_seq
    return [
        np.random.Generator(np.random.PCG64(child)) for child in seed_seq.spawn(n)
    ]


class SeedSequenceFactory:
    """Factory handing out named, independent generators from one root seed.

    A simulation builds one factory and passes it around; components ask for
    their stream by name::

        seeds = SeedSequenceFactory(1234)
        phase_rng = seeds.generator("workload/core3/phases")
    """

    def __init__(self, root_seed: int = DEFAULT_SEED) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be non-negative, got {root_seed}")
        self.root_seed = int(root_seed)

    def generator(self, role: str) -> np.random.Generator:
        """Return the generator associated with ``role``."""
        return derive(self.root_seed, role)

    def child(self, prefix: str) -> "SeedSequenceFactory":
        """Return a factory whose roles are namespaced under ``prefix``."""
        return _PrefixedFactory(self.root_seed, prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(root_seed={self.root_seed})"


class _PrefixedFactory(SeedSequenceFactory):
    """A :class:`SeedSequenceFactory` that prepends a namespace prefix."""

    def __init__(self, root_seed: int, prefix: str) -> None:
        super().__init__(root_seed)
        self._prefix = prefix

    def generator(self, role: str) -> np.random.Generator:
        return derive(self.root_seed, f"{self._prefix}/{role}")

    def child(self, prefix: str) -> "SeedSequenceFactory":
        return _PrefixedFactory(self.root_seed, f"{self._prefix}/{prefix}")
