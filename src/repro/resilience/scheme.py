"""GuardedCPMScheme: the paper's CPM with both resilience tiers armed.

Composes the sensor guard (:mod:`repro.pic.guard`) under every island's
PID and the GPM guard (:mod:`repro.gpm.guard`) over the provisioning
step.  With healthy telemetry both guards are transparent, so a guarded
clean run is bit-identical to plain :class:`~repro.core.cpm.CPMScheme`;
under injected faults the guards detect, degrade and recover, and every
decision lands in :attr:`GuardedCPMScheme.log` for the chaos harness
(``repro chaos``) and the tests to assert on.
"""

from __future__ import annotations

from ..cmpsim.telemetry import ResilienceLog
from ..core.cpm import CPMScheme
from ..gpm.guard import GPMGuard, GPMGuardConfig
from ..pic.actuator import DVFSActuator
from ..pic.guard import GuardedPerIslandController, SensorGuardConfig
from ..unit_types import GigaHz

__all__ = ["GuardedCPMScheme"]


class GuardedCPMScheme(CPMScheme):
    """CPM with sensor validation, safe mode, and GPM-tier quarantine."""

    name = "cpm-guarded"

    def __init__(
        self,
        policy=None,
        calibration=None,
        max_step_ghz: GigaHz = 1.0,
        initial_frequency_ghz: GigaHz | None = None,
        sensor_guard: SensorGuardConfig | None = None,
        gpm_guard: GPMGuardConfig | None = None,
    ) -> None:
        super().__init__(
            policy=policy,
            calibration=calibration,
            max_step_ghz=max_step_ghz,
            initial_frequency_ghz=initial_frequency_ghz,
        )
        self.sensor_guard = (
            sensor_guard if sensor_guard is not None else SensorGuardConfig()
        )
        self.gpm_guard = gpm_guard if gpm_guard is not None else GPMGuardConfig()
        self.log = ResilienceLog()
        self._gpm_guard_state: GPMGuard | None = None

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        # Fresh log per bind: re-running the same scheme object must not
        # accumulate events across runs.  Must happen before super().bind
        # because _make_controller hands the log to each guard.
        self.log = ResilienceLog()
        super().bind(sim)
        assert self._context_static is not None
        self._gpm_guard_state = GPMGuard(
            island_min=self._context_static["island_min"],
            island_max=self._context_static["island_max"],
            config=self.gpm_guard,
            log=self.log,
            self_constrained=getattr(self.policy, "self_constrained", False),
        )

    def _make_controller(
        self, island: int, gains, transducer, actuator: DVFSActuator
    ) -> GuardedPerIslandController:
        return GuardedPerIslandController(
            gains=gains,
            transducer=transducer,
            actuator=actuator,
            max_step_ghz=self.max_step_ghz,
            guard=self.sensor_guard,
            log=self.log,
            island=island,
        )

    # ------------------------------------------------------------------
    def on_gpm(self, sim) -> None:
        self.log.now = sim.tick
        super().on_gpm(sim)
        assert self._gpm_guard_state is not None
        frequency = None
        if sim.last_result is not None:
            frequency = sim.last_result.island_frequency_ghz
        sim.setpoints = self._gpm_guard_state.review(
            sim.setpoints,
            sim.windows,
            sim.distributable_budget,
            island_frequency=frequency,
            f_floor=sim.chip.dvfs.f_min,
        )

    def on_pic(self, sim) -> None:
        self.log.now = sim.tick
        super().on_pic(sim)
