"""repro.resilience — fault detection, safe mode, graceful degradation.

The paper assumes sensors and actuators behave; this package supplies
the guard/watchdog discipline a production power manager needs when they
do not:

* :class:`~repro.pic.guard.GuardedPerIslandController` — validates each
  utilization reading (NaN / out-of-range / stuck), holds last-known-good
  input with a frozen integrator, clamps to a fail-safe frequency floor
  after persistent faults, and re-arms automatically;
* :class:`~repro.gpm.guard.GPMGuard` — enforces provision conservation,
  quarantines islands that persistently violate their caps, and
  redistributes the reclaimed budget to healthy islands;
* :class:`GuardedCPMScheme` — the paper's CPM with both tiers armed and
  a :class:`~repro.cmpsim.telemetry.ResilienceLog` recording every guard
  decision.

Scheduled (time-windowed) faults live in :mod:`repro.faults`; the chaos
sweep that exercises all of this end to end is
:mod:`repro.experiments.chaos` (``repro chaos`` on the CLI).
"""

from ..cmpsim.telemetry import ResilienceEvent, ResilienceLog
from ..gpm.guard import GPMGuard, GPMGuardConfig
from ..pic.guard import (
    MODE_FAILSAFE,
    MODE_HOLD,
    MODE_NOMINAL,
    GuardedPerIslandController,
    SensorGuardConfig,
)
from .scheme import GuardedCPMScheme

__all__ = [
    "MODE_FAILSAFE",
    "MODE_HOLD",
    "MODE_NOMINAL",
    "GPMGuard",
    "GPMGuardConfig",
    "GuardedCPMScheme",
    "GuardedPerIslandController",
    "ResilienceEvent",
    "ResilienceLog",
    "SensorGuardConfig",
]
