"""Figure 10: chip-wide budget tracking.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig10_chip_tracking import run

__all__ = ["test_fig10_chip_tracking"]


def test_fig10_chip_tracking(run_experiment_bench):
    result = run_experiment_bench(run, "fig10_chip_tracking")
    assert result.rows or result.series
