"""Figure 7: GPM provisioning across islands.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig07_provisioning import run

__all__ = ["test_fig07_provisioning"]


def test_fig07_provisioning(run_experiment_bench):
    result = run_experiment_bench(run, "fig07_provisioning")
    assert result.rows or result.series
