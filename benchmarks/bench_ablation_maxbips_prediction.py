"""Ablation: MaxBIPS prediction table variants.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_maxbips_prediction

__all__ = ["test_run_maxbips_prediction"]


def test_run_maxbips_prediction(run_experiment_bench):
    result = run_experiment_bench(run_maxbips_prediction, "bench_ablation_maxbips_prediction")
    assert result.rows
