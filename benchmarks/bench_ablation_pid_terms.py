"""Ablation: P vs PI vs PID local controllers.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_pid_terms

__all__ = ["test_run_pid_terms"]


def test_run_pid_terms(run_experiment_bench):
    result = run_experiment_bench(run_pid_terms, "bench_ablation_pid_terms")
    assert result.rows
