"""Figure 11: budget curves, CPM vs MaxBIPS.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig11_budget_curves import run

__all__ = ["test_fig11_budget_curves"]


def test_fig11_budget_curves(run_experiment_bench):
    result = run_experiment_bench(run, "fig11_budget_curves")
    assert result.rows or result.series
