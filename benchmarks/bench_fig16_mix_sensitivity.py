"""Figure 16: Mix-1 vs Mix-2.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig16_mix_sensitivity import run

__all__ = ["test_fig16_mix_sensitivity"]


def test_fig16_mix_sensitivity(run_experiment_bench):
    result = run_experiment_bench(run, "fig16_mix_sensitivity")
    assert result.rows or result.series
