"""Figure 18: thermal-aware provisioning.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig18_thermal import run

__all__ = ["test_fig18_thermal"]


def test_fig18_thermal(run_experiment_bench):
    result = run_experiment_bench(run, "fig18_thermal")
    assert result.rows or result.series
