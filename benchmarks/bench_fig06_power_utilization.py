"""Figure 6: power-utilization linear fits.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig06_power_utilization import run

__all__ = ["test_fig06_power_utilization"]


def test_fig06_power_utilization(run_experiment_bench):
    result = run_experiment_bench(run, "fig06_power_utilization")
    assert result.rows or result.series
