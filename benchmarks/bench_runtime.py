"""End-to-end runtime benchmark: simulator throughput and runner speedup.

Measures wall-clock throughput in simulated PIC ticks per second for
8/16/32-core chips, comparing the legacy per-tick workload path
(``batch_workloads=False``) against the batched path, and times a
4-point budget sweep through ``repro.runner.run_many`` — serial, cold
parallel (fresh cache), and warm parallel (cache hits).

Writes ``BENCH_runtime.json`` at the repo root (``--out`` overrides).
The host CPU count is recorded in the output: on single-core runners the
process-pool fan-out cannot add parallel speedup, so the sweep gains
come from workload batching and the on-disk result cache.

Usage::

    python benchmarks/bench_runtime.py            # full horizons
    python benchmarks/bench_runtime.py --quick    # CI-sized horizons
    python benchmarks/bench_runtime.py --jobs 8   # pool width for the sweep
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import DEFAULT_CONFIG
from repro.cmpsim.simulator import Simulation
from repro.core.cpm import CPMScheme
from repro.rng import DEFAULT_SEED
from repro.runner import RunRequest, run_many

__all__ = [
    "CONFIGS",
    "REPO_ROOT",
    "SWEEP_BUDGETS",
    "bench_configs",
    "bench_sweep",
    "main",
]

SWEEP_BUDGETS = (0.75, 0.80, 0.85, 0.90)
CONFIGS = (
    ("8c4i", 8, 4),
    ("16c4i", 16, 4),
    ("32c8i", 32, 8),
)


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # lint: ignore[DET003] benchmark harness measures wall time by design
        fn()
        best = min(best, time.perf_counter() - start)  # lint: ignore[DET003] benchmark harness measures wall time by design
    return best


def _single_run_seconds(config, n_gpm: int, batch: bool, repeats: int):
    result = {}

    def once():
        sim = Simulation(
            config, CPMScheme(), budget_fraction=0.8, seed=DEFAULT_SEED
        )
        result["run"] = sim.run(n_gpm, batch_workloads=batch)

    seconds = _time(once, repeats)
    return seconds, result["run"].telemetry.n_intervals


def bench_configs(n_gpm: int, repeats: int) -> list[dict]:
    rows = []
    for name, n_cores, n_islands in CONFIGS:
        config = DEFAULT_CONFIG.with_islands(n_cores, n_islands)
        # Warm the in-process calibration memo so its one-time cost does
        # not land on whichever variant happens to be timed first.
        _single_run_seconds(config, 1, True, 1)
        legacy_s, ticks = _single_run_seconds(config, n_gpm, False, repeats)
        batched_s, _ = _single_run_seconds(config, n_gpm, True, repeats)
        rows.append(
            {
                "name": name,
                "n_cores": n_cores,
                "n_islands": n_islands,
                "ticks": ticks,
                "legacy_per_tick": {
                    "seconds": round(legacy_s, 4),
                    "ticks_per_s": round(ticks / legacy_s, 1),
                },
                "batched": {
                    "seconds": round(batched_s, 4),
                    "ticks_per_s": round(ticks / batched_s, 1),
                },
                "batched_speedup": round(legacy_s / batched_s, 2),
            }
        )
        print(
            f"{name}: legacy {ticks / legacy_s:8.0f} ticks/s, "
            f"batched {ticks / batched_s:8.0f} ticks/s "
            f"({legacy_s / batched_s:.2f}x)"
        )
    return rows


def bench_sweep(n_gpm: int, jobs: int) -> dict:
    """Time a 4-point budget sweep four ways; all vs the legacy serial loop."""
    config = DEFAULT_CONFIG

    def legacy_serial():
        for budget in SWEEP_BUDGETS:
            Simulation(
                config, CPMScheme(), budget_fraction=budget, seed=DEFAULT_SEED
            ).run(n_gpm, batch_workloads=False)

    requests = [
        RunRequest(
            config=config,
            scheme_factory=CPMScheme,
            budget_fraction=budget,
            seed=DEFAULT_SEED,
            n_gpm_intervals=n_gpm,
        )
        for budget in SWEEP_BUDGETS
    ]

    legacy_s = _time(legacy_serial, 1)
    serial_s = _time(lambda: run_many(requests, jobs=1), 1)
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache:
        cold_s = _time(lambda: run_many(requests, jobs=jobs, cache_dir=cache), 1)
        warm_s = _time(lambda: run_many(requests, jobs=jobs, cache_dir=cache), 1)

    out = {
        "budgets": list(SWEEP_BUDGETS),
        "n_gpm_intervals": n_gpm,
        "jobs": jobs,
        "legacy_serial_s": round(legacy_s, 4),
        "runner_serial_s": round(serial_s, 4),
        f"runner_jobs{jobs}_cold_s": round(cold_s, 4),
        f"runner_jobs{jobs}_warm_s": round(warm_s, 4),
        "speedup_serial_vs_legacy": round(legacy_s / serial_s, 2),
        f"speedup_jobs{jobs}_cold_vs_legacy": round(legacy_s / cold_s, 2),
        f"speedup_jobs{jobs}_warm_vs_legacy": round(legacy_s / warm_s, 2),
    }
    print(
        f"sweep ({len(SWEEP_BUDGETS)} budgets): legacy {legacy_s:.3f}s, "
        f"runner serial {serial_s:.3f}s ({legacy_s / serial_s:.2f}x), "
        f"jobs={jobs} cold {cold_s:.3f}s ({legacy_s / cold_s:.2f}x), "
        f"warm {warm_s:.3f}s ({legacy_s / warm_s:.2f}x)"
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized horizons (6 GPM intervals, 1 repeat)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the sweep benchmark")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_runtime.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    n_gpm = 6 if args.quick else 25
    repeats = 1 if args.quick else 3

    payload = {
        "benchmark": "bench_runtime",
        "quick": args.quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "configs": bench_configs(n_gpm, repeats),
        "sweep": bench_sweep(n_gpm, args.jobs),
        "notes": [
            "legacy_per_tick is the pre-runner execution model: per-tick "
            "workload advancement, no batching, no cache.",
            "speedups are wall-clock ratios vs that legacy serial model "
            "on this host; with cpu_count=1 the pool adds no parallelism "
            "and sweep gains come from batching plus the result cache.",
        ],
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
