"""Benchmark-harness plumbing.

Every bench runs one experiment end to end under pytest-benchmark (one
round — these are throughput-style workloads, not microbenchmarks),
prints the experiment's rows/series (the paper-figure reproduction), and
archives the rendered text under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment_bench(benchmark, results_dir, capsys):
    """Run an experiment under the benchmark fixture and archive it."""

    def runner(run_fn, name: str, **kwargs):
        result = benchmark.pedantic(
            run_fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        text = result.render()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
        return result

    return runner
