"""Ablation: continuous vs quantized PIC actuation.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_quantization

__all__ = ["test_run_quantization"]


def test_run_quantization(run_experiment_bench):
    result = run_experiment_bench(run_quantization, "bench_ablation_quantization")
    assert result.rows
