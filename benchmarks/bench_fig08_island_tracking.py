"""Figure 8: per-island target vs actual power.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig08_island_tracking import run

__all__ = ["test_fig08_island_tracking"]


def test_fig08_island_tracking(run_experiment_bench):
    result = run_experiment_bench(run, "fig08_island_tracking")
    assert result.rows or result.series
