"""Figure 12: degradation vs budget.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig12_perf_degradation import run

__all__ = ["test_fig12_perf_degradation"]


def test_fig12_perf_degradation(run_experiment_bench):
    result = run_experiment_bench(run, "fig12_perf_degradation")
    assert result.rows or result.series
