"""Ablation: GPM provisioning policies.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_gpm_policy

__all__ = ["test_run_gpm_policy"]


def test_run_gpm_policy(run_experiment_bench):
    result = run_experiment_bench(run_gpm_policy, "bench_ablation_gpm_policy")
    assert result.rows
