"""Lint-pipeline benchmark: shared-parse cache vs cold re-parse.

Times ``repro.lintkit`` over ``src/`` three ways: a cold run (empty
parsed-module cache), a warm run (cache hits for every file), and each
analysis (``rules`` / ``dimensions`` / ``effects``) individually on the
warm cache.  The cold-vs-warm delta is what the engine's shared AST
cache buys every invocation after the first — previously each of the
three passes re-read and re-parsed the whole tree.

Writes ``BENCH_lintkit.json`` at the repo root (``--out`` overrides).

Usage::

    python benchmarks/bench_lintkit.py
    python benchmarks/bench_lintkit.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lintkit import ALL_ANALYSES, lint_paths
from repro.lintkit.engine import clear_module_cache

__all__ = ["REPO_ROOT", "SRC", "main", "run_benchmark"]

SRC = REPO_ROOT / "src"


def _time_lint(analyses: tuple[str, ...], repeats: int) -> float:
    """Best-of-``repeats`` wall time for one lint_paths invocation."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # lint: ignore[DET003] benchmark harness measures wall time by design
        lint_paths([SRC], analyses=analyses)
        best = min(best, time.perf_counter() - start)  # lint: ignore[DET003] benchmark harness measures wall time by design
    return best


def run_benchmark(repeats: int = 3) -> dict:
    clear_module_cache()
    cold_s = _time_lint(ALL_ANALYSES, repeats=1)
    warm_s = _time_lint(ALL_ANALYSES, repeats=repeats)
    per_analysis = {
        name: _time_lint((name,), repeats=repeats) for name in ALL_ANALYSES
    }
    return {
        "benchmark": "lintkit",
        "files": len(list(SRC.rglob("*.py"))),
        "cold_all_s": round(cold_s, 4),
        "warm_all_s": round(warm_s, 4),
        "parse_cache_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "warm_per_analysis_s": {
            name: round(seconds, 4) for name, seconds in per_analysis.items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_lintkit.json")
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
