"""Controller design: pole placement, stability range (Eq. 12-13).

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig04_controller_design import run

__all__ = ["test_fig04_controller_design"]


def test_fig04_controller_design(run_experiment_bench):
    result = run_experiment_bench(run, "fig04_controller_design")
    assert result.rows or result.series
