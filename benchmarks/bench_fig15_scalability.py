"""Figure 15: 16/32-core scalability vs MaxBIPS.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig15_scalability import run

__all__ = ["test_fig15_scalability"]


def test_fig15_scalability(run_experiment_bench):
    result = run_experiment_bench(run, "fig15_scalability")
    assert result.rows or result.series
