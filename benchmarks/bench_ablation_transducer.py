"""Ablation: per-island vs global transducer.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_transducer

__all__ = ["test_run_transducer"]


def test_run_transducer(run_experiment_bench):
    result = run_experiment_bench(run_transducer, "bench_ablation_transducer")
    assert result.rows
