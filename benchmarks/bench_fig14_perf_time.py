"""Figure 14: degradation over time at 100% budget.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig14_perf_time import run

__all__ = ["test_fig14_perf_time"]


def test_fig14_perf_time(run_experiment_bench):
    result = run_experiment_bench(run, "fig14_perf_time")
    assert result.rows or result.series
