"""Figure 5: open-loop model vs actual power.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig05_model_validation import run

__all__ = ["test_fig05_model_validation"]


def test_fig05_model_validation(run_experiment_bench):
    result = run_experiment_bench(run, "fig05_model_validation")
    assert result.rows or result.series
