"""Figure 9: PIC robustness between GPM invocations.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig09_pic_tracking import run

__all__ = ["test_fig09_pic_tracking"]


def test_fig09_pic_tracking(run_experiment_bench):
    result = run_experiment_bench(run, "fig09_pic_tracking")
    assert result.rows or result.series
