"""Figure 17: GPM/PIC interval sensitivity.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig17_interval_sensitivity import run

__all__ = ["test_fig17_interval_sensitivity"]


def test_fig17_interval_sensitivity(run_experiment_bench):
    result = run_experiment_bench(run, "fig17_interval_sensitivity")
    assert result.rows or result.series
