"""Figures 19/20: variation-aware provisioning.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig19_variation import run

__all__ = ["test_fig19_variation"]


def test_fig19_variation(run_experiment_bench):
    result = run_experiment_bench(run, "fig19_variation")
    assert result.rows or result.series
