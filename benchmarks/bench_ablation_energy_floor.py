"""Ablation: energy-aware policy across performance floors.

An ablation bench beyond the paper's figures; rendered output is printed
and archived under ``benchmarks/results/``.
"""

from repro.experiments.ablations import run_energy_floor

__all__ = ["test_run_energy_floor"]


def test_run_energy_floor(run_experiment_bench):
    result = run_experiment_bench(run_energy_floor, "bench_ablation_energy_floor")
    assert result.rows
