"""Figure 13: degradation vs island size.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.fig13_island_size import run

__all__ = ["test_fig13_island_size"]


def test_fig13_island_size(run_experiment_bench):
    result = run_experiment_bench(run, "fig13_island_size")
    assert result.rows or result.series
