"""Tables I-III: configuration and mixes.

Regenerates the corresponding table/figure of the paper; the rendered
series/rows are printed and archived under ``benchmarks/results/``.
"""

from repro.experiments.tables import run

__all__ = ["test_tables"]


def test_tables(run_experiment_bench):
    result = run_experiment_bench(run, "tables")
    assert result.rows or result.series
