"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` to build a PEP-660 editable install;
offline environments that lack it can fall back to::

    python setup.py develop

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
